#!/usr/bin/env bash
# Wall-clock perf-regression gates.
#
# Two pinned sweeps over the 18-kernel suite:
#
#  * `bench_hotloop` — simulated MIPS of the timing-simulator hot loop;
#    fails when any machine's fresh throughput drops below
#    `tolerance × recorded` from the checked-in BENCH_hotloop.json.
#  * `bench_functional` — functional MIPS of the threaded-code
#    interpreter vs the frozen pre-predecode baseline; fails on the same
#    tolerance band against BENCH_functional.json, or when the fresh
#    threaded/reference speedup falls below `tolerance ×` the pinned 10x
#    floor (the recorded speedup itself is held to the full floor by the
#    schema check).
#
# The default tolerance is deliberately wide (0.5 — only a 2x regression
# fails) so the gates stay non-flaky on loaded or slow CI hosts while
# still catching real regressions. Override with PERF_GATE_TOLERANCE,
# and the iteration count with PERF_GATE_ITERS.
#
# NOTE: a plain `cargo build --release` at the workspace root does NOT
# rebuild the bench crate (it is a workspace member, not a root
# dependency) — the `-p fgstp-bench` below is required.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${PERF_GATE_TOLERANCE:-0.5}"
ITERS="${PERF_GATE_ITERS:-3}"
REPORT="${1:-BENCH_hotloop.json}"
FUNC_REPORT="${2:-BENCH_functional.json}"

echo "== perf gate: building bench binaries (release)"
cargo build --release -q -p fgstp-bench \
    --bin bench_hotloop --bin bench_functional

echo "== perf gate: schema check on ${REPORT}"
./target/release/bench_hotloop --schema-check="${REPORT}"

echo "== perf gate: re-measuring hot loop (iters=${ITERS}, tolerance=${TOLERANCE})"
./target/release/bench_hotloop --check="${REPORT}" \
    --iters="${ITERS}" --tolerance="${TOLERANCE}"

echo "== perf gate: schema check on ${FUNC_REPORT}"
./target/release/bench_functional --schema-check="${FUNC_REPORT}"

echo "== perf gate: re-measuring functional interpreter (iters=${ITERS}, tolerance=${TOLERANCE})"
./target/release/bench_functional --check="${FUNC_REPORT}" \
    --iters="${ITERS}" --tolerance="${TOLERANCE}"

echo "== perf gate OK"
