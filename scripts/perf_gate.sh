#!/usr/bin/env bash
# Wall-clock perf-regression gate for the simulator hot loop.
#
# Re-runs the pinned 18-kernel sweep with `bench_hotloop` and fails when
# any machine's fresh simulated-MIPS drops below
# `tolerance × recorded` from the checked-in BENCH_hotloop.json.
#
# The default tolerance is deliberately wide (0.5 — only a 2x regression
# fails) so the gate stays non-flaky on loaded or slow CI hosts while
# still catching real hot-loop regressions. Override with
# PERF_GATE_TOLERANCE, and the iteration count with PERF_GATE_ITERS.
#
# NOTE: a plain `cargo build --release` at the workspace root does NOT
# rebuild the bench crate (it is a workspace member, not a root
# dependency) — the `-p fgstp-bench` below is required.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${PERF_GATE_TOLERANCE:-0.5}"
ITERS="${PERF_GATE_ITERS:-3}"
REPORT="${1:-BENCH_hotloop.json}"

echo "== perf gate: building bench_hotloop (release)"
cargo build --release -q -p fgstp-bench --bin bench_hotloop

echo "== perf gate: schema check on ${REPORT}"
./target/release/bench_hotloop --schema-check="${REPORT}"

echo "== perf gate: re-measuring (iters=${ITERS}, tolerance=${TOLERANCE})"
./target/release/bench_hotloop --check="${REPORT}" \
    --iters="${ITERS}" --tolerance="${TOLERANCE}"

echo "== perf gate OK"
