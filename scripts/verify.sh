#!/usr/bin/env bash
# Full offline verification: format, lint, build, test.
# Everything runs against the local toolchain — no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (broken links / missing docs are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== telemetry invariants (cycle accounting reconciles exactly)"
cargo test -q --test telemetry

echo "== sampled-simulation smoke (E14 at test scale)"
cargo run --release -q -p fgstp-bench --bin exp_e14_sampling -- test --no-cache

echo "== hot-loop bench smoke + report schema checks"
# A root `cargo build --release` does not rebuild the bench crate; the
# explicit -p is load-bearing.
cargo build --release -q -p fgstp-bench --bin bench_hotloop
./target/release/bench_hotloop test --iters=1 --out=target/bench_hotloop_smoke.json
./target/release/bench_hotloop --schema-check=target/bench_hotloop_smoke.json
./target/release/bench_hotloop --schema-check=BENCH_hotloop.json

echo "== verify OK"
