#!/usr/bin/env bash
# Full offline verification: format, lint, build, test.
# Everything runs against the local toolchain — no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (broken links / missing docs are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== telemetry invariants (cycle accounting reconciles exactly)"
cargo test -q --test telemetry

echo "== sampled-simulation smoke (E14 at test scale)"
cargo run --release -q -p fgstp-bench --bin exp_e14_sampling -- test --no-cache

echo "== verify OK"
