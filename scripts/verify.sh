#!/usr/bin/env bash
# Full offline verification: format, lint, build, test.
# Everything runs against the local toolchain — no network required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (broken links / missing docs are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== telemetry invariants (cycle accounting reconciles exactly)"
cargo test -q --test telemetry

echo "== sampled-simulation smoke (E14 at test scale)"
cargo run --release -q -p fgstp-bench --bin exp_e14_sampling -- test --no-cache

echo "== live-points smoke (E18: snapshot-warm rerun is bit-identical and warms nothing)"
# The binary asserts internally that all three phases (cold, snapshot-warm,
# snapshots-off) project identical figures and that the warm phase warms
# zero instructions; pin the printed verdict too.
cargo build --release -q -p fgstp-bench --bin exp_e18_livepoints
./target/release/exp_e18_livepoints test > target/e18_smoke.txt
grep -q "figures identical: yes" target/e18_smoke.txt || {
  echo "E18 live-point phases disagree:"
  cat target/e18_smoke.txt
  exit 1
}
# CLI level: the same sampled config run twice must replay stored
# live-points on the second run (zero instructions warmed) and print
# bit-identical estimates.
cargo build --release -q -p fgstp-sim
rm -rf target/trace-cache
./target/release/fgstpsim run chase_long fgstp-small test --sample \
  > target/e18_cli_a.txt
./target/release/fgstpsim run chase_long fgstp-small test --sample \
  > target/e18_cli_b.txt
grep "live-points:" target/e18_cli_b.txt | grep -q "(replayed), 0 insts warmed" || {
  echo "second sampled CLI run did not replay live-points:"
  cat target/e18_cli_b.txt
  exit 1
}
if ! cmp -s <(grep -v "live-points:" target/e18_cli_a.txt) \
            <(grep -v "live-points:" target/e18_cli_b.txt); then
  echo "snapshot-warm CLI rerun changed the estimates:"
  diff target/e18_cli_a.txt target/e18_cli_b.txt || true
  exit 1
fi

echo "== batch-service smoke (fgstpd round trip matches recorded E1 row)"
cargo build --release -q -p fgstp-service
rm -f target/fgstpd_smoke_port
./target/release/fgstpd --listen=127.0.0.1:0 --workers=2 \
  --port-file=target/fgstpd_smoke_port &
FGSTPD_PID=$!
for _ in $(seq 1 100); do
  [ -s target/fgstpd_smoke_port ] && break
  sleep 0.1
done
FGSTPD_ADDR="127.0.0.1:$(cat target/fgstpd_smoke_port)"
./target/release/fgstp submit "--addr=$FGSTPD_ADDR" small \
  --workloads=perl_hash --machines=small-cmp --wait --csv \
  > target/fgstpd_smoke.csv
# Same daemon, co-run spec: two programs on disjoint cores of one
# machine must come back as one row per program, and resubmitting the
# identical spec must dedup to byte-identical rows (co-runs are one
# deterministic job).
./target/release/fgstp submit "--addr=$FGSTPD_ADDR" test \
  --machines=fgstp-small --corun=perl_hash:2,mcf_pointer:2 --wait --csv \
  > target/fgstpd_corun.csv
./target/release/fgstp submit "--addr=$FGSTPD_ADDR" test \
  --machines=fgstp-small --corun=perl_hash:2,mcf_pointer:2 --wait --csv \
  > target/fgstpd_corun2.csv
cmp -s target/fgstpd_corun.csv target/fgstpd_corun2.csv || {
  echo "deduped co-run resubmission returned different rows:"
  diff target/fgstpd_corun.csv target/fgstpd_corun2.csv || true
  exit 1
}
awk -F, 'NR > 1 && $3 > 0 { rows++ } END { exit rows == 2 ? 0 : 1 }' \
  target/fgstpd_corun.csv || {
  echo "co-run job did not produce one row per program with cycles > 0:"
  cat target/fgstpd_corun.csv
  exit 1
}
# Same daemon, RV32-frontend workload: an rv:-prefixed spec must round
# trip through submit/wait exactly like a synthetic one, coming back as
# one comparison-triple row with real cycle counts.
./target/release/fgstp submit "--addr=$FGSTPD_ADDR" test \
  --workloads=rv:crc32 --machines=small-cmp --wait --csv \
  > target/fgstpd_rv.csv
awk -F, 'NR > 1 && $1 == "rv:crc32" && $2 > 0 && $3 > 0 { rows++ }
         END { exit rows == 1 ? 0 : 1 }' target/fgstpd_rv.csv || {
  echo "rv: workload did not round-trip through the daemon:"
  cat target/fgstpd_rv.csv
  exit 1
}
./target/release/fgstp shutdown "--addr=$FGSTPD_ADDR"
wait "$FGSTPD_PID"
# The daemon-served speedup row must reproduce the figures recorded in
# results/experiments_small.txt (first perl_hash row = E1).
expected=$(awk '$1 == "perl_hash" { print $1","$2","$3","$4","$5; exit }' \
  results/experiments_small.txt)
grep -qx "$expected" target/fgstpd_smoke.csv || {
  echo "daemon row does not match recorded E1 figures ($expected):"
  cat target/fgstpd_smoke.csv
  exit 1
}

echo "== co-run smoke (E16 at test scale, deterministic)"
# The binary itself asserts a rerun of one scenario is bit-identical;
# two full runs diffing clean pins the whole sweep, and the pressured
# table must show a real slowdown for the memory-bound foreground.
cargo build --release -q -p fgstp-bench --bin exp_e16_corun
./target/release/exp_e16_corun test \
  --workloads=perl_hash,mcf_pointer,libq_stream > target/e16_smoke_a.txt
./target/release/exp_e16_corun test \
  --workloads=perl_hash,mcf_pointer,libq_stream > target/e16_smoke_b.txt
cmp -s target/e16_smoke_a.txt target/e16_smoke_b.txt || {
  echo "E16 co-run sweep is not deterministic across reruns:"
  diff target/e16_smoke_a.txt target/e16_smoke_b.txt || true
  exit 1
}
awk '/capacity pressure/ { p = 1; next } /^====/ { p = 0 }
     p && $1 == "mcf_pointer" && $4 > 1.0 { found = 1 }
     END { exit found ? 0 : 1 }' target/e16_smoke_a.txt || {
  echo "E16 shows no co-run slowdown for mcf_pointer:"
  cat target/e16_smoke_a.txt
  exit 1
}

echo "== RV32-frontend smoke (E17 at test scale, deterministic)"
# The binary itself asserts an RV-fed Fg-STP rerun is bit-identical;
# two full runs diffing clean pin the sweep and the stream-mix table,
# and every RV program must show a real Fg-STP run (speedup > 0).
cargo build --release -q -p fgstp-bench --bin exp_e17_rv
./target/release/exp_e17_rv test > target/e17_smoke_a.txt
./target/release/exp_e17_rv test > target/e17_smoke_b.txt
cmp -s target/e17_smoke_a.txt target/e17_smoke_b.txt || {
  echo "E17 RV sweep is not deterministic across reruns:"
  diff target/e17_smoke_a.txt target/e17_smoke_b.txt || true
  exit 1
}
awk 'NF == 5 && $1 ~ /^rv:/ && $4 > 0 { rows++ }
     END { exit rows == 5 ? 0 : 1 }' target/e17_smoke_a.txt || {
  echo "E17 did not produce an Fg-STP figure for all 5 RV programs:"
  cat target/e17_smoke_a.txt
  exit 1
}

echo "== hot-loop bench smoke + report schema checks"
# A root `cargo build --release` does not rebuild the bench crate; the
# explicit -p is load-bearing.
cargo build --release -q -p fgstp-bench --bin bench_hotloop
./target/release/bench_hotloop test --iters=1 --out=target/bench_hotloop_smoke.json
./target/release/bench_hotloop --schema-check=target/bench_hotloop_smoke.json
./target/release/bench_hotloop --schema-check=BENCH_hotloop.json

echo "== functional-interpreter bench smoke + report schema check"
# The measure run is itself a correctness smoke: it cross-checks the
# frozen baseline and the threaded engine for identical final state on
# all 18 kernels before timing anything. The checked-in report is held
# to the full 10x speedup floor; the single-iteration smoke report is
# not floor-checked here (one wall-clock sample under arbitrary load —
# the measured floor is enforced, with tolerance, by perf_gate.sh).
cargo build --release -q -p fgstp-bench --bin bench_functional
./target/release/bench_functional test --iters=1 \
  --out=target/bench_functional_smoke.json
./target/release/bench_functional --schema-check=BENCH_functional.json

echo "== verify OK"
