//! Stall categories and CPI stacks.
//!
//! The accounting is commit-centric: a cycle where a core commits at
//! least one architectural instruction is a **base** cycle; every other
//! cycle is charged to exactly one [`StallCategory`] describing what the
//! oldest instruction (or the empty window) was waiting for. Base plus
//! stalls therefore always equals total core cycles — the invariant
//! [`CpiStack::check`] verifies.

/// Memory-hierarchy level that serviced a load, classified from its
/// observed latency at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Serviced at L1 hit latency.
    L1,
    /// Serviced by the shared L2.
    L2,
    /// Serviced by DRAM.
    Dram,
}

/// Why a core failed to commit on one cycle.
///
/// The first eight categories apply to every machine; the last five are
/// Fg-STP-specific overheads (a single core never charges them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum StallCategory {
    /// Frontend fill: the window is empty and fetch is refilling it
    /// (pipeline depth, fetch-buffer limits, I-cache stalls).
    Frontend,
    /// Fetch blocked behind an unresolved mispredicted branch, or paying
    /// its redirect penalty.
    BranchRedirect,
    /// Dispatch backpressure: ROB, issue queue or load/store queue full
    /// while the head waits.
    StructFull,
    /// The head waits on a local register dependence chain (or its own
    /// execution latency on a non-memory unit).
    DepChain,
    /// The head is ready but cannot issue: functional units or issue
    /// width are exhausted.
    FuContention,
    /// The head is a load in flight, serviced at L1 latency.
    MemL1,
    /// The head is a load in flight, serviced by the L2.
    MemL2,
    /// The head is a load in flight, serviced by DRAM.
    MemDram,
    /// Fg-STP: the head waits on a register value crossing the
    /// communication queue from the other core.
    CommWait,
    /// Fg-STP: fetch is held by lookahead-buffer backpressure — this core
    /// ran a full partition window ahead of its partner.
    CommBackpressure,
    /// Fg-STP: the cycle went to a replicated shadow copy (replica at the
    /// window head, or a cycle that committed only replicas).
    Replication,
    /// Fg-STP: cross-core memory-dependence wait, squash or replay.
    MemDepReplay,
    /// Fg-STP: the head has completed but global (cross-core) commit
    /// order holds retirement — or this core drained its partition and
    /// idles while the partner finishes.
    CommitSync,
}

impl StallCategory {
    /// Number of categories.
    pub const COUNT: usize = 13;

    /// Every category, in display order.
    pub const ALL: [StallCategory; StallCategory::COUNT] = [
        StallCategory::Frontend,
        StallCategory::BranchRedirect,
        StallCategory::StructFull,
        StallCategory::DepChain,
        StallCategory::FuContention,
        StallCategory::MemL1,
        StallCategory::MemL2,
        StallCategory::MemDram,
        StallCategory::CommWait,
        StallCategory::CommBackpressure,
        StallCategory::Replication,
        StallCategory::MemDepReplay,
        StallCategory::CommitSync,
    ];

    /// Short column label (table headers, trace-event names).
    pub fn label(self) -> &'static str {
        match self {
            StallCategory::Frontend => "front",
            StallCategory::BranchRedirect => "bredir",
            StallCategory::StructFull => "struct",
            StallCategory::DepChain => "dep",
            StallCategory::FuContention => "fu",
            StallCategory::MemL1 => "l1",
            StallCategory::MemL2 => "l2",
            StallCategory::MemDram => "dram",
            StallCategory::CommWait => "commw",
            StallCategory::CommBackpressure => "commbp",
            StallCategory::Replication => "repl",
            StallCategory::MemDepReplay => "memdep",
            StallCategory::CommitSync => "sync",
        }
    }

    /// One-line human description.
    pub fn describe(self) -> &'static str {
        match self {
            StallCategory::Frontend => "frontend fill / icache",
            StallCategory::BranchRedirect => "branch mispredict redirect",
            StallCategory::StructFull => "ROB/IQ/LSQ full",
            StallCategory::DepChain => "dependence chain / exec latency",
            StallCategory::FuContention => "FU or issue-width contention",
            StallCategory::MemL1 => "load serviced by L1",
            StallCategory::MemL2 => "load serviced by L2",
            StallCategory::MemDram => "load serviced by DRAM",
            StallCategory::CommWait => "cross-core value in comm queue",
            StallCategory::CommBackpressure => "lookahead-buffer backpressure",
            StallCategory::Replication => "replicated shadow copies",
            StallCategory::MemDepReplay => "cross-core memdep wait/replay",
            StallCategory::CommitSync => "global commit synchronization",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for StallCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A CPI stack: base (committing) cycles plus per-category stall cycles.
///
/// For a single-core machine the stack covers exactly the run's cycles;
/// merging the per-core stacks of a dual-core machine yields *aggregate
/// core-cycles* (two per machine cycle), so the stack total of an Fg-STP
/// run is `2 × cycles`. [`CpiStack::check`] validates the internal
/// invariant; drivers additionally assert the total against the measured
/// run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpiStack {
    /// Architectural instructions committed.
    pub committed: u64,
    /// Cycles with at least one architectural commit.
    pub base_cycles: u64,
    /// Stall cycles per category, indexed by [`StallCategory`].
    pub stalls: [u64; StallCategory::COUNT],
}

impl CpiStack {
    /// An empty stack.
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Charges one base cycle committing `n` instructions.
    pub fn record_commit(&mut self, n: u32) {
        self.base_cycles += 1;
        self.committed += u64::from(n);
    }

    /// Charges one stall cycle to `cat`.
    pub fn record_stall(&mut self, cat: StallCategory) {
        self.stalls[cat.index()] += 1;
    }

    /// Stall cycles charged to `cat`.
    pub fn stall(&self, cat: StallCategory) -> u64 {
        self.stalls[cat.index()]
    }

    /// Total accounted cycles: base plus every stall category.
    pub fn total_cycles(&self) -> u64 {
        self.base_cycles + self.stalls.iter().sum::<u64>()
    }

    /// Aggregate core-cycles per committed instruction (equals machine
    /// CPI on single-core machines; `cores ×` CPI on multicore stacks).
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.committed as f64
        }
    }

    /// Cycles-per-instruction contribution of one category.
    pub fn category_cpi(&self, cat: StallCategory) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.stall(cat) as f64 / self.committed as f64
        }
    }

    /// Fraction of all accounted cycles charged to `cat` (0 when empty).
    pub fn fraction(&self, cat: StallCategory) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.stall(cat) as f64 / total as f64
        }
    }

    /// Sums another stack into this one (per-core → machine aggregation).
    pub fn merge(&mut self, other: &CpiStack) {
        self.committed += other.committed;
        self.base_cycles += other.base_cycles;
        for (a, b) in self.stalls.iter_mut().zip(&other.stalls) {
            *a += b;
        }
    }

    /// Verifies the stack invariant against an externally measured cycle
    /// count: base plus stalls must equal `expected_total` exactly, and a
    /// non-empty stack must have committed instructions.
    pub fn check_against(&self, expected_total: u64) -> Result<(), String> {
        let total = self.total_cycles();
        if total != expected_total {
            return Err(format!(
                "CPI stack accounts for {total} cycles but the run measured {expected_total}"
            ));
        }
        self.check()
    }

    /// Verifies the internal invariant: a stack with accounted cycles but
    /// zero commits (or vice versa) is corrupt.
    pub fn check(&self) -> Result<(), String> {
        if self.total_cycles() > 0 && self.committed == 0 {
            return Err(format!(
                "CPI stack has {} cycles but no committed instructions",
                self.total_cycles()
            ));
        }
        if self.committed > 0 && self.base_cycles == 0 {
            return Err(format!(
                "CPI stack committed {} instructions in zero base cycles",
                self.committed
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, cat) in StallCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            StallCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCategory::COUNT);
    }

    #[test]
    fn stack_accumulates_and_sums() {
        let mut s = CpiStack::new();
        s.record_commit(2);
        s.record_commit(1);
        s.record_stall(StallCategory::MemDram);
        s.record_stall(StallCategory::MemDram);
        s.record_stall(StallCategory::DepChain);
        assert_eq!(s.committed, 3);
        assert_eq!(s.base_cycles, 2);
        assert_eq!(s.stall(StallCategory::MemDram), 2);
        assert_eq!(s.total_cycles(), 5);
        assert!((s.cpi() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.category_cpi(StallCategory::MemDram) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.fraction(StallCategory::DepChain) - 0.2).abs() < 1e-12);
        assert!(s.check_against(5).is_ok());
        assert!(s.check_against(6).is_err());
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = CpiStack::new();
        a.record_commit(1);
        a.record_stall(StallCategory::CommWait);
        let mut b = CpiStack::new();
        b.record_commit(2);
        b.record_stall(StallCategory::CommWait);
        b.record_stall(StallCategory::Frontend);
        a.merge(&b);
        assert_eq!(a.committed, 3);
        assert_eq!(a.base_cycles, 2);
        assert_eq!(a.stall(StallCategory::CommWait), 2);
        assert_eq!(a.total_cycles(), 5);
    }

    #[test]
    fn corrupt_stacks_fail_check() {
        let mut s = CpiStack::new();
        s.record_stall(StallCategory::Frontend);
        assert!(s.check().is_err(), "cycles without commits");
        let s = CpiStack {
            committed: 5,
            base_cycles: 0,
            stalls: [0; StallCategory::COUNT],
        };
        assert!(s.check().is_err(), "commits without base cycles");
        assert!(CpiStack::new().check().is_ok(), "empty stack is fine");
    }
}
