//! A small dependency-free metrics registry.
//!
//! Three metric shapes cover the simulator's needs: monotonic
//! **counters** (events), **gauges** (last-written values, e.g. a mean
//! occupancy), and log2-bucketed **histograms** (latency and episode-
//! length distributions). Metrics are keyed by name and render to an
//! aligned table or CSV.

use std::collections::BTreeMap;

use crate::json::Json;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros),
/// so the full `u64` range needs 65 buckets and recording is two
/// instructions — fit for per-cycle telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in the bucket containing `v`.
    pub fn bucket_count(&self, v: u64) -> u64 {
        self.buckets[Self::bucket_of(v)]
    }

    /// Compact rendering of the non-empty buckets:
    /// `"[0]:3 [1]:5 [2-3]:9 ..."`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            let range = match i {
                0 => "[0]".to_owned(),
                1 => "[1]".to_owned(),
                _ => format!("[{}-{}]", 1u64 << (i - 1), (1u64 << i) - 1),
            };
            out.push_str(&format!("{range}:{n}"));
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written value.
    Gauge(f64),
    /// Log2-bucketed sample distribution (boxed: 65 buckets dwarf the
    /// scalar shapes).
    Histogram(Box<Histogram>),
}

/// A name-keyed collection of metrics with table/CSV rendering.
///
/// ```
/// use fgstp_telemetry::Registry;
///
/// let mut r = Registry::new();
/// r.inc("cycles", 100);
/// r.set_gauge("occupancy", 3.5);
/// r.observe("episode-cycles", 7);
/// assert_eq!(r.counter("cycles"), 100);
/// assert!(r.to_csv().contains("cycles,counter,100"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `n` to the counter `name` (creating it at zero).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric shape.
    pub fn inc(&mut self, name: &str, n: u64) {
        match self
            .metrics
            .entry(name.to_owned())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name` to `v` (creating it).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric shape.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        match self
            .metrics
            .entry(name.to_owned())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Records one sample into the histogram `name` (creating it).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric shape.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self
            .metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.observe(v),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Value of the counter `name` (0 if absent or a different shape).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The metric registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The registry as one flat JSON object, each metric reduced to a
    /// number: counters and gauges their value, histograms their sample
    /// count. This is the `counters` body of the service's `stats`
    /// reply — the shape remote clients key into (e.g.
    /// `counters.service.corun-jobs`).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => *c as f64,
                        Metric::Gauge(g) => *g,
                        Metric::Histogram(h) => h.count() as f64,
                    };
                    (name.to_owned(), Json::Num(v))
                })
                .collect(),
        )
    }

    /// Renders `name,kind,value` CSV rows (histograms report their mean;
    /// the full buckets are in [`Registry::render`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,value\n");
        for (name, m) in self.iter() {
            let (kind, value) = match m {
                Metric::Counter(c) => ("counter", c.to_string()),
                Metric::Gauge(g) => ("gauge", format!("{g}")),
                Metric::Histogram(h) => ("histogram", format!("{}", h.mean())),
            };
            out.push_str(&format!("{name},{kind},{value}\n"));
        }
        out
    }

    /// Renders an aligned name/value listing, histograms with buckets.
    pub fn render(&self) -> String {
        let width = self.metrics.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (name, m) in self.iter() {
            let value = match m {
                Metric::Counter(c) => c.to_string(),
                Metric::Gauge(g) => format!("{g:.3}"),
                Metric::Histogram(h) => format!(
                    "n={} mean={:.1} max={} {}",
                    h.count(),
                    h.mean(),
                    h.max(),
                    h.render()
                ),
            };
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_flattens_every_metric_shape_to_a_number() {
        let mut r = Registry::new();
        r.inc("service.corun-jobs", 3);
        r.set_gauge("occupancy", 2.5);
        r.observe("episode-cycles", 7);
        r.observe("episode-cycles", 9);
        let v = r.to_json();
        assert_eq!(v.get("service.corun-jobs"), Some(&Json::Num(3.0)));
        assert_eq!(v.get("occupancy"), Some(&Json::Num(2.5)));
        assert_eq!(
            v.get("episode-cycles"),
            Some(&Json::Num(2.0)),
            "histograms report their sample count"
        );
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(2), 2, "2 and 3 share a bucket");
        assert_eq!(h.bucket_count(1024), 1);
        assert_eq!(h.bucket_count(1025), 1, "same bucket as 1024");
        let r = h.render();
        assert!(r.contains("[0]:1"), "{r}");
        assert!(r.contains("[2-3]:2"), "{r}");
        assert!(r.contains("[1024-2047]:1"), "{r}");
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.bucket_count(u64::MAX), 1);
        assert_eq!(Histogram::new().render(), "(empty)");
    }

    #[test]
    fn registry_round_trips_all_shapes() {
        let mut r = Registry::new();
        r.inc("a", 2);
        r.inc("a", 3);
        r.set_gauge("b", 1.5);
        r.set_gauge("b", 2.5);
        r.observe("c", 10);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert!(matches!(r.get("b"), Some(Metric::Gauge(g)) if *g == 2.5));
        assert_eq!(r.len(), 3);
        let csv = r.to_csv();
        assert!(csv.contains("a,counter,5"));
        assert!(csv.contains("b,gauge,2.5"));
        let rendered = r.render();
        assert!(rendered.contains("n=1"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn shape_conflicts_are_rejected() {
        let mut r = Registry::new();
        r.set_gauge("x", 1.0);
        r.inc("x", 1);
    }
}
