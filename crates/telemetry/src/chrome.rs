//! Chrome `trace_event` JSON export.
//!
//! Renders an episode timeline (see [`crate::Episode`]) in the Trace
//! Event Format understood by Perfetto and `chrome://tracing`: one
//! complete-duration event (`"ph":"X"`) per episode, one process per
//! machine, one thread per core. Cycles map 1:1 to the format's
//! microsecond timestamps, so one timeline unit is one cycle.
//!
//! The writer emits the object form (`{"traceEvents": [...]}`), which
//! both viewers accept, and escapes every string it embeds.

use crate::sink::Episode;

/// Escapes `s` as the body of a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `episodes` as a Chrome trace for the machine named `machine`
/// (the process name in the viewer). Returns the complete JSON document.
pub fn write_chrome_trace(machine: &str, episodes: &[Episode]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&ev);
    };

    // Metadata: process and thread names.
    push(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(machine)
        ),
    );
    let mut cores: Vec<usize> = episodes.iter().map(|e| e.core).collect();
    cores.sort_unstable();
    cores.dedup();
    for core in &cores {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{core},\
                 \"args\":{{\"name\":\"core {core}\"}}}}"
            ),
        );
    }

    for e in episodes {
        // Zero-length events confuse the viewers; every episode spans at
        // least one cycle by construction.
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"cpi\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"cycles\":{}}}}}",
                escape_json(e.name()),
                e.start,
                e.cycles(),
                e.core,
                e.cycles()
            ),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpi::StallCategory;

    /// A minimal recursive-descent JSON syntax checker: enough to assert
    /// the exporter emits well-formed JSON (what Perfetto's loader
    /// requires before interpreting the events).
    fn validate_json(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    skip_ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        skip_ws(b, i);
                        string(b, i)?;
                        skip_ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {i}")),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    skip_ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        skip_ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {i}")),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    while *i < b.len()
                        && (b[*i].is_ascii_digit() || matches!(b[*i], b'-' | b'+' | b'.' | b'e'))
                    {
                        *i += 1;
                    }
                    Ok(())
                }
                Some(b't') | Some(b'f') | Some(b'n') => {
                    while *i < b.len() && b[*i].is_ascii_alphabetic() {
                        *i += 1;
                    }
                    Ok(())
                }
                other => Err(format!("unexpected {other:?} at {i}")),
            }
        }
        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected string at {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'\\' => *i += 2,
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at {i}"));
        }
        Ok(())
    }

    fn sample_episodes() -> Vec<Episode> {
        vec![
            Episode {
                core: 0,
                category: None,
                start: 0,
                end: 5,
            },
            Episode {
                core: 0,
                category: Some(StallCategory::MemDram),
                start: 5,
                end: 140,
            },
            Episode {
                core: 1,
                category: Some(StallCategory::CommWait),
                start: 2,
                end: 9,
            },
        ]
    }

    #[test]
    fn trace_is_valid_json_with_duration_events() {
        let json = write_chrome_trace("fgstp-small", &sample_episodes());
        validate_json(&json).expect("exporter must emit valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"dram\""));
        assert!(json.contains("\"dur\":135"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"name\":\"fgstp-small\""));
        assert!(json.contains("\"name\":\"core 0\""));
    }

    #[test]
    fn empty_timeline_is_still_valid() {
        let json = write_chrome_trace("m", &[]);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("process_name"));
    }

    #[test]
    fn names_are_escaped() {
        let json = write_chrome_trace("evil\"name\\with\ncontrol", &[]);
        validate_json(&json).expect("escaping keeps the JSON valid");
        assert!(json.contains("evil\\\"name\\\\with\\ncontrol"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("{\"a\":[1,2,{\"b\":\"c\"}]}").is_ok());
    }
}
