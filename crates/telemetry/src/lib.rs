//! # fgstp-telemetry
//!
//! Cycle-accounting observability for the Fg-STP reproduction: where do
//! the cycles go?
//!
//! The timing models report end-of-run IPC plus scattered counters; this
//! crate adds the standard instrument for explaining *why* a knob moved a
//! geomean — **CPI stacks**. Every non-commit cycle of every core is
//! charged to exactly one [`StallCategory`] (frontend, branch redirect,
//! window full, dependence chain, FU contention, the miss level that
//! serviced the blocking load, and the Fg-STP-specific communication /
//! replication / memory-speculation / commit-sync overheads), so the
//! per-category cycle counts plus the base (committing) cycles always sum
//! to the measured total — the stack invariant [`CpiStack::check`]
//! enforces.
//!
//! The crate is dependency-free and knows nothing about the pipeline: the
//! timing models drive it through the [`CycleSink`] trait, which uses an
//! associated `const ENABLED` so the disabled sink ([`NullSink`])
//! compiles to nothing — no `dyn` dispatch, no branch, no cost in the
//! cycle loop.
//!
//! Three layers:
//!
//! * [`registry`] — a small metrics registry (monotonic counters, gauges,
//!   log2-bucketed histograms) with table/CSV rendering;
//! * [`cpi`] + [`sink`] — stall categories, CPI stacks, and the per-cycle
//!   sinks that accumulate them (plus contiguous same-category episodes);
//! * [`chrome`] — a Chrome `trace_event` JSON writer: the recorded
//!   episodes load directly in Perfetto / `chrome://tracing`;
//! * [`json`] — a minimal dependency-free JSON value type (parser and
//!   deterministic writer) shared by the perf-regression harness and the
//!   `fgstpd` batch-simulation protocol.
//!
//! ```
//! use fgstp_telemetry::{CpiSink, CycleOutcome, CycleSink, StallCategory};
//!
//! let mut sink = CpiSink::new(1);
//! sink.record(0, 0, CycleOutcome::Stall(StallCategory::Frontend));
//! sink.record(0, 1, CycleOutcome::Commit(2));
//! let stack = sink.merged();
//! assert_eq!(stack.total_cycles(), 2);
//! assert!(stack.check().is_ok());
//! ```

pub mod chrome;
pub mod cpi;
pub mod json;
pub mod registry;
pub mod sink;

/// Canonical metric names shared by every counter producer (the session
/// driver, the batch service) and consumer (CLI summaries, CI smoke
/// checks), so a rename cannot silently decouple the two sides.
pub mod names {
    /// Sampled runs whose live-points were loaded from a stored snapshot
    /// (functional warming skipped entirely).
    pub const SNAPSHOT_HITS: &str = "sampling.snapshot-hits";
    /// Sampled runs that had to warm cold (no usable snapshot on disk).
    pub const SNAPSHOT_MISSES: &str = "sampling.snapshot-misses";
    /// Instructions retired through the functional-warming fast path
    /// across all sampled runs. Zero on a fully snapshot-warm rerun —
    /// the property the E18 smoke test asserts.
    pub const WARMED_INSTS: &str = "sampling.warmed-insts";
}

pub use chrome::write_chrome_trace;
pub use cpi::{CpiStack, MemLevel, StallCategory};
pub use json::Json;
pub use registry::{Histogram, Metric, Registry};
pub use sink::{CpiSink, CycleOutcome, CycleSink, Episode, NullSink};
