//! Per-cycle sinks: how the timing models feed the accounting.
//!
//! The cycle loop is the hottest code in the simulator, so the sink is a
//! compile-time choice: drivers are generic over [`CycleSink`] and every
//! accounting call sits behind `if S::ENABLED` with `ENABLED` an
//! associated constant. With [`NullSink`] the whole instrumentation body
//! is dead code the optimizer removes — no virtual dispatch, no runtime
//! flag, no cost.

use crate::cpi::{CpiStack, StallCategory};

/// What one core did on one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleOutcome {
    /// Committed `n ≥ 1` architectural instructions (a base cycle).
    Commit(u32),
    /// Committed nothing; the cycle is charged to one category.
    Stall(StallCategory),
}

/// Receiver for per-cycle attribution events.
///
/// `ENABLED` gates every call site at compile time: drivers must wrap
/// instrumentation in `if S::ENABLED { ... }` so a [`NullSink`] build
/// carries zero cost in the cycle loop (static dispatch only — no `dyn`).
pub trait CycleSink {
    /// Whether this sink records anything. Call sites are gated on this
    /// constant, so a `false` sink erases the instrumentation entirely.
    const ENABLED: bool;

    /// Records the outcome of cycle `now` on `core`.
    fn record(&mut self, core: usize, now: u64, outcome: CycleOutcome);
}

/// The disabled sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl CycleSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _core: usize, _now: u64, _outcome: CycleOutcome) {}
}

/// One maximal run of consecutive cycles a core spent in the same state —
/// the unit the Chrome-trace exporter renders as a duration slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// Core the episode happened on.
    pub core: usize,
    /// `None` for a committing (base) episode, the category otherwise.
    pub category: Option<StallCategory>,
    /// First cycle of the episode.
    pub start: u64,
    /// One past the last cycle of the episode.
    pub end: u64,
}

impl Episode {
    /// Episode length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// Display name ("commit" or the category label).
    pub fn name(&self) -> &'static str {
        match self.category {
            None => "commit",
            Some(c) => c.label(),
        }
    }
}

/// The state an in-progress episode is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenEpisode {
    category: Option<StallCategory>,
    start: u64,
}

/// Episodes kept before the recorder stops extending the log (the stacks
/// keep counting; only the per-cycle timeline is truncated).
pub const DEFAULT_EPISODE_CAP: usize = 250_000;

/// The recording sink: per-core [`CpiStack`]s, and (optionally) the
/// episode timeline the Chrome-trace exporter consumes.
#[derive(Debug, Clone)]
pub struct CpiSink {
    stacks: Vec<CpiStack>,
    open: Vec<Option<OpenEpisode>>,
    episodes: Vec<Episode>,
    record_episodes: bool,
    cap: usize,
    truncated: bool,
}

impl CpiSink {
    /// A sink for `cores` cores, counting stacks only (no timeline).
    pub fn new(cores: usize) -> CpiSink {
        CpiSink {
            stacks: vec![CpiStack::new(); cores],
            open: vec![None; cores],
            episodes: Vec::new(),
            record_episodes: false,
            cap: DEFAULT_EPISODE_CAP,
            truncated: false,
        }
    }

    /// A sink that additionally records the episode timeline (for the
    /// Chrome-trace exporter), keeping at most [`DEFAULT_EPISODE_CAP`]
    /// episodes.
    pub fn with_episodes(cores: usize) -> CpiSink {
        CpiSink {
            record_episodes: true,
            ..CpiSink::new(cores)
        }
    }

    /// Per-core stacks, indexed by core id.
    pub fn stacks(&self) -> &[CpiStack] {
        &self.stacks
    }

    /// All per-core stacks merged into one machine-level stack
    /// (aggregate core-cycles; see [`CpiStack`]).
    pub fn merged(&self) -> CpiStack {
        let mut m = CpiStack::new();
        for s in &self.stacks {
            m.merge(s);
        }
        m
    }

    /// Closes any open episodes at `end` and returns the timeline (empty
    /// unless built by [`CpiSink::with_episodes`]).
    pub fn finish_episodes(&mut self, end: u64) -> Vec<Episode> {
        for (core, open) in self.open.iter_mut().enumerate() {
            if let Some(o) = open.take() {
                if self.episodes.len() < self.cap {
                    self.episodes.push(Episode {
                        core,
                        category: o.category,
                        start: o.start,
                        end,
                    });
                }
            }
        }
        std::mem::take(&mut self.episodes)
    }

    /// Whether the episode timeline hit its cap and stopped extending
    /// (the stacks are never truncated).
    pub fn episodes_truncated(&self) -> bool {
        self.truncated
    }
}

impl CycleSink for CpiSink {
    const ENABLED: bool = true;

    fn record(&mut self, core: usize, now: u64, outcome: CycleOutcome) {
        match outcome {
            CycleOutcome::Commit(n) => self.stacks[core].record_commit(n),
            CycleOutcome::Stall(cat) => self.stacks[core].record_stall(cat),
        }
        if !self.record_episodes {
            return;
        }
        let category = match outcome {
            CycleOutcome::Commit(_) => None,
            CycleOutcome::Stall(cat) => Some(cat),
        };
        match self.open[core] {
            // Contiguous same-state cycles extend the open episode.
            Some(o) if o.category == category => {}
            Some(o) => {
                if self.episodes.len() < self.cap {
                    self.episodes.push(Episode {
                        core,
                        category: o.category,
                        start: o.start,
                        end: now,
                    });
                } else {
                    self.truncated = true;
                }
                self.open[core] = Some(OpenEpisode {
                    category,
                    start: now,
                });
            }
            None => {
                self.open[core] = Some(OpenEpisode {
                    category,
                    start: now,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        // Recording through it is a no-op (and must not panic).
        NullSink.record(3, 7, CycleOutcome::Commit(1));
    }

    #[test]
    fn cpi_sink_accumulates_per_core() {
        let mut s = CpiSink::new(2);
        s.record(0, 0, CycleOutcome::Commit(2));
        s.record(1, 0, CycleOutcome::Stall(StallCategory::CommWait));
        s.record(0, 1, CycleOutcome::Stall(StallCategory::MemDram));
        s.record(1, 1, CycleOutcome::Commit(1));
        assert_eq!(s.stacks()[0].committed, 2);
        assert_eq!(s.stacks()[1].stall(StallCategory::CommWait), 1);
        let m = s.merged();
        assert_eq!(m.committed, 3);
        assert_eq!(m.total_cycles(), 4, "two cores × two cycles");
        assert!(m.check_against(4).is_ok());
    }

    #[test]
    fn episodes_capture_contiguous_runs() {
        let mut s = CpiSink::with_episodes(1);
        for now in 0..3 {
            s.record(0, now, CycleOutcome::Stall(StallCategory::Frontend));
        }
        for now in 3..5 {
            s.record(0, now, CycleOutcome::Commit(1));
        }
        s.record(0, 5, CycleOutcome::Stall(StallCategory::MemL2));
        let eps = s.finish_episodes(6);
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[0].category, Some(StallCategory::Frontend));
        assert_eq!((eps[0].start, eps[0].end), (0, 3));
        assert_eq!(eps[1].category, None);
        assert_eq!(eps[1].name(), "commit");
        assert_eq!(eps[2].cycles(), 1);
    }

    #[test]
    fn plain_sink_keeps_no_timeline() {
        let mut s = CpiSink::new(1);
        s.record(0, 0, CycleOutcome::Commit(1));
        assert!(s.finish_episodes(1).is_empty());
    }

    #[test]
    fn episode_cap_truncates_timeline_not_stacks() {
        let mut s = CpiSink::with_episodes(1);
        s.cap = 2;
        // Alternate states: every cycle closes an episode.
        for now in 0..8 {
            let outcome = if now % 2 == 0 {
                CycleOutcome::Commit(1)
            } else {
                CycleOutcome::Stall(StallCategory::DepChain)
            };
            s.record(0, now, outcome);
        }
        assert!(s.episodes_truncated());
        assert_eq!(s.merged().total_cycles(), 8, "stacks keep counting");
        assert!(s.finish_episodes(8).len() <= 3);
    }
}
