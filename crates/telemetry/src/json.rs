//! Minimal JSON reading and writing.
//!
//! The workspace is dependency-free by design, so it carries its own tiny
//! JSON layer: a recursive-descent parser for the subset it emits
//! (objects, arrays, strings, numbers, booleans, null) and a writer with
//! deterministic key order. This is *not* a general-purpose JSON library
//! — it exists to round-trip `BENCH_hotloop.json` for the perf gate, to
//! serialize [`fgstp-sim`]'s `ExperimentSpec`, and to carry the
//! newline-delimited `fgstpd` batch-simulation protocol, all without
//! external tooling (no serde, no python, no jq).
//!
//! [`fgstp-sim`]: ../../fgstp_sim/index.html

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module writes).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Renders with 2-space indentation and `\n` line endings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn render_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                members.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let start = *pos;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(start..start + len)
                    .and_then(|ch| std::str::from_utf8(ch).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                s.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_schema_shape() {
        let v = Json::Obj(vec![
            ("schema".to_owned(), Json::Str("x/v1".to_owned())),
            ("iterations".to_owned(), Json::Num(5.0)),
            (
                "machines".to_owned(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".to_owned(), Json::Str("single-small".to_owned())),
                    ("mips_median".to_owned(), Json::Num(3.25)),
                ])]),
            ),
            ("baseline".to_owned(), Json::Null),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(
            back.get("machines").unwrap().as_arr().unwrap()[0]
                .get("name")
                .unwrap()
                .as_str(),
            Some("single-small")
        );
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"{"a": "x\n\"y\"", "b": [1, -2.5, 1e3], "c": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\n\"y\""));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[1].as_f64(), Some(-2.5));
        assert_eq!(b[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(5.0).render(), "5\n");
        assert!(Json::Num(0.125).render().starts_with("0.125"));
    }
}
