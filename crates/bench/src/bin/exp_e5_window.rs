//! E5 — partition lookahead window size.
//!
//! Fg-STP "looks for parallelism on large instruction windows"; this
//! experiment sweeps the lookahead window from 32 to 1024 instructions.
//! The window doubles as the fetch-skew bound between the cores, so small
//! windows both partition worse and couple the frontends tighter.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig, PartitionPolicy};
use fgstp_bench::{print_experiment, ExpArgs, SuiteBaseline};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, Table};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let base = SuiteBaseline::new(&session);
    let jobs = base.jobs();

    let mut table = Table::new(["window (insts)", "geomean speedup", "geomean comms/100"]);
    for window in [32usize, 64, 128, 256, 512, 1024] {
        let points = session.par_map(&jobs, |((_, t), single)| {
            let mut cfg = FgstpConfig::small();
            cfg.partition.policy = PartitionPolicy::SliceLookahead {
                window,
                refine_passes: 2,
            };
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            (
                r.speedup_over(&single.result),
                (s.partition.comms_per_inst() * 100.0).max(1e-9),
            )
        });
        let (speedups, comm_rates): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
        table.row([
            window.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
        ]);
    }
    print_experiment("E5", "partition lookahead window sweep", &args, &table);
}
