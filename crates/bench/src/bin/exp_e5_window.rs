//! E5 — partition lookahead window size.
//!
//! Fg-STP "looks for parallelism on large instruction windows"; this
//! experiment sweeps the lookahead window from 32 to 1024 instructions.
//! The window doubles as the fetch-skew bound between the cores, so small
//! windows both partition worse and couple the frontends tighter.

use fgstp::{run_fgstp, FgstpConfig, PartitionPolicy};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, run_on, runner::trace_workload, MachineKind, Table};
use fgstp_workloads::suite;

fn main() {
    let args = ExpArgs::parse();
    let workloads = suite(args.scale);
    let traces: Vec<_> = workloads
        .iter()
        .map(|w| trace_workload(w, args.scale))
        .collect();
    let singles: Vec<_> = traces
        .iter()
        .map(|t| run_on(MachineKind::SingleSmall, t.insts()))
        .collect();

    let mut table = Table::new(["window (insts)", "geomean speedup", "geomean comms/100"]);
    for window in [32usize, 64, 128, 256, 512, 1024] {
        let mut speedups = Vec::new();
        let mut comm_rates = Vec::new();
        for (t, single) in traces.iter().zip(&singles) {
            let mut cfg = FgstpConfig::small();
            cfg.partition.policy = PartitionPolicy::SliceLookahead {
                window,
                refine_passes: 2,
            };
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            speedups.push(r.speedup_over(&single.result));
            comm_rates.push((s.partition.comms_per_inst() * 100.0).max(1e-9));
        }
        table.row([
            window.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
        ]);
    }
    print_experiment("E5", "partition lookahead window sweep", &args, &table);
}
