//! E1 — per-benchmark speedup on the small 2-core CMP.
//!
//! Core Fusion and Fg-STP vs one small core, for every workload plus the
//! geomean. The paper's headline: Fg-STP beats Core Fusion by ~7% on
//! average on the small configuration.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp_bench::{run_speedup_experiment, ExpArgs};
use fgstp_sim::MachineKind;

fn main() {
    let args = ExpArgs::parse();
    run_speedup_experiment(
        "E1",
        "speedup over one small core (small 2-core CMP)",
        &args,
        MachineKind::SMALL_CMP,
    );
}
