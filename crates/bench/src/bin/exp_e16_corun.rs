//! E16 — multi-program co-run scenarios (extension beyond the paper).
//!
//! The paper evaluates Fg-STP with the thread alone on the chip. E16 asks
//! what happens when it is *not* alone: independent programs are placed on
//! disjoint core sets of one machine and coupled through the shared L2 and
//! a finite-bandwidth DRAM channel (`fgstp::run_corun`). Three tables:
//!
//! 1. **Interference** — per foreground workload: solo cycles on a 2-core
//!    Fg-STP machine vs. the same machine co-running against a
//!    memory-bound background (2-program) and two backgrounds (3-program),
//!    plus Fg-STP's own 2-core-over-1-core speedup measured *under*
//!    interference (both variants co-running against the same
//!    background). The default 1 MiB shared L2 holds every suite
//!    working set, so the slowdown here is pure DRAM-bandwidth and MSHR
//!    contention.
//! 2. **Shared-L2 capacity pressure** — the same pairing over a machine
//!    whose L1d is shrunk to 4 KiB and shared L2 to 32 KiB, small enough
//!    that the foreground's reused lines live in the shared L2 and the
//!    background's pointer-chase footprint evicts them: the foreground's
//!    L2 miss inflation and the resulting slowdown.
//! 3. **Asymmetric machines** — the foreground's 2-core machine upgraded
//!    to a medium+small pair (`FgstpConfig::with_per_core`), co-running
//!    against the same background: does capacity-weighted steering exploit
//!    the wide core while contended?
//! 4. **Dynamic core claiming** — the E10 controller revived as a
//!    scheduler (`fgstp::run_dynamic`): the thread holds one core while a
//!    co-runner occupies the partner, claims the second core when the
//!    co-runner finishes, and pays a reconfiguration penalty at the
//!    switch.
//!
//! Every co-run is one deterministic job (fixed-priority, round-robin
//! arbitration): the binary re-runs one scenario and asserts bit-identical
//! cycles before printing.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b` to narrow the foreground set,
//! `--threads=N`, `--no-cache`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{
    run_corun, run_dynamic, CoRunContention, CoRunPlan, CoRunProgram, CorePhase, DynamicConfig,
    FgstpConfig,
};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::CoreConfig;
use fgstp_sim::{geomean, run_on_corun, BenchResult, MachineKind, Table};
use fgstp_workloads::by_name;

/// Memory-bound background co-runner for the 2-program scenarios.
const BG2: &str = "mcf_pointer";
/// Streaming second background for the 3-program scenario.
const BG3: &str = "libq_stream";

/// The foreground's run out of a co-run result set.
fn fg(results: &[BenchResult]) -> &fgstp_sim::MachineRun {
    &results[0].runs[0]
}

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let kind = MachineKind::FgstpSmall;

    let traced = session.suite_traces();
    let bg2 = by_name(BG2, args.scale()).expect("background workload");
    let bg3 = by_name(BG3, args.scale()).expect("background workload");
    let bg2_trace = session.trace(&bg2);
    let bg3_trace = session.trace(&bg3);

    struct Point {
        solo: u64,
        co2: u64,
        co2_narrow: u64,
        co3: u64,
    }

    let points: Vec<Point> = session.par_map(&traced, |(w, t)| {
        let solo = run_on_corun(
            kind,
            std::slice::from_ref(w),
            std::slice::from_ref(t),
            &[2],
            false,
        );
        let pair_w = [w.clone(), bg2.clone()];
        let pair_t = [t.clone(), bg2_trace.clone()];
        let co2 = run_on_corun(kind, &pair_w, &pair_t, &[2, 2], false);
        let co2_narrow = run_on_corun(kind, &pair_w, &pair_t, &[1, 2], false);
        let co3 = run_on_corun(
            kind,
            &[w.clone(), bg2.clone(), bg3.clone()],
            &[t.clone(), bg2_trace.clone(), bg3_trace.clone()],
            &[2, 2, 2],
            false,
        );
        Point {
            solo: fg(&solo).result.cycles,
            co2: fg(&co2).result.cycles,
            co2_narrow: fg(&co2_narrow).result.cycles,
            co3: fg(&co3).result.cycles,
        }
    });

    // Determinism gate: the first scenario re-run must be bit-identical.
    if let Some((w, t)) = traced.first() {
        let rerun = run_on_corun(
            kind,
            &[w.clone(), bg2.clone()],
            &[t.clone(), bg2_trace.clone()],
            &[2, 2],
            false,
        );
        assert_eq!(
            fg(&rerun).result.cycles,
            points[0].co2,
            "co-run must be deterministic across reruns"
        );
        assert_eq!(fg(&rerun).result.mem.l2, {
            let co2 = run_on_corun(
                kind,
                &[w.clone(), bg2.clone()],
                &[t.clone(), bg2_trace.clone()],
                &[2, 2],
                false,
            );
            fg(&co2).result.mem.l2
        });
    }

    let mut interference = Table::new([
        "workload".to_string(),
        "solo cyc".to_string(),
        "vs bg cyc".to_string(),
        "slowdown".to_string(),
        "3prog slow".to_string(),
        "itf spdup".to_string(),
    ]);
    let (mut slows2, mut slows3, mut itf) = (Vec::new(), Vec::new(), Vec::new());
    for ((w, _), p) in traced.iter().zip(&points) {
        let slow2 = p.co2 as f64 / p.solo as f64;
        let slow3 = p.co3 as f64 / p.solo as f64;
        // Fg-STP's 2-over-1-core speedup with the background present.
        let spdup = p.co2_narrow as f64 / p.co2 as f64;
        slows2.push(slow2);
        slows3.push(slow3);
        itf.push(spdup);
        interference.row([
            w.name.to_string(),
            p.solo.to_string(),
            p.co2.to_string(),
            format!("{slow2:.3}"),
            format!("{slow3:.3}"),
            format!("{spdup:.3}"),
        ]);
    }
    interference.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(&slows2)),
        format!("{:.3}", geomean(&slows3)),
        format!("{:.3}", geomean(&itf)),
    ]);
    print_experiment(
        "E16",
        &format!("co-run interference: 2-core Fg-STP foreground vs {BG2} (+{BG3}), shared DRAM"),
        &args,
        &interference,
    );

    // Table 2: capacity pressure. The suite's working sets all fit the
    // default 1 MiB shared L2 next to the background's (and mostly fit
    // the 16 KiB L1d outright), so shrink both levels until the
    // foreground keeps reused lines in the shared L2 and the background
    // can evict them.
    let mut pressured = HierarchyConfig::small(2);
    pressured.l1d.size_bytes = 4 << 10;
    pressured.l2.size_bytes = 32 << 10;
    let press_points: Vec<(u64, u64, u64, u64)> = session.par_map(&traced, |(_, t)| {
        let solo_plan = CoRunPlan::new(vec![CoRunProgram::new(FgstpConfig::small())]);
        let co_plan = CoRunPlan::new(vec![
            CoRunProgram::new(FgstpConfig::small()),
            CoRunProgram::new(FgstpConfig::small()),
        ]);
        let solo = run_corun(&[t.insts()], &solo_plan, &pressured);
        let co = run_corun(&[t.insts(), bg2_trace.insts()], &co_plan, &pressured);
        (
            solo.programs[0].result.cycles,
            co.programs[0].result.cycles,
            solo.programs[0].result.mem.l2.misses,
            co.programs[0].result.mem.l2.misses,
        )
    });
    let mut pressure = Table::new([
        "workload".to_string(),
        "solo cyc".to_string(),
        "vs bg cyc".to_string(),
        "slowdown".to_string(),
        "solo l2m".to_string(),
        "co l2m".to_string(),
        "l2 miss x".to_string(),
    ]);
    let (mut pslow, mut pmiss) = (Vec::new(), Vec::new());
    for ((w, _), (solo, co, sm, cm)) in traced.iter().zip(&press_points) {
        let slow = *co as f64 / *solo as f64;
        let missx = if *sm == 0 {
            *cm as f64
        } else {
            *cm as f64 / *sm as f64
        };
        pslow.push(slow);
        pmiss.push(missx.max(f64::MIN_POSITIVE));
        pressure.row([
            w.name.to_string(),
            solo.to_string(),
            co.to_string(),
            format!("{slow:.3}"),
            sm.to_string(),
            cm.to_string(),
            format!("{missx:.2}"),
        ]);
    }
    pressure.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(&pslow)),
        String::new(),
        String::new(),
        format!("{:.2}", geomean(&pmiss)),
    ]);
    print_experiment(
        "E16",
        &format!("shared-L2 capacity pressure: 4 KiB L1d + 32 KiB shared L2, foreground vs {BG2}"),
        &args,
        &pressure,
    );

    // Table 3: symmetric vs. asymmetric foreground machine, both
    // co-running against the background.
    let hetero_base = HierarchyConfig::small(2);
    let asym_points: Vec<(u64, u64)> = session.par_map(&traced, |(_, t)| {
        let bg_prog = CoRunProgram::new(FgstpConfig::small());
        let sym = CoRunPlan {
            programs: vec![CoRunProgram::new(FgstpConfig::small()), bg_prog.clone()],
            contention: CoRunContention::shared(),
        };
        let asym = CoRunPlan {
            programs: vec![
                CoRunProgram::new(
                    FgstpConfig::small()
                        .with_per_core(vec![CoreConfig::medium(), CoreConfig::small()]),
                ),
                bg_prog,
            ],
            contention: CoRunContention::shared(),
        };
        let s = run_corun(&[t.insts(), bg2_trace.insts()], &sym, &hetero_base);
        let a = run_corun(&[t.insts(), bg2_trace.insts()], &asym, &hetero_base);
        (s.programs[0].result.cycles, a.programs[0].result.cycles)
    });
    let mut hetero = Table::new([
        "workload".to_string(),
        "small+small".to_string(),
        "medium+small".to_string(),
        "speedup".to_string(),
    ]);
    let mut hspeed = Vec::new();
    for ((w, _), (s, a)) in traced.iter().zip(&asym_points) {
        let sp = *s as f64 / *a as f64;
        hspeed.push(sp);
        hetero.row([
            w.name.to_string(),
            s.to_string(),
            a.to_string(),
            format!("{sp:.3}"),
        ]);
    }
    hetero.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(&hspeed)),
    ]);
    print_experiment(
        "E16",
        &format!("asymmetric foreground machine under contention (vs {BG2})"),
        &args,
        &hetero,
    );

    // Table 4: dynamic core claiming. The partner core is busy with a
    // co-runner until `busy` cycles in; the thread then claims it.
    let dyncfg = DynamicConfig::default();
    let dyn_points: Vec<(u64, u64, u64, u64)> = session.par_map(&traced, |(_, t)| {
        let cfg = FgstpConfig::small();
        let hcfg = HierarchyConfig::small(2);
        let one = run_dynamic(
            t.insts(),
            &cfg,
            &hcfg,
            &[CorePhase {
                from_cycle: 0,
                cores: 1,
            }],
            &dyncfg,
        );
        let two = run_dynamic(
            t.insts(),
            &cfg,
            &hcfg,
            &[CorePhase {
                from_cycle: 0,
                cores: 2,
            }],
            &dyncfg,
        );
        // The co-runner departs a third of the way into the single-core run.
        let busy = one.cycles / 3;
        let claimed = run_dynamic(
            t.insts(),
            &cfg,
            &hcfg,
            &[
                CorePhase {
                    from_cycle: 0,
                    cores: 1,
                },
                CorePhase {
                    from_cycle: busy,
                    cores: 2,
                },
            ],
            &dyncfg,
        );
        (one.cycles, two.cycles, claimed.cycles, claimed.reconfigs)
    });
    let mut dynamic = Table::new([
        "workload".to_string(),
        "1 core".to_string(),
        "2 cores".to_string(),
        "claim@1/3".to_string(),
        "reconfigs".to_string(),
        "vs 1-core".to_string(),
    ]);
    let mut dspeed = Vec::new();
    for ((w, _), (one, two, claimed, reconfigs)) in traced.iter().zip(&dyn_points) {
        let sp = *one as f64 / *claimed as f64;
        dspeed.push(sp);
        dynamic.row([
            w.name.to_string(),
            one.to_string(),
            two.to_string(),
            claimed.to_string(),
            reconfigs.to_string(),
            format!("{sp:.3}"),
        ]);
    }
    dynamic.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(&dspeed)),
    ]);
    print_experiment(
        "E16",
        "dynamic core claiming: partner core freed a third of the way in (E10 policy as scheduler)",
        &args,
        &dynamic,
    );
    println!("determinism: co-run rerun bit-identical (cycles and shared-L2 stats)");
}
