//! E4 — ablation of Fg-STP's two signature mechanisms.
//!
//! Runs the suite with dependence speculation and/or replication disabled
//! and reports the geomean speedup over one small core. The paper's claim
//! that Fg-STP "differs from previous proposals on the extensive use of
//! dependence speculation, replication and communication" predicts that
//! removing either mechanism costs performance.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, run_on, runner::trace_workload, MachineKind, Table};
use fgstp_workloads::suite;

fn main() {
    let args = ExpArgs::parse();
    let workloads = suite(args.scale);
    let traces: Vec<_> = workloads
        .iter()
        .map(|w| trace_workload(w, args.scale))
        .collect();
    let singles: Vec<_> = traces
        .iter()
        .map(|t| run_on(MachineKind::SingleSmall, t.insts()))
        .collect();

    let variants: [(&str, bool, bool); 4] = [
        ("full fg-stp", true, true),
        ("no dep. speculation", false, true),
        ("no replication", true, false),
        ("neither", false, false),
    ];
    let mut table = Table::new([
        "variant",
        "geomean speedup",
        "geomean comms/100",
        "violations (sum)",
    ]);
    for (label, dep_spec, replication) in variants {
        let mut speedups = Vec::new();
        let mut comm_rates = Vec::new();
        let mut violations = 0u64;
        for (t, single) in traces.iter().zip(&singles) {
            let mut cfg = FgstpConfig::small();
            cfg.dep_speculation = dep_spec;
            cfg.partition.replication = replication;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            speedups.push(r.speedup_over(&single.result));
            comm_rates.push((s.partition.comms_per_inst() * 100.0).max(1e-9));
            violations += s.cross_violations;
        }
        table.row([
            label.to_owned(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
            violations.to_string(),
        ]);
    }
    print_experiment(
        "E4",
        "dependence speculation / replication ablation",
        &args,
        &table,
    );
}
