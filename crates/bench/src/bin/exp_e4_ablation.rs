//! E4 — ablation of Fg-STP's two signature mechanisms.
//!
//! Runs the suite with dependence speculation and/or replication disabled
//! and reports the geomean speedup over one small core. The paper's claim
//! that Fg-STP "differs from previous proposals on the extensive use of
//! dependence speculation, replication and communication" predicts that
//! removing either mechanism costs performance.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs, SuiteBaseline};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, Table};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let base = SuiteBaseline::new(&session);
    let jobs = base.jobs();

    let variants: [(&str, bool, bool); 4] = [
        ("full fg-stp", true, true),
        ("no dep. speculation", false, true),
        ("no replication", true, false),
        ("neither", false, false),
    ];
    let mut table = Table::new([
        "variant",
        "geomean speedup",
        "geomean comms/100",
        "violations (sum)",
    ]);
    for (label, dep_spec, replication) in variants {
        let points = session.par_map(&jobs, |((_, t), single)| {
            let mut cfg = FgstpConfig::small();
            cfg.dep_speculation = dep_spec;
            cfg.partition.replication = replication;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            (
                r.speedup_over(&single.result),
                (s.partition.comms_per_inst() * 100.0).max(1e-9),
                s.cross_violations,
            )
        });
        let speedups: Vec<f64> = points.iter().map(|p| p.0).collect();
        let comm_rates: Vec<f64> = points.iter().map(|p| p.1).collect();
        let violations: u64 = points.iter().map(|p| p.2).sum();
        table.row([
            label.to_owned(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
            violations.to_string(),
        ]);
    }
    print_experiment(
        "E4",
        "dependence speculation / replication ablation",
        &args,
        &table,
    );
}
