//! E7 — work distribution between the cores.
//!
//! For each benchmark: the fraction of instructions on each core, the
//! replication overhead, and the communication rate. This is the figure
//! that shows Fg-STP's partitioner balancing real codes while keeping the
//! cut small.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::Table;

fn main() {
    let args = ExpArgs::parse();
    let rows = args.session().map_suite(|w, t| {
        let (_, s) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        let total = (s.partition.insts[0] + s.partition.insts[1]) as f64;
        [
            w.name.to_owned(),
            format!("{:.1}", 100.0 * s.partition.insts[0] as f64 / total),
            format!("{:.1}", 100.0 * s.partition.insts[1] as f64 / total),
            format!("{:.1}", 100.0 * s.partition.replicated as f64 / total),
            format!("{:.2}", 100.0 * s.partition.comms_per_inst()),
            s.partition.cross_mem_deps.to_string(),
        ]
    });
    let mut table = Table::new([
        "benchmark",
        "core0 %",
        "core1 %",
        "replicated %",
        "comms/100 insts",
        "cross mem deps",
    ]);
    for row in rows {
        table.row(row);
    }
    print_experiment(
        "E7",
        "instruction distribution, replication and communication",
        &args,
        &table,
    );
}
