//! E13 — core-count scaling (extension beyond the paper).
//!
//! Sweeps the Fg-STP partition width N ∈ {1, 2, 3, 4, 8} over the whole
//! suite with the small-core configuration and reports (a) per-benchmark
//! speedup over the single small core with a geomean row, and (b) one
//! merged CPI-stack row per N so the scheme's own overhead categories
//! (communication wait, lookahead backpressure, replication, cross-core
//! memdep replay, global commit sync) show where the extra cores' cycles
//! go as the machine widens.
//!
//! The paper evaluates N = 2 only; everything at N > 2 is this
//! reproduction's extrapolation (greedy min-load steering and N-way
//! cut-minimization — see DESIGN.md, "N-core generalization").
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp_with_sink, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs, SuiteBaseline};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, CpiStack, StallCategory, Table};
use fgstp_telemetry::CpiSink;

const CORE_COUNTS: [usize; 5] = [1, 2, 3, 4, 8];

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let base = SuiteBaseline::new(&session);
    let jobs = base.jobs();

    let mut speedup = Table::new([
        "workload".to_string(),
        "N=1".to_string(),
        "N=2".to_string(),
        "N=3".to_string(),
        "N=4".to_string(),
        "N=8".to_string(),
    ]);
    // speedups[n][w], stacks[n] merged over cores and workloads.
    let mut speedups: Vec<Vec<f64>> = Vec::new();
    let mut stacks: Vec<CpiStack> = Vec::new();
    for n in CORE_COUNTS {
        let points = session.par_map(&jobs, |((_, t), single)| {
            let cfg = FgstpConfig::small().with_cores(n);
            let mut sink = CpiSink::new(n);
            let (r, _) =
                run_fgstp_with_sink(t.insts(), &cfg, &HierarchyConfig::small(n), &mut sink);
            let stack = sink.merged();
            stack
                .check_against(n as u64 * r.cycles)
                .expect("CPI stack accounts for every core-cycle");
            (r.speedup_over(&single.result), stack)
        });
        let mut merged = CpiStack::new();
        for (_, stack) in &points {
            merged.merge(stack);
        }
        stacks.push(merged);
        speedups.push(points.iter().map(|p| p.0).collect());
    }
    for (w, ((name, _), _)) in jobs.iter().enumerate() {
        let mut row = vec![name.name.to_string()];
        row.extend(speedups.iter().map(|s| format!("{:.3}", s[w])));
        speedup.row(row);
    }
    let mut geo = vec!["geomean".to_string()];
    geo.extend(speedups.iter().map(|s| format!("{:.3}", geomean(s))));
    speedup.row(geo);
    print_experiment(
        "E13",
        "core-count scaling, speedup over single small core",
        &args,
        &speedup,
    );

    let fgstp_cats = [
        StallCategory::CommWait,
        StallCategory::CommBackpressure,
        StallCategory::Replication,
        StallCategory::MemDepReplay,
        StallCategory::CommitSync,
    ];
    let mut overhead = Table::new([
        "cores".to_string(),
        "agg cpi".to_string(),
        "base".to_string(),
        "commw".to_string(),
        "commbp".to_string(),
        "repl".to_string(),
        "memdep".to_string(),
        "sync".to_string(),
    ]);
    for (n, stack) in CORE_COUNTS.iter().zip(&stacks) {
        let base = if stack.committed == 0 {
            0.0
        } else {
            stack.base_cycles as f64 / stack.committed as f64
        };
        let mut row = vec![
            n.to_string(),
            format!("{:.3}", stack.cpi()),
            format!("{base:.3}"),
        ];
        row.extend(
            fgstp_cats
                .iter()
                .map(|&c| format!("{:.3}", stack.category_cpi(c))),
        );
        overhead.row(row);
    }
    print_experiment(
        "E13",
        "Fg-STP overhead CPI components vs core count (aggregate core-cycles/inst, suite total)",
        &args,
        &overhead,
    );
}
