//! T1 — Table 1: machine configurations.
//!
//! Prints the small/medium core parameters and the Fg-STP/Core Fusion
//! coupling parameters used by every other experiment.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::FgstpConfig;
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_ooo::CoreConfig;
use fgstp_sim::Table;

fn core_row(t: &mut Table, c: &CoreConfig) {
    let fu = &c.clusters[0].fu;
    t.row([
        c.name.to_owned(),
        format!("{}/{}/{}", c.fetch_width, c.issue_width, c.commit_width),
        c.rob_size.to_string(),
        c.iq_size.to_string(),
        format!("{}/{}", c.lq_size, c.sq_size),
        format!(
            "{}i {}m {}f",
            fu.int_alu,
            fu.mem_ports,
            fu.fp_add + fu.fp_mul
        ),
        format!("{} clusters", c.clusters.len()),
        format!("{}", c.predictor),
        c.mispredict_penalty.to_string(),
    ]);
}

fn main() {
    let args = ExpArgs::parse();

    let mut cores = Table::new([
        "core",
        "fetch/issue/commit",
        "rob",
        "iq",
        "lq/sq",
        "fu (per cluster)",
        "backend",
        "predictor",
        "mispred pen.",
    ]);
    core_row(&mut cores, &CoreConfig::small());
    core_row(&mut cores, &CoreConfig::medium());
    core_row(&mut cores, &CoreConfig::fused(&CoreConfig::small()));
    core_row(&mut cores, &CoreConfig::fused(&CoreConfig::medium()));
    print_experiment("T1a", "core configurations", &args, &cores);

    let mut coupling = Table::new(["machine", "parameter", "value"]);
    let fg = FgstpConfig::small();
    coupling.row([
        "fgstp",
        "comm latency",
        &format!("{} cycles", fg.comm.latency),
    ]);
    coupling.row([
        "fgstp",
        "comm bandwidth",
        &format!("{} values/cycle", fg.comm.bandwidth),
    ]);
    coupling.row([
        "fgstp",
        "queue capacity",
        &format!("{} entries", fg.comm.capacity),
    ]);
    coupling.row([
        "fgstp",
        "store visibility",
        &format!("{} cycles", fg.store_vis_latency),
    ]);
    coupling.row([
        "fgstp",
        "cross violation penalty",
        &format!("{} cycles", fg.cross_violation_penalty),
    ]);
    coupling.row([
        "fgstp",
        "partition lookahead",
        &format!("{} instructions", fg.fetch_skew()),
    ]);
    let fused = CoreConfig::fused(&CoreConfig::small());
    coupling.row([
        "fusion",
        "collective fetch overhead",
        &format!("{} cycles", fused.extra_fetch_latency),
    ]);
    coupling.row([
        "fusion",
        "remote rename overhead",
        &format!("{} cycles", fused.extra_rename_latency),
    ]);
    coupling.row([
        "fusion",
        "inter-cluster bypass",
        &format!("{} cycles", fused.intercluster_latency),
    ]);
    print_experiment("T1b", "coupling parameters", &args, &coupling);
}
