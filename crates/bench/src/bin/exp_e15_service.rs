//! E15 — batch-service throughput, dedup, and bit-identity (methodology
//! extension).
//!
//! Boots an in-process `fgstpd` daemon, drives it with concurrent
//! clients submitting a mix of distinct and duplicate
//! [`fgstp_sim::ExperimentSpec`]s, and reports three things the service
//! must deliver to be usable as an experiment backend:
//!
//! 1. **Bit-identity** — every result row streamed by the daemon is
//!    byte-identical to the row a direct in-process
//!    [`fgstp_sim::ExperimentSpec::run`] of the same spec produces, for
//!    every client at once (the paper's figures cannot depend on *how*
//!    the simulator was invoked).
//! 2. **Dedup** — duplicate submissions are served from the first job's
//!    rows (trace-cache-versioned dedup key), measured as a hit rate.
//! 3. **Throughput** — completed experiments per second and rows per
//!    second over the batch, the figure recorded in
//!    `results/experiments_e15_service.txt`.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`. The scale word
//! sizes the specs in the batch; `--threads` sizes the daemon's worker
//! pool.
//!
//! Run at the recorded scale with: `exp_e15_service small`.

use std::thread;

use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_service::client::Client;
use fgstp_service::daemon::{Daemon, DaemonConfig};
use fgstp_service::protocol::{bench_result_row, wire_line};
use fgstp_sim::{ExperimentSpec, Table};

/// How many concurrent clients drive the daemon.
const CLIENTS: usize = 4;

/// The distinct specs in the batch; each is submitted by two clients,
/// so half the submissions are dedup hits.
fn batch_specs(args: &ExpArgs) -> Vec<ExperimentSpec> {
    let scale = fgstp_sim::spec::scale_word(args.scale());
    let specs = [
        vec![
            scale,
            "--workloads=perl_hash,hmmer_dp",
            "--machines=small-cmp",
        ],
        vec![
            scale,
            "--workloads=gcc_expr,mcf_pointer",
            "--machines=small-cmp",
        ],
        vec![
            scale,
            "--workloads=perl_hash",
            "--machines=fgstp-small,fgstp-small-4",
        ],
        vec![
            scale,
            "--workloads=hmmer_dp",
            "--machines=small-cmp",
            "--telemetry",
        ],
    ];
    specs
        .iter()
        .map(|flags| {
            let mut spec = ExperimentSpec::from_args(flags).expect("batch specs are valid");
            spec.no_cache = args.spec.no_cache;
            spec
        })
        .collect()
}

fn main() {
    let args = ExpArgs::parse();
    let specs = batch_specs(&args);

    // Reference rows: each spec run directly, no daemon involved.
    let reference: Vec<Vec<String>> = specs
        .iter()
        .map(|spec| {
            spec.run()
                .expect("direct run succeeds")
                .iter()
                .map(|b| wire_line(&bench_result_row(b)))
                .collect()
        })
        .collect();

    let daemon = Daemon::bind(DaemonConfig {
        workers: args.spec.threads.unwrap_or(0),
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    let addr = daemon.local_addr().expect("bound address");
    let queue = daemon.queue();
    let server = thread::spawn(move || daemon.run().expect("daemon run"));

    let started = std::time::Instant::now();
    // Each client submits every spec, offset so duplicates overlap in
    // flight; every client independently checks bit-identity.
    let client_rows: Vec<(usize, Vec<usize>)> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let specs = &specs;
                let reference = &reference;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut dedup_hits = 0;
                    let mut rows_seen = Vec::new();
                    for i in 0..specs.len() {
                        let spec = &specs[(i + c) % specs.len()];
                        let expect = &reference[(i + c) % specs.len()];
                        let (sub, rows, outcome) =
                            client.run_to_completion(spec).expect("job completes");
                        assert!(outcome.is_done(), "job {} ended {}", sub.job, outcome.state);
                        let got: Vec<String> = rows.iter().map(wire_line).collect();
                        assert_eq!(
                            &got, expect,
                            "daemon rows must be bit-identical to a direct run"
                        );
                        dedup_hits += sub.dedup as usize;
                        rows_seen.push(rows.len());
                    }
                    (dedup_hits, rows_seen)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let submitted = queue.counter("service.submitted");
    let dedup = queue.counter("service.dedup-hits");
    let completed = queue.counter("service.completed");
    let rows = queue.counter("service.rows");
    let trace_hits = queue.counter("service.trace-hits");
    let trace_misses = queue.counter("service.trace-misses");

    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown(true)
        .expect("shutdown");
    server.join().expect("daemon thread");

    let client_checked: usize = client_rows
        .iter()
        .map(|(_, r)| r.iter().sum::<usize>())
        .sum();
    let pct = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    let mut table = Table::new(["metric", "value"]);
    table.row(["clients".to_owned(), CLIENTS.to_string()]);
    table.row(["distinct specs".to_owned(), specs.len().to_string()]);
    table.row(["submissions".to_owned(), submitted.to_string()]);
    table.row(["jobs executed".to_owned(), completed.to_string()]);
    table.row([
        "dedup hits".to_owned(),
        format!("{dedup} ({:.1}%)", pct(dedup, submitted)),
    ]);
    table.row(["result rows".to_owned(), rows.to_string()]);
    table.row([
        "rows checked bit-identical".to_owned(),
        client_checked.to_string(),
    ]);
    table.row([
        "trace cache hit rate".to_owned(),
        format!("{:.1}%", pct(trace_hits, trace_hits + trace_misses)),
    ]);
    table.row([
        "experiments/sec (executed)".to_owned(),
        format!("{:.2}", completed as f64 / elapsed),
    ]);
    table.row([
        "experiments/sec (served)".to_owned(),
        format!("{:.2}", submitted as f64 / elapsed),
    ]);
    table.row([
        "rows/sec".to_owned(),
        format!("{:.2}", rows as f64 / elapsed),
    ]);
    print_experiment(
        "E15",
        "batch-service throughput, dedup and bit-identity",
        &args,
        &table,
    );
    assert!(dedup > 0, "duplicate submissions must hit the dedup cache");
    println!(
        "{CLIENTS} clients x {} submissions -> {completed} executions; all {client_checked} rows bit-identical to direct runs",
        specs.len()
    );
}
