//! E10 — reconfiguration policy (extension).
//!
//! Fg-STP *reconfigures* two cores; a deployed design needs a policy for
//! when to couple them. This experiment compares always-single,
//! always-Fg-STP, an implementable sampling controller (one interval per
//! mode, then commit, with reconfiguration penalties), and the oracle
//! upper bound — per benchmark and in geomean.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, run_oracle, run_sampling, FgstpConfig, SamplingConfig};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::run_single;
use fgstp_sim::{geomean, Table};

fn main() {
    let args = ExpArgs::parse();
    let cfg = FgstpConfig::small();
    let hcfg = HierarchyConfig::small(2);
    let single_h = HierarchyConfig::small(1);
    let sampling = SamplingConfig::default();

    let points = args.session().map_suite(|w, t| {
        let single = run_single(t.insts(), &cfg.core, &single_h);
        let (fg, _) = run_fgstp(t.insts(), &cfg, &hcfg);
        let oracle = run_oracle(t.insts(), &cfg, &hcfg);
        let sampled = run_sampling(t.insts(), &cfg, &hcfg, &sampling);
        let base = single.cycles as f64;
        (
            w.name,
            base / fg.cycles as f64,
            base / sampled.cycles as f64,
            base / oracle.cycles as f64,
            sampled.mode.to_string(),
        )
    });

    let mut table = Table::new([
        "benchmark",
        "fgstp speedup",
        "sampling speedup",
        "oracle speedup",
        "sampled mode",
    ]);
    let mut fg_all = Vec::new();
    let mut sampled_all = Vec::new();
    let mut oracle_all = Vec::new();
    for (name, s_fg, s_sam, s_or, mode) in points {
        fg_all.push(s_fg);
        sampled_all.push(s_sam);
        oracle_all.push(s_or);
        table.row([
            name.to_owned(),
            format!("{s_fg:.3}"),
            format!("{s_sam:.3}"),
            format!("{s_or:.3}"),
            mode,
        ]);
    }
    table.row([
        "GEOMEAN".to_owned(),
        format!("{:.3}", geomean(&fg_all)),
        format!("{:.3}", geomean(&sampled_all)),
        format!("{:.3}", geomean(&oracle_all)),
        String::new(),
    ]);
    print_experiment(
        "E10",
        "reconfiguration policy: always / sampling / oracle",
        &args,
        &table,
    );
}
