//! E6 — communication bandwidth and queue occupancy.
//!
//! Sweeps the register-queue bandwidth (values per cycle per direction)
//! and reports speedup, mean queue occupancy and producer-side
//! back-pressure — the data that sizes the paper's queues.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, run_on, runner::trace_workload, MachineKind, Table};
use fgstp_workloads::suite;

fn main() {
    let args = ExpArgs::parse();
    let workloads = suite(args.scale);
    let traces: Vec<_> = workloads
        .iter()
        .map(|w| trace_workload(w, args.scale))
        .collect();
    let singles: Vec<_> = traces
        .iter()
        .map(|t| run_on(MachineKind::SingleSmall, t.insts()))
        .collect();

    let mut table = Table::new([
        "bandwidth (values/cycle)",
        "geomean speedup",
        "mean occupancy",
        "backpressure cycles (sum)",
    ]);
    for bandwidth in [1u32, 2, 4] {
        let mut speedups = Vec::new();
        let mut occupancy = Vec::new();
        let mut backpressure = 0u64;
        for (t, single) in traces.iter().zip(&singles) {
            let mut cfg = FgstpConfig::small();
            cfg.comm.bandwidth = bandwidth;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            speedups.push(r.speedup_over(&single.result));
            occupancy.push(s.mean_occupancy[0].max(s.mean_occupancy[1]).max(1e-9));
            backpressure += s.backpressure[0] + s.backpressure[1];
        }
        table.row([
            bandwidth.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&occupancy)),
            backpressure.to_string(),
        ]);
    }
    print_experiment(
        "E6",
        "communication bandwidth and queue occupancy",
        &args,
        &table,
    );
}
