//! E6 — communication bandwidth and queue occupancy.
//!
//! Sweeps the register-queue bandwidth (values per cycle per direction)
//! and reports speedup, mean queue occupancy and producer-side
//! back-pressure — the data that sizes the paper's queues.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs, SuiteBaseline};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, Table};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let base = SuiteBaseline::new(&session);
    let jobs = base.jobs();

    let mut table = Table::new([
        "bandwidth (values/cycle)",
        "geomean speedup",
        "mean occupancy",
        "backpressure cycles (sum)",
    ]);
    for bandwidth in [1u32, 2, 4] {
        let points = session.par_map(&jobs, |((_, t), single)| {
            let mut cfg = FgstpConfig::small();
            cfg.comm.bandwidth = bandwidth;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            let occupancy = s
                .comm
                .iter()
                .map(|c| c.mean_occupancy())
                .fold(1e-9, f64::max);
            (
                r.speedup_over(&single.result),
                occupancy,
                s.comm_total().backpressure_cycles,
            )
        });
        let speedups: Vec<f64> = points.iter().map(|p| p.0).collect();
        let occupancy: Vec<f64> = points.iter().map(|p| p.1).collect();
        let backpressure: u64 = points.iter().map(|p| p.2).sum();
        table.row([
            bandwidth.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&occupancy)),
            backpressure.to_string(),
        ]);
    }
    print_experiment(
        "E6",
        "communication bandwidth and queue occupancy",
        &args,
        &table,
    );
}
