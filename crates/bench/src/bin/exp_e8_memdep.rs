//! E8 — cross-core memory-dependence speculation.
//!
//! Per benchmark: cross-core memory dependences, the violations/replays
//! the speculative machine suffers, and the cycles it gains over the
//! conservative machine that orders every load behind the youngest older
//! remote store.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::Table;

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();

    let rows = session.map_suite(|w, t| {
        let loads = t
            .insts()
            .iter()
            .filter(|d| d.class() == fgstp_isa::InstClass::Load)
            .count() as f64;
        let spec_cfg = FgstpConfig::small();
        let (spec, s_spec) = run_fgstp(t.insts(), &spec_cfg, &HierarchyConfig::small(2));
        let mut cons_cfg = FgstpConfig::small();
        cons_cfg.dep_speculation = false;
        let (cons, _) = run_fgstp(t.insts(), &cons_cfg, &HierarchyConfig::small(2));
        [
            w.name.to_owned(),
            s_spec.partition.cross_mem_deps.to_string(),
            s_spec.cross_violations.to_string(),
            format!(
                "{:.2}",
                1000.0 * s_spec.cross_violations as f64 / loads.max(1.0)
            ),
            spec.cycles.to_string(),
            cons.cycles.to_string(),
            format!(
                "{:+.1}%",
                (cons.cycles as f64 / spec.cycles as f64 - 1.0) * 100.0
            ),
        ]
    });
    let mut table = Table::new([
        "benchmark",
        "cross mem deps",
        "violations",
        "viol/1k loads",
        "spec cycles",
        "no-spec cycles",
        "spec gain",
    ]);
    for row in rows {
        table.row(row);
    }
    print_experiment(
        "E8a",
        "cross-core memory dependence speculation",
        &args,
        &table,
    );

    // The Fg-STP partitioner deliberately co-locates store→load pairs, so
    // violations are rare by construction. Force a naive round-robin
    // partition to exercise (and price) the speculation machinery.
    let rows = session.map_suite(|w, t| {
        let mut cfg = FgstpConfig::small();
        cfg.partition.policy = fgstp::PartitionPolicy::ModN { chunk: 4 };
        let (spec, s_spec) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        cfg.dep_speculation = false;
        let (cons, _) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        [
            w.name.to_owned(),
            s_spec.partition.cross_mem_deps.to_string(),
            s_spec.cross_violations.to_string(),
            spec.cycles.to_string(),
            cons.cycles.to_string(),
            format!(
                "{:+.1}%",
                (cons.cycles as f64 / spec.cycles as f64 - 1.0) * 100.0
            ),
        ]
    });
    let mut forced = Table::new([
        "benchmark",
        "cross mem deps",
        "violations",
        "spec cycles",
        "no-spec cycles",
        "spec gain",
    ]);
    for row in rows {
        forced.row(row);
    }
    print_experiment(
        "E8b",
        "the same under a forced naive (mod-4) partition",
        &args,
        &forced,
    );
}
