//! E11 — activity-based energy comparison (extension).
//!
//! The paper motivates Fg-STP with power and complexity constraints; this
//! experiment prices each machine with the relative activity model of
//! `fgstp-sim::energy`: energy per instruction (EPI) and energy–delay
//! product, normalized to one small core with its partner power-gated.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_sim::energy::{energy_of, EnergyModel};
use fgstp_sim::{geomean, run_on, MachineKind, Table};

fn main() {
    let args = ExpArgs::parse();
    let m = EnergyModel::default();

    let points = args.session().map_suite(|w, t| {
        let single = run_on(MachineKind::SingleSmall, t.insts());
        let fused = run_on(MachineKind::FusedSmall, t.insts());
        let fg = run_on(MachineKind::FgstpSmall, t.insts());
        let committed = single.result.committed;
        let base_epi = energy_of(&m, &single).per_instruction(committed);
        let base_ed = base_epi * single.result.cycles as f64;
        let rel = |run: &fgstp_sim::MachineRun| {
            let epi_abs = energy_of(&m, run).per_instruction(committed);
            (
                epi_abs / base_epi,
                epi_abs * run.result.cycles as f64 / base_ed,
            )
        };
        (w.name, rel(&fused), rel(&fg))
    });

    let mut table = Table::new([
        "benchmark",
        "fused EPI",
        "fgstp EPI",
        "fused ED",
        "fgstp ED",
    ]);
    let mut epi_fused = Vec::new();
    let mut epi_fg = Vec::new();
    let mut ed_fused = Vec::new();
    let mut ed_fg = Vec::new();
    for (name, (ef, edf), (eg, edg)) in points {
        epi_fused.push(ef);
        epi_fg.push(eg);
        ed_fused.push(edf);
        ed_fg.push(edg);
        table.row([
            name.to_owned(),
            format!("{ef:.2}"),
            format!("{eg:.2}"),
            format!("{edf:.2}"),
            format!("{edg:.2}"),
        ]);
    }
    table.row([
        "GEOMEAN".to_owned(),
        format!("{:.2}", geomean(&epi_fused)),
        format!("{:.2}", geomean(&epi_fg)),
        format!("{:.2}", geomean(&ed_fused)),
        format!("{:.2}", geomean(&ed_fg)),
    ]);
    print_experiment(
        "E11",
        "relative energy per instruction and energy-delay vs one small core",
        &args,
        &table,
    );
    println!("(EPI/ED of 1.00 = one small core with its CMP partner power-gated)");
}
