//! E14 — sampled-simulation accuracy and cost (methodology extension).
//!
//! Runs the long-run suite (`fgstp_workloads::long_suite`) full-detail on
//! the single small core and the small Fg-STP machine, then repeats the
//! comparison under SMARTS-style systematic sampling at several sampling
//! ratios. For each regime it reports the geomean Fg-STP speedup estimate
//! with its 95% confidence interval, the error against the full-detail
//! geomean, how many per-workload intervals cover the full-detail value,
//! and the reduction in detail-simulated instructions.
//!
//! The paper simulates every benchmark in full detail (its traces are
//! short enough); sampling is the standard methodology for the trace
//! lengths a real SPEC run would produce, and this experiment validates
//! the substitution: the sampled geomean should sit within a couple of
//! percent of full detail at a ≥10× detail reduction.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_sim::{
    geomean, geomean_estimate, run_on, run_on_sampled, Estimate, MachineKind, SampleConfig, Table,
};
use fgstp_workloads::long_suite;

/// The sampling regimes swept, coarse to fine.
const REGIMES: [SampleConfig; 3] = [
    SampleConfig {
        interval: 2_000,
        warmup: 300,
        detail: 150,
    },
    SampleConfig {
        interval: 5_000,
        warmup: 450,
        detail: 250,
    },
    SampleConfig {
        interval: 10_000,
        warmup: 600,
        detail: 300,
    },
];

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let workloads = long_suite(args.scale());
    let traces = session.par_map(&workloads, |w| session.trace(w));
    let traced: Vec<_> = workloads.into_iter().zip(traces).collect();

    // Full-detail reference speedups, one per workload.
    let full: Vec<f64> = session.par_map(&traced, |(_, t)| {
        let single = run_on(MachineKind::SingleSmall, t.insts());
        let fgstp = run_on(MachineKind::FgstpSmall, t.insts());
        single.result.cycles as f64 / fgstp.result.cycles as f64
    });
    let full_geo = geomean(&full);

    let mut table = Table::new([
        "regime (I/W/D)",
        "geomean speedup",
        "95% CI",
        "vs full (%)",
        "CI covers full",
        "detail reduction",
    ]);
    table.row([
        "full detail".to_owned(),
        format!("{full_geo:.3}"),
        "-".to_owned(),
        "+0.00".to_owned(),
        format!("{}/{}", traced.len(), traced.len()),
        "1.0x".to_owned(),
    ]);

    let mut summary: Option<(Estimate, f64)> = None;
    for scfg in REGIMES {
        // Per workload: paired per-interval speedup estimate + reduction.
        let points: Vec<(Estimate, f64)> = session.par_map(&traced, |(_, t)| {
            let single = run_on_sampled(MachineKind::SingleSmall, t.insts(), &scfg, false);
            let fgstp = run_on_sampled(MachineKind::FgstpSmall, t.insts(), &scfg, false);
            let est = fgstp
                .sampled
                .as_ref()
                .unwrap()
                .speedup_over(single.sampled.as_ref().unwrap());
            (est, single.sampled.as_ref().unwrap().detail_reduction())
        });
        let estimates: Vec<Estimate> = points.iter().map(|p| p.0).collect();
        let reductions: Vec<f64> = points.iter().map(|p| p.1).collect();
        let covered = estimates
            .iter()
            .zip(&full)
            .filter(|(e, &f)| e.covers(f))
            .count();
        let geo = geomean_estimate(&estimates);
        let err = 100.0 * (geo.mean / full_geo - 1.0);
        table.row([
            format!("{}/{}/{}", scfg.interval, scfg.warmup, scfg.detail),
            format!("{:.3}", geo.mean),
            format!("±{:.3}", geo.ci95_half),
            format!("{err:+.2}"),
            format!("{covered}/{}", traced.len()),
            format!("{:.1}x", geomean(&reductions)),
        ]);
        if summary.is_none() && geomean(&reductions) >= 10.0 {
            summary = Some((geo, geomean(&reductions)));
        }
    }
    print_experiment(
        "E14",
        "sampled vs full-detail Fg-STP speedup on the long-run suite",
        &args,
        &table,
    );
    if let Some((geo, reduction)) = summary {
        println!(
            "coarsest >=10x regime: geomean {:.3} +-{:.3} vs full {:.3} ({:+.2}%, {:.1}x less detail)",
            geo.mean,
            geo.ci95_half,
            full_geo,
            100.0 * (geo.mean / full_geo - 1.0),
            reduction
        );
    }
}
