//! E17 — RV32 real programs through the Fg-STP pipeline (extension
//! beyond the paper).
//!
//! The paper evaluates Fg-STP on SPEC traces; the in-repo synthetic
//! kernels stand in for those. E17 closes the loop with *real* programs:
//! five classic algorithms written in RV32IM assembly, assembled and
//! emulated by the `fgstp-rv` frontend, translated into the same dynamic
//! stream format the synthetic suite produces, and run through the
//! identical machine presets. Two tables:
//!
//! 1. **Speedup** — the E1 comparison (Core Fusion and Fg-STP vs one
//!    small core) over the RV suite, plus the geomean and the
//!    Fg-STP-over-fusion summary line. Real control flow and real memory
//!    access patterns, same partitioning hardware.
//! 2. **Dynamic-stream mix** — per program: committed instructions and
//!    the fraction of loads, stores, branches, jumps, multiplies and
//!    divides in the translated stream, pinning how the RV programs
//!    differ from the synthetic kernels they complement.
//!
//! The binary re-runs one RV workload and asserts bit-identical cycles
//! before printing — the frontend feeds the deterministic pipeline
//! deterministically.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b` to narrow the RV set, `--threads=N`,
//! `--no-cache`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_isa::InstClass;
use fgstp_sim::{run_on, speedup_table, MachineKind, Table};
use fgstp_workloads::{rv_suite, Workload};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let kinds = MachineKind::SMALL_CMP;

    // The session's suite is the synthetic one; E17's axis is the RV
    // suite, narrowed by the shared --workloads filter when given.
    let mut workloads: Vec<Workload> = rv_suite(args.scale());
    if !args.spec.workloads.is_empty() {
        workloads.retain(|w| args.spec.workloads.iter().any(|f| f == w.name));
    }

    // Table 1: E1-style speedups over the RV programs.
    let results = session
        .plan()
        .workloads(workloads.clone())
        .machines(kinds)
        .execute();
    let summary = speedup_table(&results, kinds);
    print_experiment(
        "E17",
        "RV32 real programs: speedup over one small core (small 2-core CMP)",
        &args,
        &summary.table,
    );
    for name in &summary.skipped {
        eprintln!("warning: {name} skipped (machine missing from result set)");
    }
    for (name, why) in &summary.failed {
        eprintln!("warning: {name} produced no runs: {why}");
    }
    println!(
        "Fg-STP over Core Fusion (geomean): {:+.1}%",
        (summary.fgstp_over_fused() - 1.0) * 100.0
    );

    // Table 2: what the translated streams look like.
    let traces = session.par_map(&workloads, |w| session.trace(w));
    let mut mix = Table::new([
        "program", "insts", "load", "store", "branch", "jump", "mul", "div",
    ]);
    let pct = |f: f64| format!("{:.1}%", f * 100.0);
    for (w, t) in workloads.iter().zip(&traces) {
        mix.row([
            w.name.to_string(),
            t.len().to_string(),
            pct(t.class_fraction(InstClass::Load)),
            pct(t.class_fraction(InstClass::Store)),
            pct(t.class_fraction(InstClass::Branch)),
            pct(t.class_fraction(InstClass::Jump)),
            pct(t.class_fraction(InstClass::IntMul)),
            pct(t.class_fraction(InstClass::IntDiv)),
        ]);
    }
    print_experiment(
        "E17",
        "RV32 dynamic-stream mix (translated committed stream)",
        &args,
        &mix,
    );

    // Determinism gate: re-running the first program must reproduce the
    // Fg-STP cycle count bit-for-bit.
    if let (Some(w), Some(t)) = (workloads.first(), traces.first()) {
        let a = run_on(MachineKind::FgstpSmall, t.insts());
        let b = run_on(MachineKind::FgstpSmall, session.trace(w).insts());
        assert_eq!(
            a.result.cycles, b.result.cycles,
            "RV-fed Fg-STP run must be deterministic across reruns"
        );
        println!("determinism: {} rerun bit-identical on fgstp-small", w.name);
    }
}
