//! Wall-clock perf-regression harness for the *functional* interpreter.
//!
//! PR 8 replaced the per-step decoding interpreter behind
//! `trace_program` with a decode-once, threaded-code engine
//! ([`fgstp_isa::ThreadedMachine`]). This harness pins that speedup: it
//! runs the 18-kernel suite to completion on two functional engines —
//!
//! * **reference** — a frozen replica of the pre-predecode functional
//!   path exactly as `Session`, warming and the runners consumed it:
//!   per-step decode over the full opcode match, byte-at-a-time paged
//!   memory, and a per-instruction trace record pushed into a freshly
//!   allocated vector (pre-PR, every functional consumer went through
//!   `trace_program`, which materialized the full decoded trace), and
//! * **threaded** — `PreProgram` lowering plus `ThreadedMachine::run`,
//!   the engine tracing actually uses,
//!
//! and records functional MIPS (architecturally executed instructions per
//! wall-clock second) for both plus their ratio. Results go to
//! `BENCH_functional.json`; `scripts/perf_gate.sh` re-runs the sweep and
//! fails when the threaded engine slows below a tolerance band of the
//! checked-in numbers *or* its speedup over the frozen baseline falls
//! under the pinned 10x floor.
//!
//! ```text
//! bench_functional [test|small|reference] [--iters=N] [--out=PATH]
//!                  [--baseline=PATH] [--check=PATH] [--tolerance=F]
//!                  [--schema-check=PATH]
//! ```
//!
//! Modes (mutually exclusive; measurement is the default):
//!
//! * **measure** — run the sweep and write the JSON report to `--out`
//!   (default `BENCH_functional.json`). With `--baseline=PATH`, the
//!   `engines` section of that previously written report is embedded as
//!   this report's `baseline`.
//! * **`--check=PATH`** — run the sweep and compare fresh MIPS against
//!   the `engines` recorded in `PATH`; exits non-zero if any engine falls
//!   below `tolerance × recorded` (default 0.5) or the fresh speedup is
//!   under `tolerance × min_speedup` (the recorded speedup itself must
//!   meet the full floor — that is what `--schema-check` enforces).
//! * **`--schema-check=PATH`** — validate that `PATH` is a well-formed
//!   report whose recorded speedup meets the floor (no benchmarking);
//!   used by `scripts/verify.sh`.
//!
//! Both engines are run once, untimed, before measurement, asserting
//! identical final register files and instruction counts on every kernel
//! — a speedup claimed over a divergent baseline would be meaningless.

use std::hint::black_box;
use std::time::Instant;

use fgstp_isa::{PreProgram, ThreadedMachine};
use fgstp_telemetry::json::Json;
use fgstp_workloads::Scale;

/// Report format identifier (bump on incompatible layout changes).
const SCHEMA: &str = "fgstp-bench-functional/v1";

/// Minimum acceptable threaded-over-reference median-MIPS ratio.
const MIN_SPEEDUP: f64 = 10.0;

/// The frozen pre-predecode functional interpreter.
///
/// This is a faithful replica of the workspace's original
/// `Machine::step` execution strategy *before* the threaded-code rewrite:
/// every dynamic instruction re-reads the static [`fgstp_isa::Inst`],
/// matches over
/// the full opcode enum, routes compute through the shared semantics
/// helpers, and touches memory one byte (one page-table hash lookup) at a
/// time. It exists only as the denominator of the speedup this harness
/// gates; the live oracle is `fgstp_isa::Machine`.
mod frozen {
    use std::collections::HashMap;

    use fgstp_isa::machine::ExecError;
    use fgstp_isa::reg::NUM_REGS;
    use fgstp_isa::{Inst, Op, Program};

    const PAGE_SHIFT: u64 = 12;
    const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

    // Verbatim copies of the pre-predecode `fgstp_isa::semantics` helpers,
    // frozen here so later tuning of the live ones (e.g. inline hints)
    // cannot silently speed up the baseline side of the comparison. Their
    // agreement with the live helpers is pinned by the `measure`
    // cross-check, which runs both engines over the whole suite.
    fn eval_compute(op: Op, rs1: u64, rs2: u64, imm: i64) -> Option<u64> {
        let f1 = f64::from_bits(rs1);
        let f2 = f64::from_bits(rs2);
        use Op::*;
        Some(match op {
            Add => rs1.wrapping_add(rs2),
            Sub => rs1.wrapping_sub(rs2),
            And => rs1 & rs2,
            Or => rs1 | rs2,
            Xor => rs1 ^ rs2,
            Sll => rs1.wrapping_shl(rs2 as u32 & 63),
            Srl => rs1.wrapping_shr(rs2 as u32 & 63),
            Sra => ((rs1 as i64).wrapping_shr(rs2 as u32 & 63)) as u64,
            Slt => u64::from((rs1 as i64) < (rs2 as i64)),
            Sltu => u64::from(rs1 < rs2),
            Mul => rs1.wrapping_mul(rs2),
            Div => {
                if rs2 == 0 {
                    u64::MAX
                } else {
                    (rs1 as i64).wrapping_div(rs2 as i64) as u64
                }
            }
            Rem => {
                if rs2 == 0 {
                    rs1
                } else {
                    (rs1 as i64).wrapping_rem(rs2 as i64) as u64
                }
            }
            Addi => rs1.wrapping_add(imm as u64),
            Andi => rs1 & imm as u64,
            Ori => rs1 | imm as u64,
            Xori => rs1 ^ imm as u64,
            Slli => rs1.wrapping_shl(imm as u32 & 63),
            Srli => rs1.wrapping_shr(imm as u32 & 63),
            Srai => ((rs1 as i64).wrapping_shr(imm as u32 & 63)) as u64,
            Slti => u64::from((rs1 as i64) < imm),
            Li => imm as u64,
            FAdd => (f1 + f2).to_bits(),
            FSub => (f1 - f2).to_bits(),
            FMul => (f1 * f2).to_bits(),
            FDiv => (f1 / f2).to_bits(),
            FSqrt => f1.sqrt().to_bits(),
            FMin => f1.min(f2).to_bits(),
            FMax => f1.max(f2).to_bits(),
            FCvtIF => ((rs1 as i64) as f64).to_bits(),
            FCvtFI => (f1 as i64) as u64,
            FLt => u64::from(f1 < f2),
            FEq => u64::from(f1 == f2),
            _ => return None,
        })
    }

    fn branch_taken(op: Op, rs1: u64, rs2: u64) -> Option<bool> {
        use Op::*;
        Some(match op {
            Beq => rs1 == rs2,
            Bne => rs1 != rs2,
            Blt => (rs1 as i64) < (rs2 as i64),
            Bge => (rs1 as i64) >= (rs2 as i64),
            Bltu => rs1 < rs2,
            Bgeu => rs1 >= rs2,
            _ => return None,
        })
    }

    fn load_extend(op: Op, raw: u64) -> u64 {
        use Op::*;
        match op {
            Lb => (raw as u8) as i8 as i64 as u64,
            Lh => (raw as u16) as i16 as i64 as u64,
            Lw => (raw as u32) as i32 as i64 as u64,
            _ => raw,
        }
    }

    /// Sparse paged memory with byte-at-a-time access paths, as before the
    /// within-page fast path landed.
    #[derive(Default)]
    struct Memory {
        pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    }

    impl Memory {
        fn read_u8(&self, addr: u64) -> u8 {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
                None => 0,
            }
        }

        fn write_u8(&mut self, addr: u64, value: u8) {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[(addr as usize) & (PAGE_SIZE - 1)] = value;
        }

        fn read(&self, addr: u64, width: u8) -> u64 {
            let mut v = 0u64;
            for i in 0..u64::from(width) {
                v |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
            }
            v
        }

        fn write(&mut self, addr: u64, width: u8, value: u64) {
            for i in 0..u64::from(width) {
                self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    /// Per-step execution record, as the pre-PR interpreter materialized
    /// for every dynamic instruction whether or not anyone was tracing.
    /// Nothing reads the fields here — `run` discards each record exactly
    /// like the pre-PR `Machine::run` did — but constructing them is part
    /// of the per-step cost being replicated.
    #[allow(dead_code)]
    pub struct ExecInfo {
        pub pc: u64,
        pub inst: Inst,
        pub next_pc: u64,
        pub addr: Option<u64>,
        pub rd_value: Option<u64>,
        pub store_value: Option<u64>,
        pub taken: Option<bool>,
    }

    /// Outcome of one step, mirroring the pre-PR `StepOutcome`.
    #[allow(dead_code)]
    pub enum StepOutcome {
        Executed(ExecInfo),
        Halted,
    }

    /// The frozen interpreter: per-step decode, no pre-lowering.
    pub struct Machine<'p> {
        program: &'p Program,
        regs: [u64; NUM_REGS],
        pc: u64,
        mem: Memory,
        halted: bool,
        executed: u64,
    }

    impl<'p> Machine<'p> {
        pub fn new(program: &'p Program) -> Machine<'p> {
            let mut mem = Memory::default();
            for init in &program.data {
                for (i, b) in init.bytes.iter().enumerate() {
                    mem.write_u8(init.addr + i as u64, *b);
                }
            }
            Machine {
                program,
                regs: [0; NUM_REGS],
                pc: program.entry,
                mem,
                halted: false,
                executed: 0,
            }
        }

        pub fn regs(&self) -> &[u64; NUM_REGS] {
            &self.regs
        }

        pub fn executed(&self) -> u64 {
            self.executed
        }

        fn write_rd(&mut self, inst: &Inst, value: u64) -> Option<u64> {
            if inst.op.writes_rd() {
                if !inst.rd.is_zero() {
                    self.regs[inst.rd.index()] = value;
                }
                Some(value)
            } else {
                None
            }
        }

        fn step(&mut self) -> Result<StepOutcome, ExecError> {
            if self.halted {
                return Ok(StepOutcome::Halted);
            }
            let len = self.program.insts.len();
            let inst = *self
                .program
                .insts
                .get(self.pc as usize)
                .ok_or(ExecError::PcOutOfRange { pc: self.pc, len })?;
            let pc = self.pc;
            let rs1 = self.regs[inst.rs1.index()];
            let rs2 = self.regs[inst.rs2.index()];
            let imm = inst.imm;

            let mut next_pc = pc + 1;
            let mut addr = None;
            let mut store_value = None;
            let mut taken = None;
            let mut rd_value = None;

            use Op::*;
            match inst.op {
                Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
                    let a = rs1.wrapping_add(imm as u64);
                    addr = Some(a);
                    let width = inst.op.mem_width().expect("load has width");
                    let raw = self.mem.read(a, width);
                    rd_value = self.write_rd(&inst, load_extend(inst.op, raw));
                }
                Sb | Sh | Sw | Sd | Fsd => {
                    let a = rs1.wrapping_add(imm as u64);
                    addr = Some(a);
                    let width = inst.op.mem_width().expect("store has width");
                    self.mem.write(a, width, rs2);
                    store_value = Some(rs2);
                }
                Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                    let t = branch_taken(inst.op, rs1, rs2).expect("conditional branch");
                    taken = Some(t);
                    if t {
                        next_pc = imm as u64;
                    }
                }
                Jal => {
                    rd_value = self.write_rd(&inst, pc + 1);
                    next_pc = imm as u64;
                }
                Jalr => {
                    rd_value = self.write_rd(&inst, pc + 1);
                    next_pc = rs1.wrapping_add(imm as u64);
                }
                Nop => {}
                _ if inst.op != Op::Halt => {
                    let v = eval_compute(inst.op, rs1, rs2, imm)
                        .expect("remaining opcodes are pure compute");
                    rd_value = self.write_rd(&inst, v);
                }
                _ => {
                    self.halted = true;
                    self.executed += 1;
                    return Ok(StepOutcome::Executed(ExecInfo {
                        pc,
                        inst,
                        next_pc: pc,
                        addr: None,
                        rd_value: None,
                        store_value: None,
                        taken: None,
                    }));
                }
            }

            self.pc = next_pc;
            self.executed += 1;
            Ok(StepOutcome::Executed(ExecInfo {
                pc,
                inst,
                next_pc,
                addr,
                rd_value,
                store_value,
                taken,
            }))
        }

        /// Runs until `halt`, or errors after `limit` steps.
        pub fn run(&mut self, limit: u64) -> Result<u64, ExecError> {
            let start = self.executed;
            while !self.halted {
                if self.executed - start >= limit {
                    return Err(ExecError::StepLimit { limit });
                }
                self.step()?;
            }
            Ok(self.executed - start)
        }

        /// The pre-PR functional delivery path: run to `halt`, pushing one
        /// decoded record per committed instruction into a freshly grown
        /// vector — exactly how `trace_program` materialized instruction
        /// streams for `Session`, warming and the runners before the
        /// streaming reader existed. Returns the record count.
        pub fn run_trace(&mut self, limit: u64) -> Result<usize, ExecError> {
            let mut out: Vec<Record> = Vec::new();
            let mut seq = 0u64;
            while !self.halted {
                if out.len() as u64 >= limit {
                    return Err(ExecError::StepLimit { limit });
                }
                match self.step()? {
                    StepOutcome::Halted => break,
                    StepOutcome::Executed(info) => {
                        if info.inst.op == Op::Halt {
                            break;
                        }
                        out.push(Record {
                            seq,
                            pc: info.pc,
                            inst: info.inst,
                            next_pc: info.next_pc,
                            addr: info.addr,
                            taken: info.taken,
                            rd_value: info.rd_value,
                            store_value: info.store_value,
                        });
                        seq += 1;
                    }
                }
            }
            Ok(out.len())
        }
    }

    /// Decoded per-instruction record, laid out like the pre-PR
    /// `DynInst` the trace path materialized per dynamic instruction.
    #[allow(dead_code)]
    pub struct Record {
        pub seq: u64,
        pub pc: u64,
        pub inst: Inst,
        pub next_pc: u64,
        pub addr: Option<u64>,
        pub taken: Option<bool>,
        pub rd_value: Option<u64>,
        pub store_value: Option<u64>,
    }
}

/// Per-engine measurement over the full suite.
struct Measurement {
    name: &'static str,
    /// Architecturally executed instructions per full-suite sweep.
    insts: u64,
    /// Median wall-clock of one sweep, in seconds.
    median_s: f64,
    /// Fastest sweep, in seconds.
    min_s: f64,
}

impl Measurement {
    fn mips_median(&self) -> f64 {
        self.insts as f64 / self.median_s / 1e6
    }

    fn mips_best(&self) -> f64 {
        self.insts as f64 / self.min_s / 1e6
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.to_owned())),
            ("insts".to_owned(), Json::Num(self.insts as f64)),
            ("median_s".to_owned(), Json::Num(round6(self.median_s))),
            ("min_s".to_owned(), Json::Num(round6(self.min_s))),
            (
                "mips_median".to_owned(),
                Json::Num(round3(self.mips_median())),
            ),
            ("mips_best".to_owned(), Json::Num(round3(self.mips_best()))),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

struct Args {
    scale: Scale,
    iters: usize,
    out: String,
    baseline: Option<String>,
    check: Option<String>,
    tolerance: f64,
    schema_check: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_functional [test|small|reference] [--iters=N] [--out=PATH] \
         [--baseline=PATH] [--check=PATH] [--tolerance=F] [--schema-check=PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Test,
        iters: 5,
        out: "BENCH_functional.json".to_owned(),
        baseline: None,
        check: None,
        tolerance: 0.5,
        schema_check: None,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "test" => args.scale = Scale::Test,
            "small" => args.scale = Scale::Small,
            "reference" => args.scale = Scale::Reference,
            other => {
                let Some((flag, value)) = other.split_once('=') else {
                    usage();
                };
                match flag {
                    "--iters" => match value.parse() {
                        Ok(n) if n >= 1 => args.iters = n,
                        _ => usage(),
                    },
                    "--out" => args.out = value.to_owned(),
                    "--baseline" => args.baseline = Some(value.to_owned()),
                    "--check" => args.check = Some(value.to_owned()),
                    "--tolerance" => match value.parse() {
                        Ok(f) if (0.0..=1.0).contains(&f) => args.tolerance = f,
                        _ => usage(),
                    },
                    "--schema-check" => args.schema_check = Some(value.to_owned()),
                    _ => usage(),
                }
            }
        }
    }
    args
}

/// Loads and validates a report; exits with a diagnostic on any problem.
fn load_report(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_functional: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_functional: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if let Err(e) = validate_schema(&doc) {
        eprintln!("bench_functional: {path} failed schema check: {e}");
        std::process::exit(1);
    }
    doc
}

/// Checks the report layout the gate depends on, including that the
/// recorded speedup meets the pinned floor.
fn validate_schema(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema `{other}` (want `{SCHEMA}`)")),
        None => return Err("missing `schema`".to_owned()),
    }
    for key in ["scale", "iterations", "kernels", "engines"] {
        if doc.get(key).is_none() {
            return Err(format!("missing `{key}`"));
        }
    }
    let engines = doc
        .get("engines")
        .and_then(Json::as_arr)
        .ok_or("`engines` is not an array")?;
    if engines.is_empty() {
        return Err("`engines` is empty".to_owned());
    }
    for m in engines {
        for key in [
            "name",
            "insts",
            "median_s",
            "min_s",
            "mips_median",
            "mips_best",
        ] {
            match key {
                "name" => {
                    m.get(key)
                        .and_then(Json::as_str)
                        .ok_or(format!("engine entry missing string `{key}`"))?;
                }
                _ => {
                    let v = m
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("engine entry missing number `{key}`"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("engine `{key}` is not a non-negative number"));
                    }
                }
            }
        }
    }
    let min_speedup = doc
        .get("min_speedup")
        .and_then(Json::as_f64)
        .ok_or("missing number `min_speedup`")?;
    let speedup = doc
        .get("speedup")
        .and_then(Json::as_f64)
        .ok_or("missing number `speedup`")?;
    if !speedup.is_finite() || speedup < min_speedup {
        return Err(format!(
            "recorded speedup {speedup} is below the {min_speedup}x floor"
        ));
    }
    // `baseline` is optional; when present it must carry its own engines.
    if let Some(base) = doc.get("baseline") {
        if *base != Json::Null {
            base.get("engines")
                .and_then(Json::as_arr)
                .ok_or("`baseline` has no `engines` array")?;
        }
    }
    Ok(())
}

/// Times one full-suite functional sweep per iteration for both engines.
///
/// Before timing anything, runs every kernel on both engines once and
/// asserts identical final register files and instruction counts.
fn measure(scale: Scale, iters: usize) -> (Vec<Measurement>, Vec<&'static str>) {
    let suite = fgstp_workloads::suite(scale);
    let kernels: Vec<&'static str> = suite.iter().map(|w| w.name).collect();
    let budget = scale.trace_budget();
    eprintln!(
        "bench_functional: cross-checking {} kernels at {:?} scale",
        suite.len(),
        scale
    );
    let mut insts = 0u64;
    for w in &suite {
        let mut fm = frozen::Machine::new(w.program());
        fm.run(budget)
            .unwrap_or_else(|e| panic!("{} (reference): {e}", w.name));
        let pre = PreProgram::new(w.program());
        let mut tm = ThreadedMachine::new(&pre);
        tm.run(budget)
            .unwrap_or_else(|e| panic!("{} (threaded): {e}", w.name));
        assert_eq!(
            fm.regs(),
            tm.regs(),
            "{}: engines disagree on the final register file",
            w.name
        );
        assert_eq!(
            fm.executed(),
            tm.executed(),
            "{}: engines disagree on the instruction count",
            w.name
        );
        insts += fm.executed();
    }

    let sweep_reference = || {
        for w in &suite {
            let mut m = frozen::Machine::new(w.program());
            black_box(m.run_trace(black_box(budget)).unwrap());
        }
    };
    // Decode-once: lowering runs a single time per static program and the
    // resulting op tables are reused across sweeps, which is exactly how
    // `Session` and the runners consume them. Machine construction (the
    // data-segment boot) stays inside the timed region for both engines.
    let pres: Vec<PreProgram> = suite.iter().map(|w| PreProgram::new(w.program())).collect();
    let sweep_threaded = || {
        for pre in &pres {
            let mut m = ThreadedMachine::new(pre);
            black_box(m.run(black_box(budget)).unwrap());
        }
    };

    let mut results = Vec::new();
    let engines: [(&'static str, &dyn Fn()); 2] = [
        ("reference", &sweep_reference),
        ("threaded", &sweep_threaded),
    ];
    for (name, sweep) in engines {
        // One warmup sweep doubles as the calibration run: each timed
        // sample then repeats the sweep often enough to last ~10 ms, so
        // scheduler jitter on small scales cannot dominate a sample.
        let t0 = Instant::now();
        sweep();
        let est = t0.elapsed().as_secs_f64().max(1e-9);
        let reps = ((0.010 / est).ceil() as usize).clamp(1, 64);
        let mut times: Vec<f64> = (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..reps {
                    sweep();
                }
                t0.elapsed().as_secs_f64() / reps as f64
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            name,
            insts,
            median_s: times[times.len() / 2],
            min_s: times[0],
        };
        eprintln!(
            "bench_functional: {:<10} median {:>9.2} ms  min {:>9.2} ms  {:>8.2} MIPS",
            m.name,
            m.median_s * 1e3,
            m.min_s * 1e3,
            m.mips_median()
        );
        results.push(m);
    }
    let speedup = results[1].mips_median() / results[0].mips_median();
    eprintln!("bench_functional: threaded/reference speedup {speedup:.2}x");
    (results, kernels)
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Reference => "reference",
    }
}

fn scale_from_name(name: &str) -> Option<Scale> {
    match name {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "reference" => Some(Scale::Reference),
        _ => None,
    }
}

fn report(
    scale: Scale,
    iters: usize,
    kernels: &[&'static str],
    engines: &[Measurement],
    baseline: Option<Json>,
) -> Json {
    let speedup = engines[1].mips_median() / engines[0].mips_median();
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
        ("scale".to_owned(), Json::Str(scale_name(scale).to_owned())),
        ("iterations".to_owned(), Json::Num(iters as f64)),
        (
            "kernels".to_owned(),
            Json::Arr(kernels.iter().map(|k| Json::Str((*k).to_owned())).collect()),
        ),
        (
            "engines".to_owned(),
            Json::Arr(engines.iter().map(Measurement::to_json).collect()),
        ),
        ("speedup".to_owned(), Json::Num(round3(speedup))),
        ("min_speedup".to_owned(), Json::Num(MIN_SPEEDUP)),
        ("baseline".to_owned(), baseline.unwrap_or(Json::Null)),
    ])
}

/// Gate mode: fresh sweep vs the `engines` recorded in `path`.
fn check(path: &str, tolerance: f64, iters: usize) {
    let doc = load_report(path);
    let scale = doc
        .get("scale")
        .and_then(Json::as_str)
        .and_then(scale_from_name)
        .unwrap_or(Scale::Test);
    let min_speedup = doc
        .get("min_speedup")
        .and_then(Json::as_f64)
        .unwrap_or(MIN_SPEEDUP);
    let (fresh, _) = measure(scale, iters);
    let recorded = doc.get("engines").and_then(Json::as_arr).unwrap();
    let mut failed = false;
    println!(
        "{:<10} {:>14} {:>12} {:>10} {:>8}",
        "engine", "recorded MIPS", "fresh MIPS", "ratio", "gate"
    );
    for m in &fresh {
        let Some(rec) = recorded
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(m.name))
            .and_then(|r| r.get("mips_median"))
            .and_then(Json::as_f64)
        else {
            println!("{:<10} {:>14} (not recorded — skipped)", m.name, "-");
            continue;
        };
        let fresh_mips = m.mips_median();
        let ratio = fresh_mips / rec;
        let ok = fresh_mips >= rec * tolerance;
        failed |= !ok;
        println!(
            "{:<10} {:>14.2} {:>12.2} {:>9.2}x {:>8}",
            m.name,
            rec,
            fresh_mips,
            ratio,
            if ok { "ok" } else { "FAIL" }
        );
    }
    // The floor on a *fresh* run is scaled by the same tolerance that pads
    // the throughput comparison: the recorded speedup (schema-checked
    // strictly against `min_speedup`) was measured on a quiet machine,
    // while re-measurement under CI load wobbles both numerators.
    let fresh_speedup = fresh[1].mips_median() / fresh[0].mips_median();
    let speedup_floor = min_speedup * tolerance;
    let speedup_ok = fresh_speedup >= speedup_floor;
    failed |= !speedup_ok;
    println!(
        "{:<10} {:>14.2}x {:>11.2}x {:>10} {:>8}",
        "speedup",
        speedup_floor,
        fresh_speedup,
        "-",
        if speedup_ok { "ok" } else { "FAIL" }
    );
    if failed {
        eprintln!(
            "bench_functional: throughput fell below {tolerance} of the numbers in {path} \
             (or the speedup floor); investigate, or refresh the baseline if the slowdown \
             is intended"
        );
        std::process::exit(1);
    }
    println!("bench_functional: perf gate passed (tolerance {tolerance}, floor {min_speedup}x)");
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.schema_check {
        load_report(path);
        println!("bench_functional: {path} matches schema `{SCHEMA}`");
        return;
    }
    if let Some(path) = &args.check {
        check(path, args.tolerance, args.iters);
        return;
    }
    let baseline = args.baseline.as_deref().map(|path| {
        let doc = load_report(path);
        // Promote the old report's current numbers to this report's
        // baseline (its scale and engine set travel along for context).
        Json::Obj(vec![
            (
                "scale".to_owned(),
                doc.get("scale").cloned().unwrap_or(Json::Null),
            ),
            (
                "engines".to_owned(),
                doc.get("engines").cloned().unwrap_or(Json::Arr(vec![])),
            ),
        ])
    });
    let (engines, kernels) = measure(args.scale, args.iters);
    let doc = report(args.scale, args.iters, &kernels, &engines, baseline);
    std::fs::write(&args.out, doc.render()).unwrap_or_else(|e| {
        eprintln!("bench_functional: cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("bench_functional: wrote {}", args.out);
}
