//! Wall-clock perf-regression harness for the simulator hot loop.
//!
//! Runs the pinned 18-kernel suite through the `single-small`,
//! `fgstp-small` and `fgstp-medium-4` timing machines, measuring the
//! host-side wall-clock per full-suite sweep and the resulting
//! simulated-MIPS (committed instructions per wall-clock second). Results
//! go to `BENCH_hotloop.json`; `scripts/perf_gate.sh` re-runs the sweep
//! and fails when throughput drops below a tolerance band of the
//! checked-in numbers.
//!
//! ```text
//! bench_hotloop [test|small|reference] [--iters=N] [--out=PATH]
//!               [--baseline=PATH] [--check=PATH] [--tolerance=F]
//!               [--schema-check=PATH]
//! ```
//!
//! Modes (mutually exclusive; measurement is the default):
//!
//! * **measure** — run the sweep and write the JSON report to `--out`
//!   (default `BENCH_hotloop.json`). With `--baseline=PATH`, the
//!   `machines` section of that previously written report is embedded as
//!   this report's `baseline` — pass the *old* report here to promote its
//!   numbers to the comparison reference while re-measuring.
//! * **`--check=PATH`** — run the sweep and compare fresh simulated-MIPS
//!   against the `machines` recorded in `PATH`; exits non-zero if any
//!   machine falls below `tolerance × recorded` (default 0.5, i.e. only a
//!   2× regression fails — wide enough to stay non-flaky across hosts).
//! * **`--schema-check=PATH`** — validate that `PATH` is a well-formed
//!   report (no benchmarking); used by `scripts/verify.sh`.
//!
//! See the README "Performance" section for the schema and the
//! baseline-refresh workflow.

use std::hint::black_box;
use std::time::Instant;

use fgstp_isa::Trace;
use fgstp_sim::runner::{run_on, trace_workload};
use fgstp_sim::{MachineKind, Scale};
use fgstp_telemetry::json::Json;

/// Report format identifier (bump on incompatible layout changes).
const SCHEMA: &str = "fgstp-bench-hotloop/v1";

/// The machines the gate pins: one conventional core and the two
/// headline Fg-STP configurations.
const MACHINES: [MachineKind; 3] = [
    MachineKind::SingleSmall,
    MachineKind::FgstpSmall,
    MachineKind::FgstpMedium4,
];

/// Per-machine measurement over the full suite.
struct Measurement {
    name: &'static str,
    /// Committed instructions per full-suite sweep.
    insts: u64,
    /// Median wall-clock of one sweep, in seconds.
    median_s: f64,
    /// Fastest sweep, in seconds.
    min_s: f64,
}

impl Measurement {
    fn mips_median(&self) -> f64 {
        self.insts as f64 / self.median_s / 1e6
    }

    fn mips_best(&self) -> f64 {
        self.insts as f64 / self.min_s / 1e6
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.to_owned())),
            ("insts".to_owned(), Json::Num(self.insts as f64)),
            ("median_s".to_owned(), Json::Num(round6(self.median_s))),
            ("min_s".to_owned(), Json::Num(round6(self.min_s))),
            (
                "mips_median".to_owned(),
                Json::Num(round3(self.mips_median())),
            ),
            ("mips_best".to_owned(), Json::Num(round3(self.mips_best()))),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

struct Args {
    scale: Scale,
    iters: usize,
    out: String,
    baseline: Option<String>,
    check: Option<String>,
    tolerance: f64,
    schema_check: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_hotloop [test|small|reference] [--iters=N] [--out=PATH] \
         [--baseline=PATH] [--check=PATH] [--tolerance=F] [--schema-check=PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Test,
        iters: 5,
        out: "BENCH_hotloop.json".to_owned(),
        baseline: None,
        check: None,
        tolerance: 0.5,
        schema_check: None,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "test" => args.scale = Scale::Test,
            "small" => args.scale = Scale::Small,
            "reference" => args.scale = Scale::Reference,
            other => {
                let Some((flag, value)) = other.split_once('=') else {
                    usage();
                };
                match flag {
                    "--iters" => match value.parse() {
                        Ok(n) if n >= 1 => args.iters = n,
                        _ => usage(),
                    },
                    "--out" => args.out = value.to_owned(),
                    "--baseline" => args.baseline = Some(value.to_owned()),
                    "--check" => args.check = Some(value.to_owned()),
                    "--tolerance" => match value.parse() {
                        Ok(f) if (0.0..=1.0).contains(&f) => args.tolerance = f,
                        _ => usage(),
                    },
                    "--schema-check" => args.schema_check = Some(value.to_owned()),
                    _ => usage(),
                }
            }
        }
    }
    args
}

/// Loads and validates a report; exits with a diagnostic on any problem.
fn load_report(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_hotloop: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_hotloop: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if let Err(e) = validate_schema(&doc) {
        eprintln!("bench_hotloop: {path} failed schema check: {e}");
        std::process::exit(1);
    }
    doc
}

/// Checks the report layout the gate depends on.
fn validate_schema(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema `{other}` (want `{SCHEMA}`)")),
        None => return Err("missing `schema`".to_owned()),
    }
    for key in ["scale", "iterations", "kernels", "machines"] {
        if doc.get(key).is_none() {
            return Err(format!("missing `{key}`"));
        }
    }
    let machines = doc
        .get("machines")
        .and_then(Json::as_arr)
        .ok_or("`machines` is not an array")?;
    if machines.is_empty() {
        return Err("`machines` is empty".to_owned());
    }
    for m in machines {
        for key in [
            "name",
            "insts",
            "median_s",
            "min_s",
            "mips_median",
            "mips_best",
        ] {
            match key {
                "name" => {
                    m.get(key)
                        .and_then(Json::as_str)
                        .ok_or(format!("machine entry missing string `{key}`"))?;
                }
                _ => {
                    let v = m
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("machine entry missing number `{key}`"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("machine `{key}` is not a non-negative number"));
                    }
                }
            }
        }
    }
    // `baseline` is optional; when present it must carry its own machines.
    if let Some(base) = doc.get("baseline") {
        if *base != Json::Null {
            base.get("machines")
                .and_then(Json::as_arr)
                .ok_or("`baseline` has no `machines` array")?;
        }
    }
    Ok(())
}

/// Times one full-suite sweep per iteration for every pinned machine.
fn measure(scale: Scale, iters: usize) -> (Vec<Measurement>, Vec<&'static str>) {
    let suite = fgstp_workloads::suite(scale);
    let kernels: Vec<&'static str> = suite.iter().map(|w| w.name).collect();
    eprintln!(
        "bench_hotloop: tracing {} kernels at {:?} scale",
        suite.len(),
        scale
    );
    let traces: Vec<Trace> = suite.iter().map(|w| trace_workload(w, scale)).collect();
    let insts: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let mut results = Vec::new();
    for kind in MACHINES {
        // One warmup sweep, then `iters` timed sweeps.
        let sweep = || {
            for t in &traces {
                black_box(run_on(kind, black_box(t.insts())));
            }
        };
        sweep();
        let mut times: Vec<f64> = (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                sweep();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            name: kind.label(),
            insts,
            median_s: times[times.len() / 2],
            min_s: times[0],
        };
        eprintln!(
            "bench_hotloop: {:<16} median {:>9.2} ms  min {:>9.2} ms  {:>8.2} MIPS",
            m.name,
            m.median_s * 1e3,
            m.min_s * 1e3,
            m.mips_median()
        );
        results.push(m);
    }
    (results, kernels)
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Reference => "reference",
    }
}

fn scale_from_name(name: &str) -> Option<Scale> {
    match name {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "reference" => Some(Scale::Reference),
        _ => None,
    }
}

fn report(
    scale: Scale,
    iters: usize,
    kernels: &[&'static str],
    machines: &[Measurement],
    baseline: Option<Json>,
) -> Json {
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
        ("scale".to_owned(), Json::Str(scale_name(scale).to_owned())),
        ("iterations".to_owned(), Json::Num(iters as f64)),
        (
            "kernels".to_owned(),
            Json::Arr(kernels.iter().map(|k| Json::Str((*k).to_owned())).collect()),
        ),
        (
            "machines".to_owned(),
            Json::Arr(machines.iter().map(Measurement::to_json).collect()),
        ),
        ("baseline".to_owned(), baseline.unwrap_or(Json::Null)),
    ])
}

/// Gate mode: fresh sweep vs the `machines` recorded in `path`.
fn check(path: &str, tolerance: f64, iters: usize) {
    let doc = load_report(path);
    let scale = doc
        .get("scale")
        .and_then(Json::as_str)
        .and_then(scale_from_name)
        .unwrap_or(Scale::Test);
    let (fresh, _) = measure(scale, iters);
    let recorded = doc.get("machines").and_then(Json::as_arr).unwrap();
    let mut failed = false;
    println!(
        "{:<16} {:>14} {:>12} {:>10} {:>8}",
        "machine", "recorded MIPS", "fresh MIPS", "ratio", "gate"
    );
    for m in &fresh {
        let Some(rec) = recorded
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(m.name))
            .and_then(|r| r.get("mips_median"))
            .and_then(Json::as_f64)
        else {
            println!("{:<16} {:>14} (not recorded — skipped)", m.name, "-");
            continue;
        };
        let fresh_mips = m.mips_median();
        let ratio = fresh_mips / rec;
        let ok = fresh_mips >= rec * tolerance;
        failed |= !ok;
        println!(
            "{:<16} {:>14.2} {:>12.2} {:>9.2}x {:>8}",
            m.name,
            rec,
            fresh_mips,
            ratio,
            if ok { "ok" } else { "FAIL" }
        );
    }
    if failed {
        eprintln!(
            "bench_hotloop: throughput fell below {tolerance} of the numbers in {path}; \
             investigate, or refresh the baseline if the slowdown is intended"
        );
        std::process::exit(1);
    }
    println!("bench_hotloop: perf gate passed (tolerance {tolerance})");
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.schema_check {
        load_report(path);
        println!("bench_hotloop: {path} matches schema `{SCHEMA}`");
        return;
    }
    if let Some(path) = &args.check {
        check(path, args.tolerance, args.iters);
        return;
    }
    let baseline = args.baseline.as_deref().map(|path| {
        let doc = load_report(path);
        // Promote the old report's current numbers to this report's
        // baseline (its scale and machine set travel along for context).
        Json::Obj(vec![
            (
                "scale".to_owned(),
                doc.get("scale").cloned().unwrap_or(Json::Null),
            ),
            (
                "machines".to_owned(),
                doc.get("machines").cloned().unwrap_or(Json::Arr(vec![])),
            ),
        ])
    });
    let (machines, kernels) = measure(args.scale, args.iters);
    let doc = report(args.scale, args.iters, &kernels, &machines, baseline);
    std::fs::write(&args.out, doc.render()).unwrap_or_else(|e| {
        eprintln!("bench_hotloop: cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    println!("bench_hotloop: wrote {}", args.out);
}
