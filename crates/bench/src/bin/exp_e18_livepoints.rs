//! E18 — live-points: checkpointed, parallel sampled simulation.
//!
//! Runs the long-run suite (plus one RV32 program, so both frontends are
//! covered) under the standard ≥10× sampling regime three times against
//! the same cache directory:
//!
//! 1. **cold** — live-point snapshots enabled but absent: one pass of
//!    continuous functional warming per (workload, machine-shape) job,
//!    detailed windows fanned out across the worker pool, snapshots
//!    stored;
//! 2. **snapshot-warm** — the same configuration replayed: every job
//!    loads its stored live-points, functional warming is skipped
//!    entirely (zero instructions warmed), only the detailed windows run;
//! 3. **snapshots off** — the control: warming repeats and the cache is
//!    neither consulted nor written.
//!
//! The experiment reports wall-clock, snapshot hit/miss counts, and
//! instructions warmed per phase, and checks the projected figures are
//! bit-identical across all three — the live-point contract: checkpoints
//! buy time, never accuracy.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--threads=N`, `--sample=I,W,D`) plus `--csv`; the cache
//! directory is a private temporary one so the cold leg is really cold.

use std::time::Instant;

use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_sim::{geomean, BenchResult, MachineKind, SampleConfig, Table};
use fgstp_workloads::{by_name, long_suite};

/// Projected cycles per (workload, machine), the identity the phases
/// must agree on bit-for-bit.
fn figures(results: &[BenchResult]) -> Vec<(&'static str, Vec<u64>)> {
    results
        .iter()
        .map(|b| (b.name, b.runs.iter().map(|r| r.result.cycles).collect()))
        .collect()
}

fn geomean_speedup(results: &[BenchResult]) -> f64 {
    let speedups: Vec<f64> = results
        .iter()
        .filter(|b| b.runs.len() == 2)
        .map(|b| b.runs[0].result.cycles as f64 / b.runs[1].result.cycles as f64)
        .collect();
    geomean(&speedups)
}

fn main() {
    let args = ExpArgs::parse();
    let scfg = args.spec.sample.unwrap_or(SampleConfig {
        interval: 10_000,
        warmup: 600,
        detail: 300,
    });
    let machines = [MachineKind::SingleSmall, MachineKind::FgstpSmall];
    let mut workloads = long_suite(args.scale());
    if let Some(rv) = by_name("rv:quicksort", args.scale()) {
        workloads.push(rv);
    }

    let dir = std::env::temp_dir().join(format!("fgstp-e18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Pre-populate the trace cache so every phase's wall-clock measures
    // sampled simulation, not tracing.
    {
        let s = args.session().cache_dir(&dir);
        s.par_map(&workloads, |w| s.trace(w));
    }

    let run_phase = |snapshots: bool| {
        let s = args
            .session()
            .cache_dir(&dir)
            .snapshots(snapshots)
            .sample(scfg)
            .machines(machines);
        let t0 = Instant::now();
        let results = s.plan().workloads(workloads.clone()).execute();
        (results, s.snapshot_stats(), t0.elapsed())
    };

    let (cold, cold_stats, cold_wall) = run_phase(true);
    let (warm, warm_stats, warm_wall) = run_phase(true);
    let (off, off_stats, off_wall) = run_phase(false);

    let reference = figures(&cold);
    let phases = [
        ("cold (store)", &cold, cold_stats, cold_wall),
        ("snapshot-warm", &warm, warm_stats, warm_wall),
        ("snapshots off", &off, off_stats, off_wall),
    ];
    let mut table = Table::new([
        "phase",
        "wall (ms)",
        "live-points",
        "insts warmed",
        "geomean speedup",
        "identical",
    ]);
    let mut all_identical = true;
    for (name, results, stats, wall) in &phases {
        let identical = figures(results) == reference;
        all_identical &= identical;
        table.row([
            (*name).to_owned(),
            format!("{:.0}", wall.as_secs_f64() * 1e3),
            format!("{} hit / {} miss", stats.hits, stats.misses),
            format!("{}", stats.warmed_insts),
            format!("{:.3}", geomean_speedup(results)),
            if identical { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    print_experiment(
        "E18",
        "live-points: snapshot-warm parallel sampling vs cold warming",
        &args,
        &table,
    );
    println!(
        "snapshot-warm replay: {:.2}x the cold wall-clock, {} insts warmed (cold warmed {}); figures identical: {}",
        warm_wall.as_secs_f64() / cold_wall.as_secs_f64(),
        phases[1].2.warmed_insts,
        cold_stats.warmed_insts,
        if all_identical { "yes" } else { "NO" }
    );
    assert!(all_identical, "live-points changed the figures");
    assert_eq!(
        phases[1].2.warmed_insts, 0,
        "snapshot-warm phase must skip functional warming entirely"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
