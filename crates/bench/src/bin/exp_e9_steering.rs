//! E9 — partitioning policy comparison.
//!
//! Fg-STP's slice-lookahead partitioner against the round-robin chunk
//! baseline and classic online greedy dependence steering, at the same
//! machine configuration. This isolates how much of the win comes from
//! *how* the stream is partitioned.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig, PartitionPolicy};
use fgstp_bench::{print_experiment, ExpArgs, SuiteBaseline};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, Table};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let base = SuiteBaseline::new(&session);
    let jobs = base.jobs();

    let policies: [(&str, PartitionPolicy); 4] = [
        ("mod-64 round robin", PartitionPolicy::ModN { chunk: 64 }),
        ("greedy dependence", PartitionPolicy::GreedyDep),
        ("lookahead-256 (Fg-STP)", PartitionPolicy::fgstp_default()),
        (
            "lookahead-256, 0 refine",
            PartitionPolicy::SliceLookahead {
                window: 256,
                refine_passes: 0,
            },
        ),
    ];
    let mut table = Table::new(["policy", "geomean speedup", "geomean comms/100"]);
    for (label, policy) in policies {
        let points = session.par_map(&jobs, |((_, t), single)| {
            let mut cfg = FgstpConfig::small();
            cfg.partition.policy = policy;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            (
                r.speedup_over(&single.result),
                (s.partition.comms_per_inst() * 100.0).max(1e-9),
            )
        });
        let (speedups, comm_rates): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
        table.row([
            label.to_owned(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
        ]);
    }
    print_experiment("E9", "partitioning policy comparison", &args, &table);
}
