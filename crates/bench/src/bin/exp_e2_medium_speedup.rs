//! E2 — per-benchmark speedup on the medium 2-core CMP.
//!
//! Core Fusion and Fg-STP vs one medium core. The paper's headline:
//! Fg-STP beats Core Fusion by ~18% on average on the medium
//! configuration — a larger margin than on the small one, because fusing
//! two already-capable cores buys less while its front-end overheads stay.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp_bench::{run_speedup_experiment, ExpArgs};
use fgstp_sim::MachineKind;

fn main() {
    let args = ExpArgs::parse();
    run_speedup_experiment(
        "E2",
        "speedup over one medium core (medium 2-core CMP)",
        &args,
        MachineKind::MEDIUM_CMP,
    );
}
