//! E12 — CPI stacks: where the cycles go on every machine.
//!
//! Runs the whole suite with cycle accounting enabled and prints one
//! CPI-stack table per machine preset (baseline, Core Fusion and Fg-STP,
//! small and medium). Every row decomposes the machine's aggregate
//! core-cycles per instruction into a committing base component plus the
//! thirteen stall categories, so `base + Σ categories = cpi` per row —
//! the Fg-STP tables additionally expose the scheme's own overheads
//! (communication wait, lookahead backpressure, replication, cross-core
//! memory-dependence replay, global commit sync).
//!
//! Telemetry never changes timing: the cycles and speedups measured here
//! are bit-identical to E1/E2.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_sim::{cpi_stack_table, MachineKind};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session().telemetry(true).machines(MachineKind::ALL);
    let results = session.run_suite();
    for b in &results {
        if let Some(why) = &b.error {
            eprintln!("warning: {} produced no runs: {why}", b.name);
        }
    }
    for kind in MachineKind::ALL {
        let table = cpi_stack_table(&results, kind);
        print_experiment(
            "E12",
            &format!("CPI stack, {kind} (aggregate core-cycles/inst)"),
            &args,
            &table,
        );
    }
}
