//! E3 — sensitivity to inter-core communication latency.
//!
//! Sweeps the register-queue latency from 1 to 16 cycles and reports the
//! geomean Fg-STP speedup over one small core. The curve motivates the
//! paper's dedicated queues between adjacent cores: speedup degrades
//! gracefully but monotonically with latency.
//!
//! Accepts the shared [`fgstp_sim::ExperimentSpec`] flag vocabulary
//! (scale word, `--workloads=a,b`, `--threads=N`, `--no-cache`,
//! `--sample*`) plus `--csv`; see `fgstp_bench::ExpArgs`.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs, SuiteBaseline};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, Table};

fn main() {
    let args = ExpArgs::parse();
    let session = args.session();
    let base = SuiteBaseline::new(&session);
    let jobs = base.jobs();

    let mut table = Table::new([
        "comm latency (cycles)",
        "geomean speedup",
        "geomean comms/100 insts",
    ]);
    for latency in [1u64, 2, 4, 6, 8, 12, 16] {
        let points = session.par_map(&jobs, |((_, t), single)| {
            let mut cfg = FgstpConfig::small();
            cfg.comm.latency = latency;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            (
                r.speedup_over(&single.result),
                (s.partition.comms_per_inst() * 100.0).max(1e-9),
            )
        });
        let (speedups, comm_rates): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
        table.row([
            latency.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
        ]);
    }
    print_experiment(
        "E3",
        "Fg-STP sensitivity to communication latency",
        &args,
        &table,
    );
}
