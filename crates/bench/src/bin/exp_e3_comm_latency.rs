//! E3 — sensitivity to inter-core communication latency.
//!
//! Sweeps the register-queue latency from 1 to 16 cycles and reports the
//! geomean Fg-STP speedup over one small core. The curve motivates the
//! paper's dedicated queues between adjacent cores: speedup degrades
//! gracefully but monotonically with latency.

use fgstp::{run_fgstp, FgstpConfig};
use fgstp_bench::{print_experiment, ExpArgs};
use fgstp_mem::HierarchyConfig;
use fgstp_sim::{geomean, run_on, runner::trace_workload, MachineKind, Table};
use fgstp_workloads::suite;

fn main() {
    let args = ExpArgs::parse();
    let workloads = suite(args.scale);
    let traces: Vec<_> = workloads
        .iter()
        .map(|w| trace_workload(w, args.scale))
        .collect();
    let singles: Vec<_> = traces
        .iter()
        .map(|t| run_on(MachineKind::SingleSmall, t.insts()))
        .collect();

    let mut table = Table::new([
        "comm latency (cycles)",
        "geomean speedup",
        "geomean comms/100 insts",
    ]);
    for latency in [1u64, 2, 4, 6, 8, 12, 16] {
        let mut speedups = Vec::new();
        let mut comm_rates = Vec::new();
        for (t, single) in traces.iter().zip(&singles) {
            let mut cfg = FgstpConfig::small();
            cfg.comm.latency = latency;
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
            speedups.push(r.speedup_over(&single.result));
            comm_rates.push((s.partition.comms_per_inst() * 100.0).max(1e-9));
        }
        table.row([
            latency.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", geomean(&comm_rates)),
        ]);
    }
    print_experiment(
        "E3",
        "Fg-STP sensitivity to communication latency",
        &args,
        &table,
    );
}
