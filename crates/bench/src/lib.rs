//! # fgstp-bench
//!
//! Experiment harness for the Fg-STP reproduction. Each `exp_*` binary in
//! `src/bin/` regenerates one table or figure of the paper's evaluation —
//! see the per-experiment index in `DESIGN.md` and the recorded
//! paper-vs-measured comparison in `EXPERIMENTS.md`. The `benches/`
//! directory holds a dependency-free wall-clock benchmark of the
//! simulator's hot paths.
//!
//! Every binary accepts an optional scale argument (`test`, `small`,
//! `reference`; default `small`), `--csv` to emit machine-readable
//! output, `--threads=N` to size the session's worker pool, `--no-cache`
//! to disable the on-disk trace cache, and `--sample` (with optional
//! `--sample-interval=N` / `--sample-warmup=N` / `--sample-detail=N`) to
//! switch the session to SMARTS-style sampled simulation.

use fgstp_isa::Trace;
use fgstp_sim::{run_on, MachineKind, MachineRun, SampleConfig, Scale, Session, Table, Workload};

pub mod json;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Worker-pool size override (`None` = all available cores).
    pub threads: Option<usize>,
    /// Disable the on-disk trace cache.
    pub no_cache: bool,
    /// Sampled-simulation regime (`--sample*` flags), off by default.
    pub sample: Option<SampleConfig>,
}

impl ExpArgs {
    /// Parses `std::env::args()`: an optional scale word, `--csv`,
    /// `--threads=N`, `--no-cache`, and the `--sample*` flags.
    pub fn parse() -> ExpArgs {
        let mut args = ExpArgs {
            scale: Scale::Small,
            csv: false,
            threads: None,
            no_cache: false,
            sample: None,
        };
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "test" => args.scale = Scale::Test,
                "small" => args.scale = Scale::Small,
                "reference" => args.scale = Scale::Reference,
                "--csv" => args.csv = true,
                "--no-cache" => args.no_cache = true,
                "--sample" => {
                    args.sample.get_or_insert_with(SampleConfig::default);
                }
                other => {
                    if let Some(n) = other
                        .strip_prefix("--threads=")
                        .and_then(|n| n.parse::<usize>().ok())
                    {
                        args.threads = Some(n);
                        continue;
                    }
                    let sample_field = other.split_once('=').and_then(|(flag, value)| {
                        let n = value.parse::<u64>().ok()?;
                        match flag {
                            "--sample-interval" | "--sample-warmup" | "--sample-detail" => {
                                Some((flag, n))
                            }
                            _ => None,
                        }
                    });
                    if let Some((flag, n)) = sample_field {
                        let s = args.sample.get_or_insert_with(SampleConfig::default);
                        match flag {
                            "--sample-interval" => s.interval = n,
                            "--sample-warmup" => s.warmup = n,
                            _ => s.detail = n,
                        }
                        continue;
                    }
                    eprintln!(
                        "usage: exp_* [test|small|reference] [--csv] [--threads=N] [--no-cache] [--sample] [--sample-interval=N] [--sample-warmup=N] [--sample-detail=N] (got `{other}`)"
                    );
                    std::process::exit(2);
                }
            }
        }
        if let Some(s) = &args.sample {
            s.validate();
        }
        args
    }

    /// A [`Session`] configured from these arguments (scale, threads,
    /// caching and sampling; set machines per experiment).
    pub fn session(&self) -> Session {
        let mut s = Session::new().scale(self.scale);
        if let Some(n) = self.threads {
            s = s.threads(n);
        }
        if self.no_cache {
            s = s.no_cache();
        }
        if let Some(scfg) = self.sample {
            s = s.sample(scfg);
        }
        s
    }
}

/// The suite traced at the session's scale plus the single-small-core
/// baseline run on every workload — the shared setup of the sweep
/// experiments (E3–E6, E9, E13): each sweep point compares against the
/// baseline of the same workload.
#[derive(Debug, Clone)]
pub struct SuiteBaseline {
    /// The suite, traced in suite order.
    pub traced: Vec<(Workload, Trace)>,
    /// The [`MachineKind::SingleSmall`] run of each workload, same order.
    pub singles: Vec<MachineRun>,
}

impl SuiteBaseline {
    /// Traces the session's suite and runs the single-small baseline on
    /// every workload, both on the session's worker pool.
    pub fn new(session: &Session) -> SuiteBaseline {
        let traced = session.suite_traces();
        let singles = session.par_map(&traced, |(_, t)| {
            run_on(MachineKind::SingleSmall, t.insts())
        });
        SuiteBaseline { traced, singles }
    }

    /// (workload+trace, baseline-run) pairs, ready for `par_map` sweeps.
    pub fn jobs(&self) -> Vec<(&(Workload, Trace), &MachineRun)> {
        self.traced.iter().zip(&self.singles).collect()
    }
}

/// Prints a rendered experiment table with a title banner, matching the
/// format recorded in `EXPERIMENTS.md`.
pub fn print_experiment(id: &str, caption: &str, args: &ExpArgs, table: &Table) {
    println!("==== {id}: {caption} (scale: {:?}) ====", args.scale);
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// Runs the E1/E2-style headline comparison: per-benchmark speedups of
/// `[single, fused, fgstp]` over the single core, plus the geomean row and
/// the Fg-STP-over-fusion summary line. Shared by `exp_e1_small_speedup`
/// and `exp_e2_medium_speedup`.
pub fn run_speedup_experiment(
    id: &str,
    caption: &str,
    args: &ExpArgs,
    kinds: [fgstp_sim::MachineKind; 3],
) {
    let results = args.session().machines(kinds).run_suite();
    let summary = fgstp_sim::speedup_table(&results, kinds);
    print_experiment(id, caption, args, &summary.table);
    for name in &summary.skipped {
        eprintln!("warning: {name} skipped (machine missing from result set)");
    }
    for (name, why) in &summary.failed {
        eprintln!("warning: {name} produced no runs: {why}");
    }
    println!(
        "Fg-STP over Core Fusion (geomean): {:+.1}%",
        (summary.fgstp_over_fused() - 1.0) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_renders_both_formats() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        // Smoke test: must not panic in either mode.
        let mut args = ExpArgs {
            scale: Scale::Test,
            csv: false,
            threads: None,
            no_cache: false,
            sample: None,
        };
        print_experiment("T0", "smoke", &args, &t);
        args.csv = true;
        print_experiment("T0", "smoke", &args, &t);
    }

    #[test]
    fn suite_baseline_pairs_every_workload_with_its_single_run() {
        let args = ExpArgs {
            scale: Scale::Test,
            csv: false,
            threads: Some(2),
            no_cache: true,
            sample: None,
        };
        let base = SuiteBaseline::new(&args.session());
        assert_eq!(base.traced.len(), base.singles.len());
        for ((w, t), single) in base.jobs() {
            assert_eq!(single.kind, MachineKind::SingleSmall, "{}", w.name);
            assert_eq!(single.result.committed, t.len() as u64, "{}", w.name);
        }
    }

    #[test]
    fn sampled_session_produces_sampled_runs() {
        let args = ExpArgs {
            scale: Scale::Test,
            csv: false,
            threads: Some(2),
            no_cache: true,
            sample: Some(SampleConfig {
                interval: 2_000,
                warmup: 300,
                detail: 150,
            }),
        };
        let w = fgstp_workloads::by_name("hmmer_dp", Scale::Test).unwrap();
        let b = args
            .session()
            .machines([MachineKind::SingleSmall])
            .run_workload(&w);
        assert!(b.runs[0].sampled.is_some());
    }

    #[test]
    fn session_reflects_the_arguments() {
        let args = ExpArgs {
            scale: Scale::Test,
            csv: false,
            threads: Some(2),
            no_cache: true,
            sample: None,
        };
        let s = args.session();
        // A no-cache session never touches disk, so stats stay at zero.
        let w = &fgstp_workloads::suite(Scale::Test)[0];
        let _ = s.trace(w);
        assert_eq!(s.cache_stats().hits + s.cache_stats().misses, 0);
    }
}
