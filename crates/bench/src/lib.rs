//! # fgstp-bench
//!
//! Experiment harness for the Fg-STP reproduction. Each `exp_*` binary in
//! `src/bin/` regenerates one table or figure of the paper's evaluation —
//! see the per-experiment index in `DESIGN.md` and the recorded
//! paper-vs-measured comparison in `EXPERIMENTS.md`. The `benches/`
//! directory holds a dependency-free wall-clock benchmark of the
//! simulator's hot paths.
//!
//! Every binary accepts an optional scale argument (`test`, `small`,
//! `reference`; default `small`), `--csv` to emit machine-readable
//! output, `--threads=N` to size the session's worker pool, and
//! `--no-cache` to disable the on-disk trace cache.

use fgstp_sim::{Scale, Session, Table};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Worker-pool size override (`None` = all available cores).
    pub threads: Option<usize>,
    /// Disable the on-disk trace cache.
    pub no_cache: bool,
}

impl ExpArgs {
    /// Parses `std::env::args()`: an optional scale word, `--csv`,
    /// `--threads=N` and `--no-cache`.
    pub fn parse() -> ExpArgs {
        let mut args = ExpArgs {
            scale: Scale::Small,
            csv: false,
            threads: None,
            no_cache: false,
        };
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "test" => args.scale = Scale::Test,
                "small" => args.scale = Scale::Small,
                "reference" => args.scale = Scale::Reference,
                "--csv" => args.csv = true,
                "--no-cache" => args.no_cache = true,
                other => {
                    if let Some(n) = other
                        .strip_prefix("--threads=")
                        .and_then(|n| n.parse::<usize>().ok())
                    {
                        args.threads = Some(n);
                        continue;
                    }
                    eprintln!(
                        "usage: exp_* [test|small|reference] [--csv] [--threads=N] [--no-cache] (got `{other}`)"
                    );
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// A [`Session`] configured from these arguments (scale, threads and
    /// caching; set machines per experiment).
    pub fn session(&self) -> Session {
        let mut s = Session::new().scale(self.scale);
        if let Some(n) = self.threads {
            s = s.threads(n);
        }
        if self.no_cache {
            s = s.no_cache();
        }
        s
    }
}

/// Prints a rendered experiment table with a title banner, matching the
/// format recorded in `EXPERIMENTS.md`.
pub fn print_experiment(id: &str, caption: &str, args: &ExpArgs, table: &Table) {
    println!("==== {id}: {caption} (scale: {:?}) ====", args.scale);
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// Runs the E1/E2-style headline comparison: per-benchmark speedups of
/// `[single, fused, fgstp]` over the single core, plus the geomean row and
/// the Fg-STP-over-fusion summary line. Shared by `exp_e1_small_speedup`
/// and `exp_e2_medium_speedup`.
pub fn run_speedup_experiment(
    id: &str,
    caption: &str,
    args: &ExpArgs,
    kinds: [fgstp_sim::MachineKind; 3],
) {
    let results = args.session().machines(kinds).run_suite();
    let summary = fgstp_sim::speedup_table(&results, kinds);
    print_experiment(id, caption, args, &summary.table);
    for name in &summary.skipped {
        eprintln!("warning: {name} skipped (machine missing from result set)");
    }
    for (name, why) in &summary.failed {
        eprintln!("warning: {name} produced no runs: {why}");
    }
    println!(
        "Fg-STP over Core Fusion (geomean): {:+.1}%",
        (summary.fgstp_over_fused() - 1.0) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_renders_both_formats() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        // Smoke test: must not panic in either mode.
        let mut args = ExpArgs {
            scale: Scale::Test,
            csv: false,
            threads: None,
            no_cache: false,
        };
        print_experiment("T0", "smoke", &args, &t);
        args.csv = true;
        print_experiment("T0", "smoke", &args, &t);
    }

    #[test]
    fn session_reflects_the_arguments() {
        let args = ExpArgs {
            scale: Scale::Test,
            csv: false,
            threads: Some(2),
            no_cache: true,
        };
        let s = args.session();
        // A no-cache session never touches disk, so stats stay at zero.
        let w = &fgstp_workloads::suite(Scale::Test)[0];
        let _ = s.trace(w);
        assert_eq!(s.cache_stats().hits + s.cache_stats().misses, 0);
    }
}
