//! # fgstp-bench
//!
//! Experiment harness for the Fg-STP reproduction. Each `exp_*` binary in
//! `src/bin/` regenerates one table or figure of the paper's evaluation —
//! see the per-experiment index in `DESIGN.md` and the recorded
//! paper-vs-measured comparison in `EXPERIMENTS.md`. The `benches/`
//! directory holds a dependency-free wall-clock benchmark of the
//! simulator's hot paths.
//!
//! Every binary accepts the shared [`fgstp_sim::ExperimentSpec`] flag
//! vocabulary (an optional scale word, `--workloads=a,b` to narrow the
//! suite, `--threads=N` to size the session's worker pool, `--no-cache`
//! to disable the on-disk trace cache, and `--sample` with optional
//! `--sample-interval=N` / `--sample-warmup=N` / `--sample-detail=N` for
//! SMARTS-style sampled simulation) plus `--csv` for machine-readable
//! output. The same spec drives the `fgstpd` batch daemon and the
//! `fgstp` client — see `crates/service`.

use fgstp_isa::Trace;
use fgstp_sim::{run_on, ExperimentSpec, MachineKind, MachineRun, Scale, Session, Table, Workload};

pub use fgstp_telemetry::json;

/// Command-line options shared by all experiment binaries: a full
/// [`ExperimentSpec`] (every binary understands the shared spec
/// vocabulary — scale words, `--workloads=`, `--threads=N`, `--no-cache`,
/// the `--sample*` flags, …) plus the harness-local `--csv` toggle.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// The experiment specification built from the shared flags.
    pub spec: ExperimentSpec,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl ExpArgs {
    /// Parses `std::env::args()` through the shared
    /// [`ExperimentSpec::apply_arg`] vocabulary plus `--csv`, exiting
    /// with the structured error and a usage line on bad input.
    pub fn parse() -> ExpArgs {
        Self::try_from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("{e}");
            eprintln!("usage: exp_* [--csv] {}", fgstp_sim::spec::SPEC_USAGE);
            std::process::exit(2);
        })
    }

    /// Builds the options from an explicit argument stream; errors carry
    /// the offending flag and a [`fgstp_sim::SpecErrorKind`].
    pub fn try_from_args(
        args: impl IntoIterator<Item = String>,
    ) -> Result<ExpArgs, fgstp_sim::SpecError> {
        let mut spec = ExperimentSpec::default();
        let mut csv = false;
        for a in args {
            if a == "--csv" {
                csv = true;
            } else if !spec.apply_arg(&a)? {
                return Err(fgstp_sim::SpecError::new(
                    fgstp_sim::SpecErrorKind::UnknownFlag,
                    format!("unknown flag `{a}`"),
                ));
            }
        }
        spec.validate()?;
        Ok(ExpArgs { spec, csv })
    }

    /// Workload scale (shorthand for `self.spec.scale`).
    pub fn scale(&self) -> Scale {
        self.spec.scale
    }

    /// A [`Session`] configured from the spec (scale, workload filter,
    /// threads, caching and sampling; experiments override machines per
    /// figure).
    pub fn session(&self) -> Session {
        self.spec.session()
    }
}

/// The suite traced at the session's scale plus the single-small-core
/// baseline run on every workload — the shared setup of the sweep
/// experiments (E3–E6, E9, E13): each sweep point compares against the
/// baseline of the same workload.
#[derive(Debug, Clone)]
pub struct SuiteBaseline {
    /// The suite, traced in suite order.
    pub traced: Vec<(Workload, Trace)>,
    /// The [`MachineKind::SingleSmall`] run of each workload, same order.
    pub singles: Vec<MachineRun>,
}

impl SuiteBaseline {
    /// Traces the session's suite and runs the single-small baseline on
    /// every workload, both on the session's worker pool.
    pub fn new(session: &Session) -> SuiteBaseline {
        let traced = session.suite_traces();
        let singles = session.par_map(&traced, |(_, t)| {
            run_on(MachineKind::SingleSmall, t.insts())
        });
        SuiteBaseline { traced, singles }
    }

    /// (workload+trace, baseline-run) pairs, ready for `par_map` sweeps.
    pub fn jobs(&self) -> Vec<(&(Workload, Trace), &MachineRun)> {
        self.traced.iter().zip(&self.singles).collect()
    }
}

/// Prints a rendered experiment table with a title banner, matching the
/// format recorded in `EXPERIMENTS.md`.
pub fn print_experiment(id: &str, caption: &str, args: &ExpArgs, table: &Table) {
    println!("==== {id}: {caption} (scale: {:?}) ====", args.scale());
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// Runs the E1/E2-style headline comparison: per-benchmark speedups of
/// `[single, fused, fgstp]` over the single core, plus the geomean row and
/// the Fg-STP-over-fusion summary line. Shared by `exp_e1_small_speedup`
/// and `exp_e2_medium_speedup`.
pub fn run_speedup_experiment(
    id: &str,
    caption: &str,
    args: &ExpArgs,
    kinds: [fgstp_sim::MachineKind; 3],
) {
    let results = args.session().machines(kinds).run_suite();
    let summary = fgstp_sim::speedup_table(&results, kinds);
    print_experiment(id, caption, args, &summary.table);
    for name in &summary.skipped {
        eprintln!("warning: {name} skipped (machine missing from result set)");
    }
    for (name, why) in &summary.failed {
        eprintln!("warning: {name} produced no runs: {why}");
    }
    println!(
        "Fg-STP over Core Fusion (geomean): {:+.1}%",
        (summary.fgstp_over_fused() - 1.0) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(flags: &[&str]) -> ExpArgs {
        ExpArgs::try_from_args(flags.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn print_experiment_renders_both_formats() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        // Smoke test: must not panic in either mode.
        let mut args = args_of(&["test"]);
        print_experiment("T0", "smoke", &args, &t);
        args.csv = true;
        print_experiment("T0", "smoke", &args, &t);
    }

    #[test]
    fn csv_flag_is_separated_from_the_spec() {
        let args = args_of(&["test", "--csv", "--threads=2"]);
        assert!(args.csv);
        assert_eq!(args.scale(), Scale::Test);
        assert_eq!(args.spec.threads, Some(2));
        // Spec errors surface as structured values, not process exits.
        let e = ExpArgs::try_from_args(["--threads=lots".to_owned()]).unwrap_err();
        assert_eq!(e.kind, fgstp_sim::SpecErrorKind::Value);
        let e = ExpArgs::try_from_args(["--bogus".to_owned()]).unwrap_err();
        assert_eq!(e.kind, fgstp_sim::SpecErrorKind::UnknownFlag);
    }

    #[test]
    fn suite_baseline_pairs_every_workload_with_its_single_run() {
        let args = args_of(&["test", "--threads=2", "--no-cache"]);
        let base = SuiteBaseline::new(&args.session());
        assert_eq!(base.traced.len(), base.singles.len());
        for ((w, t), single) in base.jobs() {
            assert_eq!(single.kind, MachineKind::SingleSmall, "{}", w.name);
            assert_eq!(single.result.committed, t.len() as u64, "{}", w.name);
        }
    }

    #[test]
    fn suite_baseline_respects_the_workload_filter() {
        let args = args_of(&["test", "--no-cache", "--workloads=perl_hash,hmmer_dp"]);
        let base = SuiteBaseline::new(&args.session());
        let names: Vec<&str> = base.traced.iter().map(|(w, _)| w.name).collect();
        assert_eq!(names, ["perl_hash", "hmmer_dp"]);
    }

    #[test]
    fn sampled_session_produces_sampled_runs() {
        let args = args_of(&[
            "test",
            "--threads=2",
            "--no-cache",
            "--sample-interval=2000",
            "--sample-warmup=300",
            "--sample-detail=150",
        ]);
        let w = fgstp_workloads::by_name("hmmer_dp", Scale::Test).unwrap();
        let b = args
            .session()
            .machines([MachineKind::SingleSmall])
            .run_workload(&w);
        assert!(b.runs[0].sampled.is_some());
    }

    #[test]
    fn session_reflects_the_arguments() {
        let args = args_of(&["test", "--threads=2", "--no-cache"]);
        let s = args.session();
        // A no-cache session never touches disk, so stats stay at zero.
        let w = &fgstp_workloads::suite(Scale::Test)[0];
        let _ = s.trace(w);
        assert_eq!(s.cache_stats().hits + s.cache_stats().misses, 0);
    }
}
