//! # fgstp-bench
//!
//! Experiment harness for the Fg-STP reproduction. Each `exp_*` binary in
//! `src/bin/` regenerates one table or figure of the paper's evaluation —
//! see the per-experiment index in `DESIGN.md` and the recorded
//! paper-vs-measured comparison in `EXPERIMENTS.md`. The `benches/`
//! directory holds Criterion micro-benchmarks of the simulator's hot
//! paths.
//!
//! Every binary accepts an optional scale argument (`test`, `small`,
//! `reference`; default `small`) controlling the dynamic instruction
//! counts, and `--csv` to emit machine-readable output.

use fgstp_sim::{Scale, Table};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl ExpArgs {
    /// Parses `std::env::args()`: an optional scale word and `--csv`.
    pub fn parse() -> ExpArgs {
        let mut args = ExpArgs {
            scale: Scale::Small,
            csv: false,
        };
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "test" => args.scale = Scale::Test,
                "small" => args.scale = Scale::Small,
                "reference" => args.scale = Scale::Reference,
                "--csv" => args.csv = true,
                other => {
                    eprintln!("usage: exp_* [test|small|reference] [--csv] (got `{other}`)");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// Prints a rendered experiment table with a title banner, matching the
/// format recorded in `EXPERIMENTS.md`.
pub fn print_experiment(id: &str, caption: &str, args: &ExpArgs, table: &Table) {
    println!("==== {id}: {caption} (scale: {:?}) ====", args.scale);
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// Runs the E1/E2-style headline comparison: per-benchmark speedups of
/// `[single, fused, fgstp]` over the single core, plus the geomean row and
/// the Fg-STP-over-fusion summary line. Shared by `exp_e1_small_speedup`
/// and `exp_e2_medium_speedup`.
pub fn run_speedup_experiment(
    id: &str,
    caption: &str,
    args: &ExpArgs,
    kinds: [fgstp_sim::MachineKind; 3],
) {
    use fgstp_sim::{geomean, run_suite};
    let [single, fused_kind, fgstp_kind] = kinds;
    let results = run_suite(args.scale, &kinds);
    let mut table = Table::new(["benchmark", "insts", "fused", "fgstp", "fgstp/fused"]);
    let mut fused = Vec::new();
    let mut fgstp = Vec::new();
    for b in &results {
        let s_fused = b.speedup(fused_kind, single);
        let s_fgstp = b.speedup(fgstp_kind, single);
        fused.push(s_fused);
        fgstp.push(s_fgstp);
        table.row([
            b.name.to_owned(),
            b.committed.to_string(),
            format!("{s_fused:.3}"),
            format!("{s_fgstp:.3}"),
            format!("{:.3}", s_fgstp / s_fused),
        ]);
    }
    let (gf, gs) = (geomean(&fused), geomean(&fgstp));
    table.row([
        "GEOMEAN".to_owned(),
        String::new(),
        format!("{gf:.3}"),
        format!("{gs:.3}"),
        format!("{:.3}", gs / gf),
    ]);
    print_experiment(id, caption, args, &table);
    println!(
        "Fg-STP over Core Fusion (geomean): {:+.1}%",
        (gs / gf - 1.0) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_experiment_renders_both_formats() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        // Smoke test: must not panic in either mode.
        print_experiment(
            "T0",
            "smoke",
            &ExpArgs {
                scale: Scale::Test,
                csv: false,
            },
            &t,
        );
        print_experiment(
            "T0",
            "smoke",
            &ExpArgs {
                scale: Scale::Test,
                csv: true,
            },
            &t,
        );
    }
}
