//! Criterion micro-benchmarks of the simulator's hot paths.
//!
//! These measure *simulator* throughput (host-side performance), not the
//! modeled machines — the modeled results live in the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use fgstp::{partition_stream, run_fgstp, FgstpConfig, PartitionConfig};
use fgstp_bpred::{DirectionPredictor, Tournament};
use fgstp_isa::Trace;
use fgstp_mem::{Hierarchy, HierarchyConfig};
use fgstp_ooo::{build_exec_stream, run_single, CoreConfig};
use fgstp_sim::{runner::trace_workload, Scale};
use fgstp_workloads::by_name;

fn bench_trace(c: &mut Criterion) {
    let w = by_name("hmmer_dp", Scale::Test).unwrap();
    let mut g = c.benchmark_group("functional");
    g.bench_function("trace_hmmer", |b| {
        b.iter(|| fgstp_isa::trace_program(black_box(&w.program), 10_000_000).unwrap())
    });
    g.finish();
}

fn bench_stream_and_partition(c: &mut Criterion) {
    let w = by_name("gcc_expr", Scale::Test).unwrap();
    let t: Trace = trace_workload(&w, Scale::Test);
    let mut g = c.benchmark_group("partition");
    g.throughput(Throughput::Elements(t.len() as u64));
    g.bench_function("build_exec_stream", |b| {
        b.iter(|| build_exec_stream(black_box(t.insts())))
    });
    let stream = build_exec_stream(t.insts());
    g.bench_function("slice_lookahead", |b| {
        b.iter(|| partition_stream(black_box(&stream), &PartitionConfig::default()))
    });
    g.finish();
}

fn bench_machines(c: &mut Criterion) {
    let w = by_name("sjeng_eval", Scale::Test).unwrap();
    let t = trace_workload(&w, Scale::Test);
    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(t.len() as u64));
    g.sample_size(10);
    g.bench_function("single_small", |b| {
        b.iter(|| {
            run_single(
                black_box(t.insts()),
                &CoreConfig::small(),
                &HierarchyConfig::small(1),
            )
        })
    });
    g.bench_function("fused_small", |b| {
        b.iter(|| {
            run_single(
                black_box(t.insts()),
                &CoreConfig::fused(&CoreConfig::small()),
                &HierarchyConfig::small(1),
            )
        })
    });
    g.bench_function("fgstp_small", |b| {
        b.iter(|| {
            run_fgstp(
                black_box(t.insts()),
                &FgstpConfig::small(),
                &HierarchyConfig::small(2),
            )
        })
    });
    g.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.bench_function("cache_hit_loop", |b| {
        b.iter_batched(
            || Hierarchy::new(&HierarchyConfig::small(1)),
            |mut h| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc += h.access_data(0, (i % 64) * 8, false, i);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("tournament_predict", |b| {
        b.iter_batched(
            || Tournament::new(12),
            |mut p| {
                let mut correct = 0u64;
                for i in 0..1000u64 {
                    let taken = i % 3 != 0;
                    correct += u64::from(p.predict(i % 37) == taken);
                    p.update(i % 37, taken);
                }
                correct
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trace,
    bench_stream_and_partition,
    bench_machines,
    bench_substrates
);
criterion_main!(benches);
