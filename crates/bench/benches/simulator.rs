//! Wall-clock micro-benchmarks of the simulator's hot paths.
//!
//! These measure *simulator* throughput (host-side performance), not the
//! modeled machines — the modeled results live in the `exp_*` binaries.
//!
//! The harness is dependency-free (`harness = false`): each benchmark is
//! warmed up, then timed over enough iterations to fill a minimum
//! measurement window, and the per-iteration mean, min and throughput are
//! printed. Run with `cargo bench`; pass a substring to filter benchmarks
//! (`cargo bench -- partition`).

use std::hint::black_box;
use std::time::{Duration, Instant};

use fgstp::{partition_stream, run_fgstp, run_fgstp_with_sink, FgstpConfig, PartitionConfig};
use fgstp_bpred::{DirectionPredictor, Tournament};
use fgstp_isa::Trace;
use fgstp_mem::{Hierarchy, HierarchyConfig};
use fgstp_ooo::{build_exec_stream, run_single, run_single_with_sink, CoreConfig};
use fgstp_sim::{runner::trace_workload, Scale};
use fgstp_telemetry::CpiSink;
use fgstp_workloads::by_name;

/// Minimum total measured time per benchmark.
const WINDOW: Duration = Duration::from_millis(300);
const WARMUP_ITERS: u32 = 3;

struct Harness {
    filter: Option<String>,
    /// Completed rows: name, mean, min, throughput. Buffered so the final
    /// table's column widths come from the data instead of fixed pads
    /// (long benchmark names used to shear the columns).
    rows: Vec<[String; 4]>,
}

impl Harness {
    fn from_args() -> Harness {
        // `cargo bench -- <filter>`; ignore harness flags like --bench.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .map(|s| s.to_lowercase());
        Harness {
            filter,
            rows: Vec::new(),
        }
    }

    /// Times `f`, recording per-iteration stats. `elements` is the work
    /// per iteration for the throughput column (0 = not reported).
    fn bench<T>(&mut self, name: &str, elements: u64, mut f: impl FnMut() -> T) {
        if let Some(filt) = &self.filter {
            if !name.to_lowercase().contains(filt) {
                return;
            }
        }
        eprintln!("running {name} ...");
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let mut iters = 0u32;
        let mut min = Duration::MAX;
        let start = Instant::now();
        while start.elapsed() < WINDOW {
            let t0 = Instant::now();
            black_box(f());
            min = min.min(t0.elapsed());
            iters += 1;
        }
        let mean = start.elapsed() / iters;
        let throughput = if elements > 0 {
            let per_sec = elements as f64 / mean.as_secs_f64();
            format!("{:.1} Melem/s", per_sec / 1e6)
        } else {
            String::from("-")
        };
        self.rows
            .push([name.to_owned(), fmt(mean), fmt(min), throughput]);
    }

    /// Prints the result table, sizing every column to its widest cell.
    fn finish(self) {
        let header = ["benchmark", "mean", "min", "throughput"];
        let widths: Vec<usize> = (0..header.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain([header[c].len()])
                    .max()
                    .unwrap()
            })
            .collect();
        let print_row = |cells: [&str; 4]| {
            // Name column left-aligned, measurements right-aligned.
            let mut line = format!("{:<w$}", cells[0], w = widths[0]);
            for c in 1..cells.len() {
                line.push_str(&format!(" {:>w$}", cells[c], w = widths[c]));
            }
            println!("{line}");
        };
        print_row(header);
        for r in &self.rows {
            print_row([&r[0], &r[1], &r[2], &r[3]]);
        }
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} us", ns as f64 / 1e3),
        _ => format!("{:.2} ms", ns as f64 / 1e6),
    }
}

fn main() {
    let mut h = Harness::from_args();

    // Functional tracing throughput.
    let w = by_name("hmmer_dp", Scale::Test).unwrap();
    let hmmer_len = trace_workload(&w, Scale::Test).len() as u64;
    h.bench("functional/trace_hmmer", hmmer_len, || {
        fgstp_isa::trace_program(black_box(w.program()), 10_000_000).unwrap()
    });

    // Stream building and partitioning.
    let w = by_name("gcc_expr", Scale::Test).unwrap();
    let t: Trace = trace_workload(&w, Scale::Test);
    h.bench("partition/build_exec_stream", t.len() as u64, || {
        build_exec_stream(black_box(t.insts()))
    });
    let stream = build_exec_stream(t.insts());
    h.bench("partition/slice_lookahead", t.len() as u64, || {
        partition_stream(black_box(&stream), &PartitionConfig::default(), 2)
    });

    // Timing models.
    let w = by_name("sjeng_eval", Scale::Test).unwrap();
    let t = trace_workload(&w, Scale::Test);
    h.bench("timing/single_small", t.len() as u64, || {
        run_single(
            black_box(t.insts()),
            &CoreConfig::small(),
            &HierarchyConfig::small(1),
        )
    });
    h.bench("timing/fused_small", t.len() as u64, || {
        run_single(
            black_box(t.insts()),
            &CoreConfig::fused(&CoreConfig::small()),
            &HierarchyConfig::small(1),
        )
    });
    h.bench("timing/fgstp_small", t.len() as u64, || {
        run_fgstp(
            black_box(t.insts()),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
        )
    });

    // Telemetry-on variants: compare against the plain timing benches to
    // see the cost of cycle accounting (the disabled-sink builds above
    // must not regress — the sink is compiled out via a const generic).
    h.bench("timing/single_small_cpi", t.len() as u64, || {
        let mut sink = CpiSink::new(1);
        run_single_with_sink(
            black_box(t.insts()),
            &CoreConfig::small(),
            &HierarchyConfig::small(1),
            &mut sink,
        )
    });
    h.bench("timing/fgstp_small_cpi", t.len() as u64, || {
        let mut sink = CpiSink::new(2);
        run_fgstp_with_sink(
            black_box(t.insts()),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &mut sink,
        )
    });

    // Substrate micro-benchmarks.
    h.bench("substrates/cache_hit_loop", 1000, || {
        let mut hier = Hierarchy::new(&HierarchyConfig::small(1));
        let mut acc = 0u64;
        for i in 0..1000u64 {
            acc += hier.access_data(0, (i % 64) * 8, false, i);
        }
        acc
    });
    h.bench("substrates/tournament_predict", 1000, || {
        let mut p = Tournament::new(12);
        let mut correct = 0u64;
        for i in 0..1000u64 {
            let taken = i % 3 != 0;
            correct += u64::from(p.predict(i % 37) == taken);
            p.update(i % 37, taken);
        }
        correct
    });

    h.finish();
}
