//! Direction predictors: bimodal, gshare, and a tournament combiner.

use std::fmt;

use crate::codec::{put_bytes, put_u64, take_bytes_exact, take_u64};

/// A conditional-branch direction predictor.
///
/// `predict` must not change predictor state; `update` trains with the
/// resolved outcome. The timing models call `predict` at fetch and `update`
/// at commit, in program order.
///
/// Predictors are snapshottable for checkpointed sampling: `save_state`
/// serializes the trained tables, `load_state` restores them into a
/// predictor *of the same shape* (same [`PredictorKind`], same index
/// bits). A shape mismatch is reported as an `Err`, never a panic, so a
/// stale snapshot degrades to a re-warm instead of taking the run down.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Trains with the resolved direction of the branch at `pc`.
    fn update(&mut self, pc: u64, taken: bool);

    /// Appends the trained state (tables and history) to `out`.
    fn save_state(&self, out: &mut Vec<u8>);

    /// Restores state written by [`save_state`](Self::save_state) on a
    /// same-shape predictor, consuming it from the front of `bytes`. On
    /// error the predictor's state is unspecified — discard it.
    fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String>;
}

/// Saturating 2-bit counter helpers.
#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_train(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// Classic bimodal predictor: a PC-indexed table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// weakly taken (the common initialization for loop-heavy codes).
    pub fn new(index_bits: u32) -> Bimodal {
        Bimodal {
            counters: vec![2; 1 << index_bits],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.counters.len() - 1)
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        counter_taken(self.counters[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = counter_train(self.counters[i], taken);
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.counters);
    }

    fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        let n = self.counters.len();
        self.counters.copy_from_slice(take_bytes_exact(bytes, n)?);
        Ok(())
    }
}

/// Gshare: global history XOR PC indexing into 2-bit counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` counters and `index_bits`
    /// bits of global history.
    pub fn new(index_bits: u32) -> Gshare {
        Gshare {
            counters: vec![2; 1 << index_bits],
            history: 0,
            history_mask: (1u64 << index_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc ^ self.history) & self.history_mask) as usize) & (self.counters.len() - 1)
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        counter_taken(self.counters[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = counter_train(self.counters[i], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.counters);
        put_u64(out, self.history);
    }

    fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        let n = self.counters.len();
        self.counters.copy_from_slice(take_bytes_exact(bytes, n)?);
        self.history = take_u64(bytes)? & self.history_mask;
        Ok(())
    }
}

/// Tournament predictor: bimodal and gshare components with a PC-indexed
/// chooser trained toward whichever component was right.
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<u8>, // 0..=3; >=2 selects gshare
}

impl Tournament {
    /// Creates a tournament predictor; each component gets `index_bits`.
    pub fn new(index_bits: u32) -> Tournament {
        Tournament {
            bimodal: Bimodal::new(index_bits),
            gshare: Gshare::new(index_bits),
            chooser: vec![2; 1 << index_bits],
        }
    }

    fn choose_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.chooser.len() - 1)
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&self, pc: u64) -> bool {
        if counter_taken(self.chooser[self.choose_index(pc)]) {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let b = self.bimodal.predict(pc);
        let g = self.gshare.predict(pc);
        if b != g {
            let i = self.choose_index(pc);
            self.chooser[i] = counter_train(self.chooser[i], g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.bimodal.save_state(out);
        self.gshare.save_state(out);
        put_bytes(out, &self.chooser);
    }

    fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        self.bimodal.load_state(bytes)?;
        self.gshare.load_state(bytes)?;
        let n = self.chooser.len();
        self.chooser.copy_from_slice(take_bytes_exact(bytes, n)?);
        Ok(())
    }
}

/// Selects a direction predictor by name; used by core configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// [`Bimodal`] with the given index bits.
    Bimodal(u32),
    /// [`Gshare`] with the given index bits.
    Gshare(u32),
    /// [`Tournament`] with the given per-component index bits.
    Tournament(u32),
}

impl PredictorKind {
    /// Instantiates the predictor.
    pub fn build(self) -> Box<dyn DirectionPredictor> {
        match self {
            PredictorKind::Bimodal(bits) => Box::new(Bimodal::new(bits)),
            PredictorKind::Gshare(bits) => Box::new(Gshare::new(bits)),
            PredictorKind::Tournament(bits) => Box::new(Tournament::new(bits)),
        }
    }
}

impl fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorKind::Bimodal(b) => write!(f, "bimodal({b}b)"),
            PredictorKind::Gshare(b) => write!(f, "gshare({b}b)"),
            PredictorKind::Tournament(b) => write!(f, "tournament({b}b)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(p: &mut dyn DirectionPredictor, stream: &[(u64, bool)]) -> f64 {
        let mut correct = 0;
        for &(pc, taken) in stream {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        correct as f64 / stream.len() as f64
    }

    /// A loop branch taken `n-1` of every `n` times.
    fn loop_stream(pc: u64, n: usize, iters: usize) -> Vec<(u64, bool)> {
        let mut v = Vec::new();
        for _ in 0..iters {
            for i in 0..n {
                v.push((pc, i != n - 1));
            }
        }
        v
    }

    /// A branch alternating T/N — predictable only with history.
    fn alternating_stream(pc: u64, len: usize) -> Vec<(u64, bool)> {
        (0..len).map(|i| (pc, i % 2 == 0)).collect()
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(10);
        let acc = accuracy(&mut p, &loop_stream(0x10, 100, 20));
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(10);
        let acc = accuracy(&mut p, &alternating_stream(0x10, 1000));
        assert!(acc < 0.7, "bimodal should fail on alternation, got {acc}");
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = Gshare::new(10);
        let acc = accuracy(&mut p, &alternating_stream(0x10, 1000));
        assert!(acc > 0.95, "gshare should learn alternation, got {acc}");
    }

    #[test]
    fn tournament_matches_best_component() {
        // Mixed stream: biased branch + alternating branch.
        let mut stream = Vec::new();
        for i in 0..2000 {
            stream.push((0x10, true)); // always taken
            stream.push((0x20, i % 2 == 0)); // alternating
        }
        let mut t = Tournament::new(12);
        let acc = accuracy(&mut t, &stream);
        assert!(acc > 0.93, "tournament accuracy {acc}");
    }

    #[test]
    fn predict_is_pure() {
        let p = Gshare::new(8);
        let a = p.predict(0x44);
        let b = p.predict(0x44);
        assert_eq!(a, b);
    }

    #[test]
    fn kind_builds_each_variant() {
        for kind in [
            PredictorKind::Bimodal(8),
            PredictorKind::Gshare(8),
            PredictorKind::Tournament(8),
        ] {
            let mut p = kind.build();
            p.update(0x8, true);
            let _ = p.predict(0x8);
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn state_round_trips_through_bytes_for_every_kind() {
        for kind in [
            PredictorKind::Bimodal(8),
            PredictorKind::Gshare(8),
            PredictorKind::Tournament(8),
        ] {
            let mut trained = kind.build();
            for (i, &(pc, t)) in loop_stream(0x30, 7, 40).iter().enumerate() {
                trained.update(pc, t);
                trained.update(0x90 + i as u64, i % 3 == 0);
            }
            let mut bytes = Vec::new();
            trained.save_state(&mut bytes);
            let mut restored = kind.build();
            let mut r = bytes.as_slice();
            restored.load_state(&mut r).unwrap();
            assert!(r.is_empty(), "load consumes exactly what save wrote");
            // Behavioural identity: same predictions, same evolution.
            for &(pc, t) in &alternating_stream(0x30, 64) {
                assert_eq!(restored.predict(pc), trained.predict(pc), "{kind}");
                restored.update(pc, t);
                trained.update(pc, t);
            }
        }
    }

    #[test]
    fn state_load_rejects_wrong_shape() {
        let mut bytes = Vec::new();
        Bimodal::new(8).save_state(&mut bytes);
        let mut small = Bimodal::new(6);
        assert!(small.load_state(&mut bytes.as_slice()).is_err());
        let mut truncated = &bytes[..bytes.len() - 1];
        assert!(Bimodal::new(8).load_state(&mut truncated).is_err());
    }

    #[test]
    fn distinct_pcs_do_not_interfere_in_bimodal() {
        let mut p = Bimodal::new(12);
        for _ in 0..10 {
            p.update(0x100, true);
            p.update(0x200, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x200));
    }
}
