//! Branch target buffer.

use crate::codec::{put_u64, take_u64};

/// A direct-mapped branch target buffer.
///
/// Maps a branch PC to its most recent taken target. The frontend uses a
/// BTB miss on a predicted-taken branch as a one-cycle fetch bubble (the
/// target is not known until decode).
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `2^index_bits` entries.
    pub fn new(index_bits: u32) -> Btb {
        Btb {
            entries: vec![None; 1 << index_bits],
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`, recording
    /// hit/miss statistics.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or refreshes the target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((pc, target));
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Appends the full BTB state (entries and statistics) to `out`.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.entries.len() as u64);
        for e in &self.entries {
            match e {
                Some((pc, target)) => {
                    out.push(1);
                    put_u64(out, *pc);
                    put_u64(out, *target);
                }
                None => out.push(0),
            }
        }
        put_u64(out, self.hits);
        put_u64(out, self.misses);
    }

    /// Restores state written by [`Btb::save_state`] on a same-size BTB,
    /// consuming it from the front of `bytes`.
    pub fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        let n = take_u64(bytes)? as usize;
        if n != self.entries.len() {
            return Err(format!(
                "btb shape mismatch: {n} entries, expected {}",
                self.entries.len()
            ));
        }
        for e in &mut self.entries {
            let Some((&flag, rest)) = bytes.split_first() else {
                return Err("btb snapshot truncated".to_owned());
            };
            *bytes = rest;
            *e = match flag {
                0 => None,
                1 => Some((take_u64(bytes)?, take_u64(bytes)?)),
                other => return Err(format!("bad btb entry flag {other}")),
            };
        }
        self.hits = take_u64(bytes)?;
        self.misses = take_u64(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut btb = Btb::new(6);
        assert_eq!(btb.lookup(0x80), None);
        btb.update(0x80, 0x10);
        assert_eq!(btb.lookup(0x80), Some(0x10));
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn aliasing_pcs_evict() {
        let mut btb = Btb::new(2); // 4 entries: pcs 0x1 and 0x5 alias
        btb.update(0x1, 100);
        btb.update(0x5, 200);
        assert_eq!(btb.lookup(0x1), None, "evicted by aliasing pc");
        assert_eq!(btb.lookup(0x5), Some(200));
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::new(4);
        btb.update(0x3, 10);
        btb.update(0x3, 20);
        assert_eq!(btb.lookup(0x3), Some(20));
    }

    #[test]
    fn state_round_trips_and_rejects_mismatch() {
        let mut btb = Btb::new(4);
        btb.update(0x3, 10);
        btb.update(0x7, 30);
        btb.lookup(0x3);
        btb.lookup(0x9);
        let mut bytes = Vec::new();
        btb.save_state(&mut bytes);
        let mut restored = Btb::new(4);
        let mut r = bytes.as_slice();
        restored.load_state(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.stats(), btb.stats());
        assert_eq!(restored.lookup(0x3), Some(10));
        assert_eq!(restored.lookup(0x7), Some(30));
        assert!(Btb::new(2).load_state(&mut bytes.as_slice()).is_err());
        let mut truncated = &bytes[..bytes.len() - 3];
        assert!(Btb::new(4).load_state(&mut truncated).is_err());
    }
}
