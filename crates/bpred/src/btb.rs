//! Branch target buffer.

/// A direct-mapped branch target buffer.
///
/// Maps a branch PC to its most recent taken target. The frontend uses a
/// BTB miss on a predicted-taken branch as a one-cycle fetch bubble (the
/// target is not known until decode).
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `2^index_bits` entries.
    pub fn new(index_bits: u32) -> Btb {
        Btb {
            entries: vec![None; 1 << index_bits],
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`, recording
    /// hit/miss statistics.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or refreshes the target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((pc, target));
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut btb = Btb::new(6);
        assert_eq!(btb.lookup(0x80), None);
        btb.update(0x80, 0x10);
        assert_eq!(btb.lookup(0x80), Some(0x10));
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn aliasing_pcs_evict() {
        let mut btb = Btb::new(2); // 4 entries: pcs 0x1 and 0x5 alias
        btb.update(0x1, 100);
        btb.update(0x5, 200);
        assert_eq!(btb.lookup(0x1), None, "evicted by aliasing pc");
        assert_eq!(btb.lookup(0x5), Some(200));
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::new(4);
        btb.update(0x3, 10);
        btb.update(0x3, 20);
        assert_eq!(btb.lookup(0x3), Some(20));
    }
}
