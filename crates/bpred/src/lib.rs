//! # fgstp-bpred
//!
//! Branch-prediction substrate for the Fg-STP reproduction: direction
//! predictors (bimodal, gshare and a tournament combiner), a branch target
//! buffer and a return-address stack — the predictor family used by the
//! paper-era out-of-order cores.
//!
//! Direction predictors implement the [`DirectionPredictor`] trait so core
//! configurations can select one by name ([`PredictorKind`]).
//!
//! ```
//! use fgstp_bpred::{DirectionPredictor, Gshare};
//!
//! let mut p = Gshare::new(12);
//! // A strongly biased branch becomes predictable after training.
//! for _ in 0..8 { p.update(0x40, true); }
//! assert!(p.predict(0x40));
//! ```

pub mod btb;
mod codec;
pub mod direction;
pub mod ras;

pub use btb::Btb;
pub use direction::{Bimodal, DirectionPredictor, Gshare, PredictorKind, Tournament};
pub use ras::ReturnStack;
