//! Minimal little-endian byte codec helpers shared by the predictor
//! state snapshots (see [`crate::DirectionPredictor::save_state`]).
//!
//! The format is deliberately dumb: fixed-width `u64` scalars and
//! length-prefixed byte runs, no framing. Versioning, checksumming and
//! corruption fallback live in the snapshot *container*
//! (`fgstp-tracefile`); these helpers only have to be exact and to fail
//! loudly (with an `Err`, never a panic) on any length mismatch so a
//! corrupt-but-checksum-valid payload can still be rejected.

/// Appends `v` as 8 little-endian bytes.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads 8 little-endian bytes off the front of `r`.
pub(crate) fn take_u64(r: &mut &[u8]) -> Result<u64, String> {
    let Some((head, rest)) = r.split_first_chunk::<8>() else {
        return Err("snapshot payload truncated (u64)".to_owned());
    };
    *r = rest;
    Ok(u64::from_le_bytes(*head))
}

/// Appends a length-prefixed byte run.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte run of exactly `expect` bytes.
pub(crate) fn take_bytes_exact<'a>(r: &mut &'a [u8], expect: usize) -> Result<&'a [u8], String> {
    let len = take_u64(r)? as usize;
    if len != expect {
        return Err(format!(
            "snapshot shape mismatch: {len} bytes, expected {expect}"
        ));
    }
    if r.len() < len {
        return Err("snapshot payload truncated (bytes)".to_owned());
    }
    let (head, rest) = r.split_at(len);
    *r = rest;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_rejects_truncation() {
        let mut out = Vec::new();
        put_u64(&mut out, 0xdead_beef_0badu64);
        put_bytes(&mut out, &[1, 2, 3]);
        let mut r = out.as_slice();
        assert_eq!(take_u64(&mut r).unwrap(), 0xdead_beef_0badu64);
        assert_eq!(take_bytes_exact(&mut r, 3).unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());

        let mut short = &out[..4];
        assert!(take_u64(&mut short).is_err());
        let mut wrong = out.as_slice();
        take_u64(&mut wrong).unwrap();
        assert!(take_bytes_exact(&mut wrong, 4).is_err(), "length mismatch");
    }
}
