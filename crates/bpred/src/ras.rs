//! Return-address stack.

/// A fixed-depth return-address stack with wrap-around overwrite, as in
/// real frontends (an overflowing push silently drops the oldest entry).
#[derive(Debug, Clone)]
pub struct ReturnStack {
    entries: Vec<u64>,
    top: usize,
    len: usize,
}

impl ReturnStack {
    /// Creates a stack holding up to `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> ReturnStack {
        assert!(depth > 0, "return stack needs at least one entry");
        ReturnStack {
            entries: vec![0; depth],
            top: 0,
            len: 0,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, return_pc: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_pc;
        self.len = (self.len + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (on a return); `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.len -= 1;
        Some(v)
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack has no valid entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnStack::new(8);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // drops 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_panics() {
        ReturnStack::new(0);
    }
}
