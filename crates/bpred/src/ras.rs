//! Return-address stack.

use crate::codec::{put_u64, take_u64};

/// A fixed-depth return-address stack with wrap-around overwrite, as in
/// real frontends (an overflowing push silently drops the oldest entry).
#[derive(Debug, Clone)]
pub struct ReturnStack {
    entries: Vec<u64>,
    top: usize,
    len: usize,
}

impl ReturnStack {
    /// Creates a stack holding up to `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> ReturnStack {
        assert!(depth > 0, "return stack needs at least one entry");
        ReturnStack {
            entries: vec![0; depth],
            top: 0,
            len: 0,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, return_pc: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_pc;
        self.len = (self.len + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (on a return); `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.len -= 1;
        Some(v)
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack has no valid entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the full stack state to `out`.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.entries.len() as u64);
        for &e in &self.entries {
            put_u64(out, e);
        }
        put_u64(out, self.top as u64);
        put_u64(out, self.len as u64);
    }

    /// Restores state written by [`ReturnStack::save_state`] on a
    /// same-depth stack, consuming it from the front of `bytes`.
    pub fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        let depth = take_u64(bytes)? as usize;
        if depth != self.entries.len() {
            return Err(format!(
                "ras shape mismatch: depth {depth}, expected {}",
                self.entries.len()
            ));
        }
        for e in &mut self.entries {
            *e = take_u64(bytes)?;
        }
        let top = take_u64(bytes)? as usize;
        let len = take_u64(bytes)? as usize;
        if top >= depth || len > depth {
            return Err(format!("ras snapshot out of range: top {top}, len {len}"));
        }
        self.top = top;
        self.len = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnStack::new(8);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // drops 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_panics() {
        ReturnStack::new(0);
    }

    #[test]
    fn state_round_trips_and_rejects_mismatch() {
        let mut ras = ReturnStack::new(4);
        for v in [10, 20, 30, 40, 50] {
            ras.push(v); // overflows once: wrap state matters
        }
        ras.pop();
        let mut bytes = Vec::new();
        ras.save_state(&mut bytes);
        let mut restored = ReturnStack::new(4);
        let mut r = bytes.as_slice();
        restored.load_state(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.len(), ras.len());
        assert_eq!(restored.pop(), Some(40));
        assert_eq!(restored.pop(), Some(30));
        assert!(ReturnStack::new(2)
            .load_state(&mut bytes.as_slice())
            .is_err());
        let mut truncated = &bytes[..bytes.len() - 5];
        assert!(ReturnStack::new(4).load_state(&mut truncated).is_err());
    }
}
