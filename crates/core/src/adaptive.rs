//! Reconfiguration controller: when should the two cores couple?
//!
//! Fg-STP *reconfigures* two cores to collaborate; a production design
//! needs a policy for when coupling pays off (serial, unpartitionable code
//! gains nothing and the second core could do other work). This module
//! provides two controllers over the trace-driven machines:
//!
//! * [`run_oracle`] — picks the faster of single-core and Fg-STP execution
//!   per workload: the upper bound any online controller can reach;
//! * [`run_sampling`] — the implementable policy: execute a sample
//!   interval in each mode, commit to the winner for the rest of the run,
//!   and pay a reconfiguration penalty at each mode switch.
//!
//! Both controllers charge real cycles for everything they run, including
//! the sampling intervals.
//!
//! [`run_dynamic`] extends the idea to multi-program machines: the thread
//! holds however many cores the co-run schedule currently leaves free,
//! reconfiguring (and paying [`DynamicConfig::reconfig_penalty`]) whenever
//! a co-runner arrives and claims cores back or finishes and releases
//! them.

use fgstp_isa::DynInst;
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::run_single;

use crate::machine::{run_fgstp, FgstpConfig};

/// Which configuration the controller chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One core runs the thread; the partner stays free.
    Single,
    /// Both cores collaborate (Fg-STP).
    Fgstp,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mode::Single => "single",
            Mode::Fgstp => "fgstp",
        })
    }
}

/// Outcome of an adaptive run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveResult {
    /// Mode chosen for the steady-state portion.
    pub mode: Mode,
    /// Total cycles, sampling and switching included.
    pub cycles: u64,
    /// Cycles spent in the sampling phase (0 for the oracle).
    pub sampling_cycles: u64,
}

/// Controller parameters for [`run_sampling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Instructions per sampling interval (one interval per mode).
    pub sample_insts: usize,
    /// Cycles charged per reconfiguration (draining both pipelines and
    /// re-steering the frontend).
    pub reconfig_penalty: u64,
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            sample_insts: 2_000,
            reconfig_penalty: 200,
        }
    }
}

/// Runs `trace` in the faster of the two modes (cycles of the winner
/// only) — the oracle upper bound for any reconfiguration policy.
pub fn run_oracle(trace: &[DynInst], cfg: &FgstpConfig, hcfg: &HierarchyConfig) -> AdaptiveResult {
    let single_h = HierarchyConfig { cores: 1, ..*hcfg };
    let single = run_single(trace, &cfg.core, &single_h);
    let (fgstp, _) = run_fgstp(trace, cfg, hcfg);
    if single.cycles <= fgstp.cycles {
        AdaptiveResult {
            mode: Mode::Single,
            cycles: single.cycles,
            sampling_cycles: 0,
        }
    } else {
        AdaptiveResult {
            mode: Mode::Fgstp,
            cycles: fgstp.cycles,
            sampling_cycles: 0,
        }
    }
}

/// Runs `trace` under the sampling controller: one interval per mode, then
/// the winner for the remainder, plus reconfiguration penalties.
///
/// Intervals are timed as independent segments (cold structures), which
/// slightly over-charges the sampling phase — a conservative controller
/// model.
pub fn run_sampling(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    sampling: &SamplingConfig,
) -> AdaptiveResult {
    let n = trace.len();
    let sample = sampling.sample_insts.min(n / 2);
    if sample == 0 {
        return run_oracle(trace, cfg, hcfg);
    }
    let single_h = HierarchyConfig { cores: 1, ..*hcfg };
    let s0 = run_single(&trace[..sample], &cfg.core, &single_h);
    let (s1, _) = run_fgstp(&trace[sample..2 * sample], cfg, hcfg);
    let sampling_cycles = s0.cycles + s1.cycles + sampling.reconfig_penalty;
    let rest = &trace[2 * sample..];
    // Per-instruction rates from the samples pick the steady-state mode.
    let single_cpi = s0.cycles as f64 / sample as f64;
    let fgstp_cpi = s1.cycles as f64 / sample as f64;
    let (mode, rest_cycles) = if single_cpi <= fgstp_cpi {
        // Already in fgstp mode after the second sample: switch back.
        let r = run_single(rest, &cfg.core, &single_h);
        (Mode::Single, r.cycles + sampling.reconfig_penalty)
    } else {
        let (r, _) = run_fgstp(rest, cfg, hcfg);
        (Mode::Fgstp, r.cycles)
    };
    AdaptiveResult {
        mode,
        cycles: sampling_cycles + rest_cycles,
        sampling_cycles,
    }
}

/// One step of a core-availability schedule for [`run_dynamic`]: from
/// `from_cycle` onwards the thread may hold up to `cores` cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorePhase {
    /// Global cycle the phase begins.
    pub from_cycle: u64,
    /// Cores available to the thread during the phase (≥ 1).
    pub cores: usize,
}

/// Parameters for the dynamic core scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicConfig {
    /// Instructions executed between availability checks; the machine only
    /// reconfigures at quantum boundaries (draining mid-flight state is
    /// what the penalty pays for).
    pub quantum_insts: usize,
    /// Cycles charged per core-count change.
    pub reconfig_penalty: u64,
}

impl Default for DynamicConfig {
    fn default() -> DynamicConfig {
        DynamicConfig {
            quantum_insts: 2_000,
            reconfig_penalty: 200,
        }
    }
}

/// Outcome of a dynamic-scheduler run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicResult {
    /// Total cycles, reconfiguration penalties included.
    pub cycles: u64,
    /// Number of core-count changes the thread performed.
    pub reconfigs: u64,
    /// The (start-cycle, core-count) segments actually executed.
    pub phases: Vec<CorePhase>,
}

/// Cores available at cycle `now` under `schedule` (1 before the first
/// phase; phases must be sorted by `from_cycle`).
fn available_cores(schedule: &[CorePhase], now: u64) -> usize {
    schedule
        .iter()
        .take_while(|p| p.from_cycle <= now)
        .last()
        .map_or(1, |p| p.cores.max(1))
}

/// Runs `trace` while tracking a core-availability `schedule`: the thread
/// claims every core the schedule currently grants it (running Fg-STP
/// across them) and falls back to a single conventional core when
/// co-runners have claimed the rest.
///
/// Each quantum is timed as an independent segment (cold structures), the
/// same conservative approximation [`run_sampling`] uses; `cfg.num_cores`
/// caps how many cores the thread can exploit regardless of availability.
pub fn run_dynamic(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    schedule: &[CorePhase],
    dyncfg: &DynamicConfig,
) -> DynamicResult {
    assert!(
        schedule
            .windows(2)
            .all(|w| w[0].from_cycle <= w[1].from_cycle),
        "schedule phases must be sorted by from_cycle"
    );
    let quantum = dyncfg.quantum_insts.max(1);
    let mut now = 0u64;
    let mut reconfigs = 0u64;
    let mut phases: Vec<CorePhase> = Vec::new();
    let mut current = 0usize; // cores held; 0 = not configured yet
    let mut done = 0usize;
    while done < trace.len() {
        let want = available_cores(schedule, now).min(cfg.num_cores).max(1);
        if want != current {
            if current != 0 {
                now += dyncfg.reconfig_penalty;
                reconfigs += 1;
            }
            current = want;
            phases.push(CorePhase {
                from_cycle: now,
                cores: current,
            });
        }
        let end = (done + quantum).min(trace.len());
        let segment = &trace[done..end];
        let cycles = if current == 1 {
            let h = HierarchyConfig { cores: 1, ..*hcfg };
            run_single(segment, &cfg.core, &h).cycles
        } else {
            let h = HierarchyConfig {
                cores: current,
                ..*hcfg
            };
            let (r, _) = run_fgstp(segment, &cfg.clone().with_cores(current), &h);
            r.cycles
        };
        now += cycles;
        done = end;
    }
    DynamicResult {
        cycles: now,
        reconfigs,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program, Trace};

    fn partitionable() -> Trace {
        let mut src = String::from("li x1, 1\nli x2, 1\nli x9, 400\n");
        src.push_str(
            "loop:\nadd x1, x1, x1\nxor x3, x1, x9\nadd x2, x2, x2\nxor x4, x2, x9\n\
             addi x9, x9, -1\nbne x9, x0, loop\nhalt\n",
        );
        trace_program(&assemble(&src).unwrap(), 100_000).unwrap()
    }

    fn serial() -> Trace {
        let mut src = String::from("li x1, 3\nli x9, 800\n");
        src.push_str(
            "loop:\nmul x1, x1, x9\naddi x1, x1, 1\naddi x9, x9, -1\nbne x9, x0, loop\nhalt\n",
        );
        trace_program(&assemble(&src).unwrap(), 100_000).unwrap()
    }

    #[test]
    fn oracle_never_loses_to_either_mode() {
        for t in [partitionable(), serial()] {
            let cfg = FgstpConfig::small();
            let hcfg = HierarchyConfig::small(2);
            let oracle = run_oracle(t.insts(), &cfg, &hcfg);
            let single = run_single(t.insts(), &cfg.core, &HierarchyConfig::small(1));
            let (fg, _) = run_fgstp(t.insts(), &cfg, &hcfg);
            assert!(oracle.cycles <= single.cycles);
            assert!(oracle.cycles <= fg.cycles);
        }
    }

    #[test]
    fn oracle_picks_fgstp_for_partitionable_code() {
        let t = partitionable();
        let r = run_oracle(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert_eq!(r.mode, Mode::Fgstp);
    }

    #[test]
    fn sampling_controller_is_close_to_oracle() {
        for t in [partitionable(), serial()] {
            let cfg = FgstpConfig::small();
            let hcfg = HierarchyConfig::small(2);
            let oracle = run_oracle(t.insts(), &cfg, &hcfg);
            let sampled = run_sampling(
                t.insts(),
                &cfg,
                &hcfg,
                &SamplingConfig {
                    sample_insts: 500,
                    reconfig_penalty: 100,
                },
            );
            assert!(sampled.sampling_cycles > 0);
            assert!(
                (sampled.cycles as f64) < oracle.cycles as f64 * 1.5,
                "sampling {} vs oracle {}",
                sampled.cycles,
                oracle.cycles
            );
        }
    }

    #[test]
    fn dynamic_with_a_flat_two_core_schedule_uses_two_cores_throughout() {
        let t = partitionable();
        let r = run_dynamic(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &[CorePhase {
                from_cycle: 0,
                cores: 2,
            }],
            &DynamicConfig::default(),
        );
        assert_eq!(r.reconfigs, 0);
        assert_eq!(
            r.phases,
            vec![CorePhase {
                from_cycle: 0,
                cores: 2
            }]
        );
        assert!(r.cycles > 0);
    }

    #[test]
    fn dynamic_reconfigures_when_a_corunner_claims_cores() {
        let t = partitionable();
        let dyncfg = DynamicConfig {
            quantum_insts: 400,
            reconfig_penalty: 100,
        };
        // A co-runner arrives early and releases the second core late.
        let schedule = [
            CorePhase {
                from_cycle: 0,
                cores: 2,
            },
            CorePhase {
                from_cycle: 200,
                cores: 1,
            },
            CorePhase {
                from_cycle: 100_000,
                cores: 2,
            },
        ];
        let r = run_dynamic(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &schedule,
            &dyncfg,
        );
        assert!(r.reconfigs >= 1, "claim-back must force a reconfiguration");
        assert!(r.phases.iter().any(|p| p.cores == 1));
        // Penalties are charged: cycles exceed a penalty-free rerun.
        let free = run_dynamic(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &schedule,
            &DynamicConfig {
                quantum_insts: 400,
                reconfig_penalty: 0,
            },
        );
        assert!(r.cycles >= free.cycles + dyncfg.reconfig_penalty * r.reconfigs);
    }

    #[test]
    fn dynamic_never_exceeds_the_machine_core_count() {
        let t = serial();
        let r = run_dynamic(
            t.insts(),
            &FgstpConfig::small(), // 2-core machine
            &HierarchyConfig::small(2),
            &[CorePhase {
                from_cycle: 0,
                cores: 8,
            }],
            &DynamicConfig::default(),
        );
        assert!(r.phases.iter().all(|p| p.cores <= 2));
    }

    #[test]
    fn empty_schedule_means_one_core() {
        let t = serial();
        let r = run_dynamic(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &[],
            &DynamicConfig::default(),
        );
        assert_eq!(r.reconfigs, 0);
        assert_eq!(
            r.phases,
            vec![CorePhase {
                from_cycle: 0,
                cores: 1
            }]
        );
    }

    #[test]
    fn tiny_traces_fall_back_to_the_oracle() {
        let p = assemble("li x1, 1\nhalt").unwrap();
        let t = trace_program(&p, 100).unwrap();
        let r = run_sampling(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &SamplingConfig {
                sample_insts: 0,
                reconfig_penalty: 0,
            },
        );
        assert_eq!(r.sampling_cycles, 0);
    }
}
