//! Reconfiguration controller: when should the two cores couple?
//!
//! Fg-STP *reconfigures* two cores to collaborate; a production design
//! needs a policy for when coupling pays off (serial, unpartitionable code
//! gains nothing and the second core could do other work). This module
//! provides two controllers over the trace-driven machines:
//!
//! * [`run_oracle`] — picks the faster of single-core and Fg-STP execution
//!   per workload: the upper bound any online controller can reach;
//! * [`run_sampling`] — the implementable policy: execute a sample
//!   interval in each mode, commit to the winner for the rest of the run,
//!   and pay a reconfiguration penalty at each mode switch.
//!
//! Both controllers charge real cycles for everything they run, including
//! the sampling intervals.

use fgstp_isa::DynInst;
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::run_single;

use crate::machine::{run_fgstp, FgstpConfig};

/// Which configuration the controller chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One core runs the thread; the partner stays free.
    Single,
    /// Both cores collaborate (Fg-STP).
    Fgstp,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mode::Single => "single",
            Mode::Fgstp => "fgstp",
        })
    }
}

/// Outcome of an adaptive run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveResult {
    /// Mode chosen for the steady-state portion.
    pub mode: Mode,
    /// Total cycles, sampling and switching included.
    pub cycles: u64,
    /// Cycles spent in the sampling phase (0 for the oracle).
    pub sampling_cycles: u64,
}

/// Controller parameters for [`run_sampling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Instructions per sampling interval (one interval per mode).
    pub sample_insts: usize,
    /// Cycles charged per reconfiguration (draining both pipelines and
    /// re-steering the frontend).
    pub reconfig_penalty: u64,
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            sample_insts: 2_000,
            reconfig_penalty: 200,
        }
    }
}

/// Runs `trace` in the faster of the two modes (cycles of the winner
/// only) — the oracle upper bound for any reconfiguration policy.
pub fn run_oracle(trace: &[DynInst], cfg: &FgstpConfig, hcfg: &HierarchyConfig) -> AdaptiveResult {
    let single_h = HierarchyConfig { cores: 1, ..*hcfg };
    let single = run_single(trace, &cfg.core, &single_h);
    let (fgstp, _) = run_fgstp(trace, cfg, hcfg);
    if single.cycles <= fgstp.cycles {
        AdaptiveResult {
            mode: Mode::Single,
            cycles: single.cycles,
            sampling_cycles: 0,
        }
    } else {
        AdaptiveResult {
            mode: Mode::Fgstp,
            cycles: fgstp.cycles,
            sampling_cycles: 0,
        }
    }
}

/// Runs `trace` under the sampling controller: one interval per mode, then
/// the winner for the remainder, plus reconfiguration penalties.
///
/// Intervals are timed as independent segments (cold structures), which
/// slightly over-charges the sampling phase — a conservative controller
/// model.
pub fn run_sampling(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    sampling: &SamplingConfig,
) -> AdaptiveResult {
    let n = trace.len();
    let sample = sampling.sample_insts.min(n / 2);
    if sample == 0 {
        return run_oracle(trace, cfg, hcfg);
    }
    let single_h = HierarchyConfig { cores: 1, ..*hcfg };
    let s0 = run_single(&trace[..sample], &cfg.core, &single_h);
    let (s1, _) = run_fgstp(&trace[sample..2 * sample], cfg, hcfg);
    let sampling_cycles = s0.cycles + s1.cycles + sampling.reconfig_penalty;
    let rest = &trace[2 * sample..];
    // Per-instruction rates from the samples pick the steady-state mode.
    let single_cpi = s0.cycles as f64 / sample as f64;
    let fgstp_cpi = s1.cycles as f64 / sample as f64;
    let (mode, rest_cycles) = if single_cpi <= fgstp_cpi {
        // Already in fgstp mode after the second sample: switch back.
        let r = run_single(rest, &cfg.core, &single_h);
        (Mode::Single, r.cycles + sampling.reconfig_penalty)
    } else {
        let (r, _) = run_fgstp(rest, cfg, hcfg);
        (Mode::Fgstp, r.cycles)
    };
    AdaptiveResult {
        mode,
        cycles: sampling_cycles + rest_cycles,
        sampling_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program, Trace};

    fn partitionable() -> Trace {
        let mut src = String::from("li x1, 1\nli x2, 1\nli x9, 400\n");
        src.push_str(
            "loop:\nadd x1, x1, x1\nxor x3, x1, x9\nadd x2, x2, x2\nxor x4, x2, x9\n\
             addi x9, x9, -1\nbne x9, x0, loop\nhalt\n",
        );
        trace_program(&assemble(&src).unwrap(), 100_000).unwrap()
    }

    fn serial() -> Trace {
        let mut src = String::from("li x1, 3\nli x9, 800\n");
        src.push_str(
            "loop:\nmul x1, x1, x9\naddi x1, x1, 1\naddi x9, x9, -1\nbne x9, x0, loop\nhalt\n",
        );
        trace_program(&assemble(&src).unwrap(), 100_000).unwrap()
    }

    #[test]
    fn oracle_never_loses_to_either_mode() {
        for t in [partitionable(), serial()] {
            let cfg = FgstpConfig::small();
            let hcfg = HierarchyConfig::small(2);
            let oracle = run_oracle(t.insts(), &cfg, &hcfg);
            let single = run_single(t.insts(), &cfg.core, &HierarchyConfig::small(1));
            let (fg, _) = run_fgstp(t.insts(), &cfg, &hcfg);
            assert!(oracle.cycles <= single.cycles);
            assert!(oracle.cycles <= fg.cycles);
        }
    }

    #[test]
    fn oracle_picks_fgstp_for_partitionable_code() {
        let t = partitionable();
        let r = run_oracle(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert_eq!(r.mode, Mode::Fgstp);
    }

    #[test]
    fn sampling_controller_is_close_to_oracle() {
        for t in [partitionable(), serial()] {
            let cfg = FgstpConfig::small();
            let hcfg = HierarchyConfig::small(2);
            let oracle = run_oracle(t.insts(), &cfg, &hcfg);
            let sampled = run_sampling(
                t.insts(),
                &cfg,
                &hcfg,
                &SamplingConfig {
                    sample_insts: 500,
                    reconfig_penalty: 100,
                },
            );
            assert!(sampled.sampling_cycles > 0);
            assert!(
                (sampled.cycles as f64) < oracle.cycles as f64 * 1.5,
                "sampling {} vs oracle {}",
                sampled.cycles,
                oracle.cycles
            );
        }
    }

    #[test]
    fn tiny_traces_fall_back_to_the_oracle() {
        let p = assemble("li x1, 1\nhalt").unwrap();
        let t = trace_program(&p, 100).unwrap();
        let r = run_sampling(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &SamplingConfig {
                sample_insts: 0,
                reconfig_penalty: 0,
            },
        );
        assert_eq!(r.sampling_cycles, 0);
    }
}
