//! Windowed dynamic dependence graph.
//!
//! The Fg-STP partitioning hardware observes the fetched instruction stream
//! through a lookahead buffer and builds the register dependence graph of
//! the current window. This module is that structure: nodes are window
//! positions, edges are true register dependences (and load→store memory
//! dependences), and the graph exposes the queries the partitioner needs —
//! per-node predecessors/successors, dependence-chain depths and the
//! critical path.

use fgstp_ooo::ExecInst;

/// Dependence graph over one window of the execution stream.
///
/// Node indices are positions within the window (0-based); edges point from
/// producer to consumer and always go forward in program order.
///
/// Edges are stored in compressed-sparse-row form — two flat arrays per
/// direction instead of a `Vec` per node — because the partitioner builds
/// one of these per lookahead window on the simulator's setup path, and
/// the per-node allocations used to dominate partitioning time.
#[derive(Debug, Clone)]
pub struct DepGraph {
    len: usize,
    /// `pred_flat[pred_start[i]..pred_start[i+1]]` are node i's producers,
    /// in dependence order (register deps, then the memory dep), deduped.
    pred_start: Vec<u32>,
    pred_flat: Vec<u32>,
    /// Same layout for consumers, in increasing consumer order.
    succ_start: Vec<u32>,
    succ_flat: Vec<u32>,
    /// Estimated execution weight per node (long-latency ops weigh more).
    weights: Vec<u64>,
}

/// Rough latency weight used to rank chains (loads weigh as L1-hit-ish;
/// the partitioner cares about relative chain lengths, not exact cycles).
fn weight_of(x: &ExecInst) -> u64 {
    use fgstp_isa::InstClass::*;
    match x.class() {
        IntAlu | Nop | Branch | Jump | Store => 1,
        IntMul => 3,
        FpAdd => 3,
        FpMul => 4,
        IntDiv | FpDiv => 16,
        Load => 3,
    }
}

impl DepGraph {
    /// Builds the dependence graph of `window`. Register dependences whose
    /// producer lies before the window are external and not represented as
    /// edges (the partitioner handles them through its running state).
    pub fn build(window: &[ExecInst]) -> DepGraph {
        let len = window.len();
        let base = window.first().map_or(0, |x| x.gseq);
        let in_window = |g: u64| -> Option<usize> {
            let idx = g.checked_sub(base)? as usize;
            (idx < len).then_some(idx)
        };
        // Predecessor CSR in one program-order pass: each node contributes at
        // most 3 deduped edges (two register deps plus the memory dep), so a
        // `contains` scan over the node's own slice is cheap.
        let mut pred_start = Vec::with_capacity(len + 1);
        let mut pred_flat: Vec<u32> = Vec::with_capacity(len * 2);
        pred_start.push(0u32);
        for x in window {
            let begin = pred_flat.len();
            for dep in x.deps.iter().flatten() {
                if let Some(p) = in_window(dep.producer) {
                    if !pred_flat[begin..].contains(&(p as u32)) {
                        pred_flat.push(p as u32);
                    }
                }
            }
            if let Some(md) = x.mem_dep {
                if let Some(p) = in_window(md.store) {
                    if !pred_flat[begin..].contains(&(p as u32)) {
                        pred_flat.push(p as u32);
                    }
                }
            }
            pred_start.push(pred_flat.len() as u32);
        }
        // Successor CSR by counting + prefix sum, scattering consumers in
        // ascending order so each producer's successor list stays sorted.
        let mut succ_start = vec![0u32; len + 1];
        for &p in &pred_flat {
            succ_start[p as usize + 1] += 1;
        }
        for k in 1..=len {
            succ_start[k] += succ_start[k - 1];
        }
        let mut cursor = succ_start.clone();
        let mut succ_flat = vec![0u32; pred_flat.len()];
        for i in 0..len {
            for &p in &pred_flat[pred_start[i] as usize..pred_start[i + 1] as usize] {
                let p = p as usize;
                succ_flat[cursor[p] as usize] = i as u32;
                cursor[p] += 1;
            }
        }
        let weights = window.iter().map(weight_of).collect();
        DepGraph {
            len,
            pred_start,
            pred_flat,
            succ_start,
            succ_flat,
            weights,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-window producers of node `i`.
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.pred_flat[self.pred_start[i] as usize..self.pred_start[i + 1] as usize]
    }

    /// In-window consumers of node `i`.
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_flat[self.succ_start[i] as usize..self.succ_start[i + 1] as usize]
    }

    /// Execution weight of node `i`.
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// Longest weighted path from any source *to* each node, inclusive.
    pub fn depth_from_sources(&self) -> Vec<u64> {
        let mut depth = vec![0u64; self.len];
        for i in 0..self.len {
            let best = self
                .preds(i)
                .iter()
                .map(|&p| depth[p as usize])
                .max()
                .unwrap_or(0);
            depth[i] = best + self.weights[i];
        }
        depth
    }

    /// Longest weighted path from each node to any sink, inclusive.
    pub fn depth_to_sinks(&self) -> Vec<u64> {
        let mut depth = vec![0u64; self.len];
        for i in (0..self.len).rev() {
            let best = self
                .succs(i)
                .iter()
                .map(|&s| depth[s as usize])
                .max()
                .unwrap_or(0);
            depth[i] = best + self.weights[i];
        }
        depth
    }

    /// One longest weighted dependence chain, in program order. Ties are
    /// broken deterministically; exactly one path is returned even when
    /// several chains have the same length.
    pub fn critical_path(&self) -> Vec<usize> {
        self.longest_chain(&vec![false; self.len])
    }

    /// One longest weighted dependence chain among nodes not marked in
    /// `excluded`, in program order. Edges to or from excluded nodes are
    /// ignored. Used by the partitioner to find the *second* chain after
    /// seeding the first.
    ///
    /// # Panics
    ///
    /// Panics if `excluded.len() != self.len()`.
    pub fn longest_chain(&self, excluded: &[bool]) -> Vec<usize> {
        assert_eq!(excluded.len(), self.len, "exclusion mask size mismatch");
        if self.len == 0 {
            return Vec::new();
        }
        let mut from = vec![0u64; self.len];
        for i in 0..self.len {
            if excluded[i] {
                continue;
            }
            let best = self
                .preds(i)
                .iter()
                .filter(|&&p| !excluded[p as usize])
                .map(|&p| from[p as usize])
                .max()
                .unwrap_or(0);
            from[i] = best + self.weights[i];
        }
        let Some(end) = (0..self.len)
            .filter(|&i| !excluded[i])
            .max_by_key(|&i| from[i])
        else {
            return Vec::new();
        };
        let mut chain = vec![end];
        let mut cur = end;
        while let Some(p) = self
            .preds(cur)
            .iter()
            .map(|&p| p as usize)
            .find(|&p| !excluded[p] && from[p] + self.weights[cur] == from[cur])
        {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Number of edges crossing a 2-way assignment (communication count).
    pub fn cut_size(&self, assign: &[u8]) -> usize {
        debug_assert_eq!(assign.len(), self.len);
        let mut cut = 0;
        for i in 0..self.len {
            for &p in self.preds(i) {
                if assign[p as usize] != assign[i] {
                    cut += 1;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program};
    use fgstp_ooo::build_exec_stream;

    fn graph(src: &str) -> DepGraph {
        let p = assemble(src).unwrap();
        let t = trace_program(&p, 10_000).unwrap();
        let s = build_exec_stream(t.insts());
        DepGraph::build(&s)
    }

    #[test]
    fn edges_follow_register_deps() {
        let g = graph(
            r#"
                li  x1, 1       # 0
                li  x2, 2       # 1
                add x3, x1, x2  # 2
                add x4, x3, x3  # 3
                halt
            "#,
        );
        assert_eq!(g.preds(2), &[0, 1]);
        assert_eq!(g.preds(3), &[2]);
        assert_eq!(g.succs(0), &[2]);
    }

    #[test]
    fn memory_dependence_creates_an_edge() {
        let g = graph(
            r#"
                li x1, 0x100    # 0
                li x2, 9        # 1
                sd x2, 0(x1)    # 2
                ld x3, 0(x1)    # 3
                halt
            "#,
        );
        assert!(g.preds(3).contains(&2), "load depends on store");
    }

    #[test]
    fn depths_accumulate_along_chains() {
        let g = graph(
            r#"
                li  x1, 1        # 0: w=1
                mul x2, x1, x1   # 1: w=3
                add x3, x2, x2   # 2: w=1
                halt
            "#,
        );
        assert_eq!(g.depth_from_sources(), vec![1, 4, 5]);
        assert_eq!(g.depth_to_sinks(), vec![5, 4, 1]);
    }

    #[test]
    fn critical_path_selects_the_long_chain() {
        let g = graph(
            r#"
                li  x1, 1        # 0: chain A (long: mul)
                mul x2, x1, x1   # 1
                li  x5, 4        # 2: chain B (short)
                add x6, x5, x5   # 3
                add x3, x2, x2   # 4: chain A
                halt
            "#,
        );
        let cp = g.critical_path();
        assert!(cp.contains(&0) && cp.contains(&1) && cp.contains(&4));
        assert!(!cp.contains(&2) && !cp.contains(&3));
    }

    #[test]
    fn cut_size_counts_cross_assignments() {
        let g = graph(
            r#"
                li  x1, 1
                add x2, x1, x1
                add x3, x2, x2
                halt
            "#,
        );
        assert_eq!(g.cut_size(&[0, 0, 0]), 0);
        assert_eq!(g.cut_size(&[0, 1, 1]), 1);
        assert_eq!(g.cut_size(&[0, 1, 0]), 2);
    }

    #[test]
    fn empty_window_is_handled() {
        let g = DepGraph::build(&[]);
        assert!(g.is_empty());
        assert!(g.critical_path().is_empty());
    }

    #[test]
    fn external_producers_create_no_edges() {
        // Build a graph over a window that starts mid-stream.
        let p = assemble("li x1, 1\nadd x2, x1, x1\nadd x3, x2, x1\nhalt").unwrap();
        let t = trace_program(&p, 100).unwrap();
        let s = build_exec_stream(t.insts());
        let g = DepGraph::build(&s[1..]);
        assert_eq!(g.len(), 2);
        // `add x2` (node 0 of the window) depends only on out-of-window li.
        assert!(g.preds(0).is_empty());
        assert_eq!(g.preds(1), &[0]);
    }
}
