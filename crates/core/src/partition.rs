//! Instruction-granularity partitioning of a single thread across N
//! cores — the heart of Fg-STP.
//!
//! The partitioner consumes the annotated execution stream and produces
//! one per-core stream per target core plus the communication/replication
//! annotations the timing machine needs. Three policies are provided:
//!
//! * [`PartitionPolicy::ModN`] — a naive round-robin chunk baseline;
//! * [`PartitionPolicy::GreedyDep`] — classic online dependence-based
//!   steering (assign each instruction to the core that produces its
//!   operands, with a load-balance guard), the policy family of clustered
//!   and DMT-style designs;
//! * [`PartitionPolicy::SliceLookahead`] — the Fg-STP policy: over a large
//!   lookahead window, seed the cores with the window's longest disjoint
//!   dependence chains, grow all partitions by dependence affinity, then
//!   run boundary refinement passes that migrate instructions when doing
//!   so removes more communication than it adds, subject to a balance
//!   constraint.
//!
//! Replication (when enabled) runs after assignment: a cheap single-cycle
//! producer whose value is consumed on another core is cloned there
//! instead of communicated, whenever its own operands are already
//! available on that core.
//!
//! The paper evaluates the 2-core instance; every algorithm here is the
//! N-way generalization that is *bit-identical* to the original 2-way
//! formulation when `num_cores == 2` (arg-min/arg-max selections break
//! ties toward the lowest core index, exactly like the old
//! `usize::from(load[1] < load[0])` and `votes[1] > votes[0]` forms).

use fgstp_isa::InstClass;
use fgstp_ooo::ExecInst;

use crate::depgraph::DepGraph;

/// Upper bound on partition cores (replica/send sets are `u64` bitmasks).
pub const MAX_PARTITION_CORES: usize = 64;

/// Partitioning policy selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionPolicy {
    /// Alternate chunks of `chunk` instructions between the cores.
    ModN {
        /// Chunk size in instructions.
        chunk: usize,
    },
    /// Online greedy dependence steering with a balance guard.
    GreedyDep,
    /// Fg-STP slice-based lookahead partitioning.
    SliceLookahead {
        /// Lookahead window size in instructions.
        window: usize,
        /// Boundary-refinement passes per window.
        refine_passes: usize,
    },
}

impl PartitionPolicy {
    /// The paper's default policy: 256-instruction lookahead, two
    /// refinement passes.
    pub fn fgstp_default() -> PartitionPolicy {
        PartitionPolicy::SliceLookahead {
            window: 256,
            refine_passes: 2,
        }
    }
}

/// Partitioner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Assignment policy.
    pub policy: PartitionPolicy,
    /// Whether cheap producers are replicated instead of communicated.
    pub replication: bool,
    /// Maximum tolerated per-window weight imbalance, as a fraction.
    pub balance_slack: f64,
}

impl Default for PartitionConfig {
    fn default() -> PartitionConfig {
        PartitionConfig {
            policy: PartitionPolicy::fgstp_default(),
            replication: true,
            balance_slack: 0.15,
        }
    }
}

/// Summary statistics of one partitioning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionStats {
    /// Primary instructions assigned to each core.
    pub insts: Vec<u64>,
    /// Replica copies created (one per `(instruction, extra core)` pair).
    pub replicated: u64,
    /// Register dependences that cross the cores (communications).
    pub cross_reg_deps: u64,
    /// Load→store memory dependences that cross the cores.
    pub cross_mem_deps: u64,
}

impl PartitionStats {
    /// Total primary instructions across all cores.
    pub fn total_insts(&self) -> u64 {
        self.insts.iter().sum()
    }

    /// Fraction of instructions assigned to core 0.
    pub fn balance(&self) -> f64 {
        let total = self.total_insts() as f64;
        if total == 0.0 {
            0.5
        } else {
            self.insts.first().copied().unwrap_or(0) as f64 / total
        }
    }

    /// Communications per committed instruction.
    pub fn comms_per_inst(&self) -> f64 {
        let total = self.total_insts() as f64;
        if total == 0.0 {
            0.0
        } else {
            self.cross_reg_deps as f64 / total
        }
    }
}

/// A partitioned execution stream, ready for the N-core machine.
#[derive(Debug, Clone, Default)]
pub struct PartitionedStream {
    /// Per-core instruction streams (replicas included, in global order).
    pub streams: Vec<Vec<ExecInst>>,
    /// Core assignment per global sequence number.
    pub assign: Vec<u8>,
    /// Whether each instruction has at least one replica on another core.
    pub replicated: Vec<bool>,
    /// Bitmask of cores holding a replica of each instruction (the home
    /// core's bit is never set).
    pub replica_on: Vec<u64>,
    /// Bitmask of cores each producer's value must be sent to (consumers
    /// on cores where the value is neither computed nor replicated).
    pub send_targets: Vec<u64>,
    /// Per-gseq cross-core ordering barrier: for every load, the youngest
    /// older store assigned to *another* core (used when dependence
    /// speculation is disabled). `u64::MAX` means "no barrier"; the vector
    /// is indexed by global sequence number and covers the whole stream.
    pub load_barriers: Vec<u64>,
    /// Summary statistics.
    pub stats: PartitionStats,
}

impl PartitionedStream {
    /// Number of cores this stream was partitioned for.
    pub fn num_cores(&self) -> usize {
        self.streams.len()
    }
}

/// Partitions `stream` across `num_cores` cores according to `cfg`.
///
/// # Panics
///
/// Panics if `num_cores` is zero or exceeds [`MAX_PARTITION_CORES`].
pub fn partition_stream(
    stream: &[ExecInst],
    cfg: &PartitionConfig,
    num_cores: usize,
) -> PartitionedStream {
    partition_stream_weighted(stream, cfg, &vec![1; num_cores])
}

/// Like [`partition_stream`], but steering weighs heterogeneous cores:
/// `caps[c]` is core `c`'s relative capacity (e.g. its issue width), and
/// every least-loaded selection minimizes `load/cap` instead of raw load,
/// so wide cores absorb proportionally more instructions. With uniform
/// capacities the result is bit-identical to [`partition_stream`] (the
/// comparisons reduce to the same raw-load arg-min, ties toward the lowest
/// core index). Chain seeding also hands the window's critical path to the
/// highest-capacity core (stable order, so uniform capacities keep the
/// core-0 seeding).
///
/// # Panics
///
/// Panics if `caps` is empty, longer than [`MAX_PARTITION_CORES`], or
/// contains a zero capacity.
pub fn partition_stream_weighted(
    stream: &[ExecInst],
    cfg: &PartitionConfig,
    caps: &[u64],
) -> PartitionedStream {
    let num_cores = caps.len();
    assert!(
        (1..=MAX_PARTITION_CORES).contains(&num_cores),
        "num_cores must be in 1..={MAX_PARTITION_CORES}, got {num_cores}"
    );
    assert!(caps.iter().all(|&c| c > 0), "core capacities must be > 0");
    let assign = match cfg.policy {
        PartitionPolicy::ModN { chunk } => assign_modn(stream, chunk.max(1), num_cores),
        PartitionPolicy::GreedyDep => assign_greedy(stream, caps),
        PartitionPolicy::SliceLookahead {
            window,
            refine_passes,
        } => assign_lookahead(
            stream,
            window.max(8),
            refine_passes,
            cfg.balance_slack,
            caps,
        ),
    };
    let replica_on = if cfg.replication && num_cores > 1 {
        plan_replication(stream, &assign)
    } else {
        vec![0; stream.len()]
    };
    materialize(stream, assign, replica_on, num_cores)
}

/// Index minimizing `load[i] / caps[i]`, compared by exact integer
/// cross-multiplication; ties toward the lowest index. With uniform
/// capacities this is exactly [`argmin`].
fn argmin_weighted(load: &[u64], caps: &[u64]) -> usize {
    let mut best = 0;
    for i in 1..load.len() {
        if (load[i] as u128) * (caps[best] as u128) < (load[best] as u128) * (caps[i] as u128) {
            best = i;
        }
    }
    best
}

fn assign_modn(stream: &[ExecInst], chunk: usize, num_cores: usize) -> Vec<u8> {
    (0..stream.len())
        .map(|i| ((i / chunk) % num_cores) as u8)
        .collect()
}

fn assign_greedy(stream: &[ExecInst], caps: &[u64]) -> Vec<u8> {
    let num_cores = caps.len();
    let mut assign = vec![0u8; stream.len()];
    let mut counts = vec![0u64; num_cores];
    let mut votes = vec![0i64; num_cores];
    const MAX_IMBALANCE: u64 = 24;
    for (i, x) in stream.iter().enumerate() {
        votes.fill(0);
        for dep in x.deps.iter().flatten() {
            let p = dep.producer as usize;
            if p < i {
                votes[assign[p] as usize] += 2;
            }
        }
        if let Some(md) = x.mem_dep {
            let p = md.store as usize;
            if p < i {
                votes[assign[p] as usize] += 1;
            }
        }
        // Steer to the most-voted core (ties toward the lowest index);
        // bail out to the least-loaded core when the balance guard trips.
        // The least-loaded selection is capacity-weighted; the imbalance
        // guard itself stays on raw counts (a fixed instruction budget).
        let mut preferred = 0;
        for (c, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[preferred] {
                preferred = c;
            }
        }
        let least = argmin_weighted(&counts, caps);
        let c = if counts[preferred].saturating_sub(counts[least]) > MAX_IMBALANCE {
            least
        } else {
            preferred
        };
        assign[i] = c as u8;
        counts[c] += 1;
    }
    assign
}

/// Computes the transitive *replicable closure*: an instruction is
/// replicable when it is a single-cycle integer ALU operation whose
/// operands are themselves replicable (or constants). These are the cheap
/// address/induction chains Fg-STP clones onto other cores instead of
/// communicating, so the partitioner treats their values as available
/// everywhere.
fn replicable_closure(stream: &[ExecInst]) -> Vec<bool> {
    let mut replicable = vec![false; stream.len()];
    for (i, x) in stream.iter().enumerate() {
        if x.class() != InstClass::IntAlu {
            continue;
        }
        replicable[i] = x
            .deps
            .iter()
            .flatten()
            .all(|dep| replicable[dep.producer as usize]);
    }
    replicable
}

fn assign_lookahead(
    stream: &[ExecInst],
    window: usize,
    refine_passes: usize,
    balance_slack: f64,
    caps: &[u64],
) -> Vec<u8> {
    let replicable = replicable_closure(stream);
    let mut assign = vec![0u8; stream.len()];
    let mut base = 0;
    while base < stream.len() {
        let end = (base + window).min(stream.len());
        let win = &stream[base..end];
        let g = DepGraph::build(win);
        let local = assign_window(
            win,
            &g,
            &assign[..base],
            base,
            &replicable,
            refine_passes,
            balance_slack,
            caps,
        );
        assign[base..end].copy_from_slice(&local);
        base = end;
    }
    assign
}

/// Assigns one window: chain-following placement seeded by the N longest
/// disjoint dependence chains, plus boundary refinement.
///
/// Placement follows the *critical producer*: an instruction goes to the
/// core that produces its latest-arriving non-replicable operand, so
/// serial chains never absorb queue latency. Instructions whose operands
/// are all replicable (or absent) start new chains on the least-loaded
/// core — this is where the load balance between the cores comes from.
#[allow(clippy::too_many_arguments)]
fn assign_window(
    win: &[ExecInst],
    g: &DepGraph,
    prior: &[u8],
    base: usize,
    replicable: &[bool],
    refine_passes: usize,
    balance_slack: f64,
    caps: &[u64],
) -> Vec<u8> {
    let num_cores = caps.len();
    let n = win.len();
    let mut assign = vec![u8::MAX; n];
    let mut load = vec![0u64; num_cores];
    let depth = g.depth_from_sources();
    // A producer whose value is free everywhere does not constrain
    // placement.
    let effective = |p_global: usize| !replicable[p_global];

    // Seed each core with the longest dependence chain disjoint from the
    // chains already placed, in decreasing capacity order — the window's
    // critical path goes to the highest-capacity core (core 0 on a
    // uniform machine: the sort is stable).
    let mut seed_order: Vec<usize> = (0..num_cores).collect();
    seed_order.sort_by_key(|&c| std::cmp::Reverse(caps[c]));
    let mut excluded = vec![false; n];
    for (k, &core) in seed_order.iter().enumerate() {
        let chain = if k == 0 {
            g.critical_path()
        } else {
            g.longest_chain(&excluded)
        };
        for &i in &chain {
            assign[i] = core as u8;
            load[core] += g.weight(i);
            excluded[i] = true;
        }
    }

    // Chain-following growth, in program order (every in-window producer
    // of node `i` is already assigned when `i` is reached).
    //
    // Three placement cases:
    // 1. a node with a non-replicable (effective) producer follows its
    //    deepest such producer — serial chains never absorb queue latency;
    // 2. a replicable node follows its own chain (deepest producer of any
    //    kind) so induction/address chains stay cohesive — replicas are
    //    created later only where actually needed;
    // 3. a non-replicable node fed only by replicable chains (a load off
    //    an induction variable, the head of a fresh computation) is a
    //    *balance point*: it starts on the least-loaded core. This is
    //    where Fg-STP's parallelism comes from.
    for i in 0..n {
        if assign[i] != u8::MAX {
            continue;
        }
        let deepest = |only_effective: bool| -> Option<(u64, usize)> {
            let mut best: Option<(u64, usize)> = None;
            for &p in g.preds(i) {
                let p = p as usize;
                if (!only_effective || effective(base + p))
                    && best.is_none_or(|(d, _)| depth[p] > d)
                {
                    best = Some((depth[p], assign[p] as usize));
                }
            }
            best
        };
        let external = |only_effective: bool| -> Option<usize> {
            win[i]
                .deps
                .iter()
                .flatten()
                .map(|d| d.producer as usize)
                .filter(|&p| p < base && (!only_effective || effective(p)))
                .max()
                .map(|p| prior[p] as usize)
        };
        let c = if let Some((_, c)) = deepest(true) {
            c
        } else if let Some(c) = external(true) {
            // Loop-carried chain continuity across windows.
            c
        } else if replicable[base + i] {
            // Keep replicable chains cohesive wherever their own chain
            // lives; fall back to the least-loaded core for chain heads.
            deepest(false)
                .map(|(_, c)| c)
                .or_else(|| external(false))
                .unwrap_or_else(|| argmin_weighted(&load, caps))
        } else {
            // A fresh computation rooted only in replicable values: start
            // it on the least-loaded core (capacity-weighted).
            argmin_weighted(&load, caps)
        };
        assign[i] = c as u8;
        load[c] += g.weight(i);
    }

    // Boundary refinement: migrate a node to the core holding more of its
    // effective edges than its current core does (the move converts that
    // core's edges to local and the current local edges to cross; edges to
    // third cores stay cross either way), within the balance slack.
    let total: u64 = (0..n).map(|i| g.weight(i)).sum();
    let slack = ((total as f64 * balance_slack) as u64).max(2 * g.weight(0).max(1));
    let mut edges = vec![0i64; num_cores];
    for _ in 0..refine_passes {
        let mut changed = false;
        for i in 0..n {
            let here = assign[i] as usize;
            // Effective-edge affinity per core.
            edges.fill(0);
            for &p in g.preds(i) {
                if effective(base + p as usize) {
                    edges[assign[p as usize] as usize] += 1;
                }
            }
            if effective(base + i) {
                for &s in g.succs(i) {
                    edges[assign[s as usize] as usize] += 1;
                }
            }
            for dep in win[i].deps.iter().flatten() {
                let p = dep.producer as usize;
                if p < base && effective(p) {
                    edges[prior[p] as usize] += 1;
                }
            }
            let w = g.weight(i);
            let mut best: Option<(i64, usize)> = None;
            for (there, &e) in edges.iter().enumerate() {
                if there == here {
                    continue;
                }
                let gain = e - edges[here];
                let balanced_after =
                    load[there] + w <= load[here].saturating_sub(w).max(load[there]) + slack;
                if gain > 0 && balanced_after && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, there));
                }
            }
            if let Some((_, there)) = best {
                assign[i] = there as u8;
                load[here] -= w;
                load[there] += w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

/// Decides which instructions to replicate: replicable producers (cheap
/// integer chains — see [`replicable_closure`]) whose value is needed on
/// another core, either by a remote consumer directly or transitively by
/// a replica of one of their consumers. Returns, per instruction, the
/// bitmask of cores a replica is placed on.
///
/// The pass runs in reverse program order so a whole address/induction
/// chain replicates together: when a consumer's replica needs its
/// producer remotely, the producer (if replicable) replicates too.
fn plan_replication(stream: &[ExecInst], assign: &[u8]) -> Vec<u64> {
    let replicable = replicable_closure(stream);
    let mut replica_on = vec![0u64; stream.len()];
    // needed_on[p]: bitmask of cores where p's value must be locally
    // available.
    let mut needed_on = vec![0u64; stream.len()];
    for (i, x) in stream.iter().enumerate().rev() {
        let home = 1u64 << assign[i];
        if replicable[i] {
            replica_on[i] = needed_on[i] & !home;
        }
        // The primary copy executes on the home core; replicas also
        // execute on every core in `replica_on`. Each copy needs the
        // operands on its own core.
        for dep in x.deps.iter().flatten() {
            needed_on[dep.producer as usize] |= home | replica_on[i];
        }
    }
    replica_on
}

/// Builds the per-core streams with final cross/sends annotations.
fn materialize(
    stream: &[ExecInst],
    assign: Vec<u8>,
    replica_on: Vec<u64>,
    num_cores: usize,
) -> PartitionedStream {
    let per_core = stream.len() / num_cores + stream.len() / 8 + 16;
    let mut out = PartitionedStream {
        streams: (0..num_cores)
            .map(|_| Vec::with_capacity(per_core))
            .collect(),
        load_barriers: vec![u64::MAX; stream.len()],
        stats: PartitionStats {
            insts: vec![0; num_cores],
            ..PartitionStats::default()
        },
        ..Default::default()
    };
    // `send_to[p]`: cores where p's value is consumed without being
    // computed or replicated there.
    let mut send_to = vec![0u64; stream.len()];
    let available_on = |p: usize, core: u8| assign[p] == core || replica_on[p] & (1 << core) != 0;
    for (i, x) in stream.iter().enumerate() {
        let c = assign[i];
        for dep in x.deps.iter().flatten() {
            let p = dep.producer as usize;
            if !available_on(p, c) {
                send_to[p] |= 1 << c;
                out.stats.cross_reg_deps += 1;
            }
        }
        if let Some(md) = x.mem_dep {
            if assign[md.store as usize] != c {
                out.stats.cross_mem_deps += 1;
            }
        }
    }
    let mut last_store: Vec<Option<u64>> = vec![None; num_cores];
    for (i, x) in stream.iter().enumerate() {
        let c = assign[i];
        let fix = |x: &ExecInst, core: u8| -> ExecInst {
            let mut y = *x;
            y.core = core as usize;
            for dep in y.deps.iter_mut().flatten() {
                dep.cross = !available_on(dep.producer as usize, core);
            }
            if let Some(md) = y.mem_dep.as_mut() {
                md.cross = assign[md.store as usize] != core;
            }
            y
        };
        let mut primary = fix(x, c);
        primary.sends = send_to[i] != 0;
        out.streams[c as usize].push(primary);
        out.stats.insts[c as usize] += 1;
        let mut mask = replica_on[i];
        while mask != 0 {
            let other = mask.trailing_zeros() as u8;
            mask &= mask - 1;
            let mut replica = fix(x, other);
            replica.replica = true;
            replica.sends = false;
            out.streams[other as usize].push(replica);
            out.stats.replicated += 1;
        }
        if x.is_load() {
            // Youngest older store on any *other* core.
            let barrier = last_store
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != c as usize)
                .filter_map(|(_, &s)| s)
                .max();
            if let Some(b) = barrier {
                out.load_barriers[x.gseq as usize] = b;
            }
        }
        if x.is_store() {
            last_store[c as usize] = Some(x.gseq);
        }
    }
    out.assign = assign;
    out.replicated = replica_on.iter().map(|&m| m != 0).collect();
    out.replica_on = replica_on;
    out.send_targets = send_to;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program};
    use fgstp_ooo::build_exec_stream;

    fn stream(src: &str) -> Vec<ExecInst> {
        let p = assemble(src).unwrap();
        let t = trace_program(&p, 50_000).unwrap();
        build_exec_stream(t.insts())
    }

    /// `chains` completely independent chains interleaved.
    fn n_chains(chains: usize) -> Vec<ExecInst> {
        let mut src = String::new();
        for c in 0..chains {
            src.push_str(&format!("li x{}, 1\n", c + 1));
        }
        for _ in 0..50 {
            for c in 0..chains {
                src.push_str(&format!("add x{r}, x{r}, x{r}\n", r = c + 1));
            }
        }
        src.push_str("halt\n");
        stream(&src)
    }

    fn two_chains() -> Vec<ExecInst> {
        n_chains(2)
    }

    #[test]
    fn modn_alternates_chunks() {
        let s = two_chains();
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 4 },
                replication: false,
                balance_slack: 0.15,
            },
            2,
        );
        assert_eq!(&p.assign[0..8], &[0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn modn_cycles_through_all_cores() {
        let s = two_chains();
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 2 },
                replication: false,
                balance_slack: 0.15,
            },
            3,
        );
        assert_eq!(&p.assign[0..8], &[0, 0, 1, 1, 2, 2, 0, 0]);
        assert_eq!(p.num_cores(), 3);
    }

    #[test]
    fn greedy_separates_independent_chains() {
        let s = two_chains();
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::GreedyDep,
                replication: false,
                balance_slack: 0.15,
            },
            2,
        );
        // The two chains should mostly land on different cores, producing
        // very few cross deps.
        assert!(
            p.stats.comms_per_inst() < 0.1,
            "independent chains need almost no communication, got {}",
            p.stats.comms_per_inst()
        );
        let bal = p.stats.balance();
        assert!((0.3..=0.7).contains(&bal), "balance {bal}");
    }

    #[test]
    fn lookahead_beats_modn_on_cut() {
        let s = two_chains();
        let naive = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 4 },
                replication: false,
                balance_slack: 0.15,
            },
            2,
        );
        let smart = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::fgstp_default(),
                replication: false,
                balance_slack: 0.15,
            },
            2,
        );
        assert!(
            smart.stats.cross_reg_deps < naive.stats.cross_reg_deps,
            "lookahead {} should cut less than modn {}",
            smart.stats.cross_reg_deps,
            naive.stats.cross_reg_deps
        );
    }

    #[test]
    fn four_chains_spread_over_four_cores() {
        let s = n_chains(4);
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::fgstp_default(),
                replication: false,
                balance_slack: 0.2,
            },
            4,
        );
        // Four independent chains: every core gets real work and the cut
        // stays tiny.
        for (c, &n) in p.stats.insts.iter().enumerate() {
            assert!(n > 0, "core {c} got no instructions: {:?}", p.stats.insts);
        }
        assert!(
            p.stats.comms_per_inst() < 0.1,
            "independent chains need almost no communication, got {}",
            p.stats.comms_per_inst()
        );
    }

    #[test]
    fn replication_reduces_communications() {
        // One shared cheap producer feeding both chains every iteration.
        let mut src = String::from("li x1, 1\nli x2, 1\nli x3, 3\n");
        for _ in 0..50 {
            src.push_str("li x3, 5\nadd x1, x1, x3\nadd x2, x2, x3\n");
        }
        src.push_str("halt\n");
        let s = stream(&src);
        let without = partition_stream(
            &s,
            &PartitionConfig {
                replication: false,
                ..PartitionConfig::default()
            },
            2,
        );
        let with = partition_stream(
            &s,
            &PartitionConfig {
                replication: true,
                ..PartitionConfig::default()
            },
            2,
        );
        assert!(with.stats.replicated > 0, "the shared li should replicate");
        assert!(
            with.stats.cross_reg_deps < without.stats.cross_reg_deps,
            "replication should remove communications: {} vs {}",
            with.stats.cross_reg_deps,
            without.stats.cross_reg_deps
        );
    }

    #[test]
    fn replicas_appear_in_both_streams_in_order() {
        let s = two_chains();
        let p = partition_stream(&s, &PartitionConfig::default(), 2);
        let total: usize = p.streams.iter().map(Vec::len).sum();
        assert_eq!(total as u64, s.len() as u64 + p.stats.replicated);
        for st in &p.streams {
            for w in st.windows(2) {
                assert!(
                    w[0].gseq < w[1].gseq,
                    "per-core streams stay in global order"
                );
            }
        }
    }

    #[test]
    fn cross_flags_match_assignment() {
        let s = two_chains();
        for n in [2usize, 3] {
            let p = partition_stream(&s, &PartitionConfig::default(), n);
            for (core, st) in p.streams.iter().enumerate() {
                for x in st {
                    for dep in x.deps.iter().flatten() {
                        let prod = dep.producer as usize;
                        let local = p.assign[prod] as usize == core
                            || p.replica_on[prod] & (1 << core) != 0;
                        assert_eq!(dep.cross, !local, "inst {} dep {}", x.gseq, dep.producer);
                    }
                }
            }
        }
    }

    #[test]
    fn load_barriers_point_to_older_remote_stores() {
        let src = r#"
            li x1, 0x100
            li x2, 1
            sd x2, 0(x1)
            sd x2, 8(x1)
            ld x3, 0(x1)
            ld x4, 8(x1)
            halt
        "#;
        let s = stream(src);
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 3 },
                replication: false,
                balance_slack: 0.15,
            },
            2,
        );
        // chunk 3: seqs 0,1,2 on core 0; 3,4,5 on core 1.
        // Load 4 (core 1) has older store 2 on core 0 -> barrier.
        assert_eq!(p.load_barriers[4], 2);
        for (load, &store) in p.load_barriers.iter().enumerate() {
            if store == u64::MAX {
                continue;
            }
            assert!(store < load as u64);
            assert_ne!(p.assign[store as usize], p.assign[load]);
        }
    }

    #[test]
    fn sends_marked_only_for_remote_consumers() {
        let s = two_chains();
        let p = partition_stream(&s, &PartitionConfig::default(), 2);
        // Count sends in streams and verify every cross dep has a sending
        // producer targeting the consumer's core.
        let mut senders = std::collections::HashSet::new();
        for st in &p.streams {
            for x in st {
                if x.sends {
                    senders.insert(x.gseq);
                }
            }
        }
        for (core, st) in p.streams.iter().enumerate() {
            for x in st {
                for dep in x.deps.iter().flatten() {
                    if dep.cross {
                        assert!(
                            senders.contains(&dep.producer),
                            "cross dep on {} lacks a sender",
                            dep.producer
                        );
                        assert_ne!(
                            p.send_targets[dep.producer as usize] & (1 << core),
                            0,
                            "producer {} does not target core {core}",
                            dep.producer
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_core_partition_is_trivial() {
        let s = two_chains();
        let p = partition_stream(&s, &PartitionConfig::default(), 1);
        assert_eq!(p.num_cores(), 1);
        assert_eq!(p.streams[0].len(), s.len());
        assert!(p.assign.iter().all(|&c| c == 0));
        assert_eq!(p.stats.cross_reg_deps, 0);
        assert_eq!(p.stats.replicated, 0);
        assert!(p.load_barriers.iter().all(|&b| b == u64::MAX));
        assert!(p.send_targets.iter().all(|&m| m == 0));
    }

    #[test]
    fn empty_stream_partitions_to_empty() {
        let p = partition_stream(&[], &PartitionConfig::default(), 2);
        assert!(p.streams.iter().all(Vec::is_empty));
        assert_eq!(p.stats.total_insts(), 0);
        assert_eq!(p.stats.cross_reg_deps, 0);
    }

    #[test]
    #[should_panic(expected = "num_cores")]
    fn zero_cores_is_rejected() {
        partition_stream(&[], &PartitionConfig::default(), 0);
    }

    #[test]
    fn uniform_capacities_reproduce_unweighted_partition_exactly() {
        let s = n_chains(4);
        for n in [2usize, 3, 4] {
            for policy in [
                PartitionPolicy::fgstp_default(),
                PartitionPolicy::GreedyDep,
                PartitionPolicy::ModN { chunk: 4 },
            ] {
                let cfg = PartitionConfig {
                    policy,
                    ..PartitionConfig::default()
                };
                let plain = partition_stream(&s, &cfg, n);
                let weighted = partition_stream_weighted(&s, &cfg, &vec![3; n]);
                assert_eq!(plain.assign, weighted.assign, "{policy:?} n={n}");
                assert_eq!(plain.stats, weighted.stats);
            }
        }
    }

    #[test]
    fn wide_core_absorbs_more_of_the_balance_points() {
        let s = n_chains(6);
        let cfg = PartitionConfig {
            replication: false,
            ..PartitionConfig::default()
        };
        let even = partition_stream_weighted(&s, &cfg, &[1, 1]);
        let skewed = partition_stream_weighted(&s, &cfg, &[3, 1]);
        assert!(
            skewed.stats.insts[0] > even.stats.insts[0],
            "a 3x-capacity core 0 must take more instructions: {:?} vs {:?}",
            skewed.stats.insts,
            even.stats.insts
        );
    }

    #[test]
    #[should_panic(expected = "capacities must be > 0")]
    fn zero_capacity_is_rejected() {
        partition_stream_weighted(&[], &PartitionConfig::default(), &[1, 0]);
    }
}
