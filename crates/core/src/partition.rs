//! Instruction-granularity partitioning of a single thread across two
//! cores — the heart of Fg-STP.
//!
//! The partitioner consumes the annotated execution stream and produces two
//! per-core streams plus the communication/replication annotations the
//! timing machine needs. Three policies are provided:
//!
//! * [`PartitionPolicy::ModN`] — a naive round-robin chunk baseline;
//! * [`PartitionPolicy::GreedyDep`] — classic online dependence-based
//!   steering (assign each instruction to the core that produces its
//!   operands, with a load-balance guard), the policy family of clustered
//!   and DMT-style designs;
//! * [`PartitionPolicy::SliceLookahead`] — the Fg-STP policy: over a large
//!   lookahead window, seed the cores with the window's critical chain,
//!   grow both partitions by dependence affinity, then run boundary
//!   refinement passes that migrate instructions when doing so removes
//!   more communication than it adds, subject to a balance constraint.
//!
//! Replication (when enabled) runs after assignment: a cheap single-cycle
//! producer whose value is consumed on the other core is cloned there
//! instead of communicated, whenever its own operands are already
//! available on that core.

use std::collections::HashMap;

use fgstp_isa::InstClass;
use fgstp_ooo::ExecInst;

use crate::depgraph::DepGraph;

/// Partitioning policy selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionPolicy {
    /// Alternate chunks of `chunk` instructions between the cores.
    ModN {
        /// Chunk size in instructions.
        chunk: usize,
    },
    /// Online greedy dependence steering with a balance guard.
    GreedyDep,
    /// Fg-STP slice-based lookahead partitioning.
    SliceLookahead {
        /// Lookahead window size in instructions.
        window: usize,
        /// Boundary-refinement passes per window.
        refine_passes: usize,
    },
}

impl PartitionPolicy {
    /// The paper's default policy: 256-instruction lookahead, two
    /// refinement passes.
    pub fn fgstp_default() -> PartitionPolicy {
        PartitionPolicy::SliceLookahead {
            window: 256,
            refine_passes: 2,
        }
    }
}

/// Partitioner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Assignment policy.
    pub policy: PartitionPolicy,
    /// Whether cheap producers are replicated instead of communicated.
    pub replication: bool,
    /// Maximum tolerated per-window weight imbalance, as a fraction.
    pub balance_slack: f64,
}

impl Default for PartitionConfig {
    fn default() -> PartitionConfig {
        PartitionConfig {
            policy: PartitionPolicy::fgstp_default(),
            replication: true,
            balance_slack: 0.15,
        }
    }
}

/// Summary statistics of one partitioning.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartitionStats {
    /// Primary instructions assigned to each core.
    pub insts: [u64; 2],
    /// Instructions replicated onto the other core.
    pub replicated: u64,
    /// Register dependences that cross the cores (communications).
    pub cross_reg_deps: u64,
    /// Load→store memory dependences that cross the cores.
    pub cross_mem_deps: u64,
}

impl PartitionStats {
    /// Fraction of instructions assigned to core 0.
    pub fn balance(&self) -> f64 {
        let total = (self.insts[0] + self.insts[1]) as f64;
        if total == 0.0 {
            0.5
        } else {
            self.insts[0] as f64 / total
        }
    }

    /// Communications per committed instruction.
    pub fn comms_per_inst(&self) -> f64 {
        let total = (self.insts[0] + self.insts[1]) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.cross_reg_deps as f64 / total
        }
    }
}

/// A partitioned execution stream, ready for the dual-core machine.
#[derive(Debug, Clone, Default)]
pub struct PartitionedStream {
    /// Per-core instruction streams (replicas included, in global order).
    pub streams: [Vec<ExecInst>; 2],
    /// Core assignment per global sequence number.
    pub assign: Vec<u8>,
    /// Whether each instruction has a replica on the other core.
    pub replicated: Vec<bool>,
    /// For every load, the youngest older store assigned to the *other*
    /// core (the cross-core ordering barrier used when dependence
    /// speculation is disabled).
    pub load_barriers: HashMap<u64, u64>,
    /// Summary statistics.
    pub stats: PartitionStats,
}

/// Partitions `stream` across two cores according to `cfg`.
pub fn partition_stream(stream: &[ExecInst], cfg: &PartitionConfig) -> PartitionedStream {
    let assign = match cfg.policy {
        PartitionPolicy::ModN { chunk } => assign_modn(stream, chunk.max(1)),
        PartitionPolicy::GreedyDep => assign_greedy(stream),
        PartitionPolicy::SliceLookahead {
            window,
            refine_passes,
        } => assign_lookahead(stream, window.max(8), refine_passes, cfg.balance_slack),
    };
    let replicated = if cfg.replication {
        plan_replication(stream, &assign)
    } else {
        vec![false; stream.len()]
    };
    materialize(stream, assign, replicated)
}

fn assign_modn(stream: &[ExecInst], chunk: usize) -> Vec<u8> {
    (0..stream.len()).map(|i| ((i / chunk) % 2) as u8).collect()
}

fn assign_greedy(stream: &[ExecInst]) -> Vec<u8> {
    let mut assign = vec![0u8; stream.len()];
    let mut counts = [0i64; 2];
    const MAX_IMBALANCE: i64 = 24;
    for (i, x) in stream.iter().enumerate() {
        let mut votes = [0i64; 2];
        for dep in x.deps.iter().flatten() {
            let p = dep.producer as usize;
            if p < i {
                votes[assign[p] as usize] += 2;
            }
        }
        if let Some(md) = x.mem_dep {
            let p = md.store as usize;
            if p < i {
                votes[assign[p] as usize] += 1;
            }
        }
        let preferred = if votes[1] > votes[0] { 1usize } else { 0 };
        let other = 1 - preferred;
        let c = if counts[preferred] - counts[other] > MAX_IMBALANCE {
            other
        } else {
            preferred
        };
        assign[i] = c as u8;
        counts[c] += 1;
    }
    assign
}

/// Computes the transitive *replicable closure*: an instruction is
/// replicable when it is a single-cycle integer ALU operation whose
/// operands are themselves replicable (or constants). These are the cheap
/// address/induction chains Fg-STP clones onto both cores instead of
/// communicating, so the partitioner treats their values as available
/// everywhere.
fn replicable_closure(stream: &[ExecInst]) -> Vec<bool> {
    let mut replicable = vec![false; stream.len()];
    for (i, x) in stream.iter().enumerate() {
        if x.class() != InstClass::IntAlu {
            continue;
        }
        replicable[i] = x
            .deps
            .iter()
            .flatten()
            .all(|dep| replicable[dep.producer as usize]);
    }
    replicable
}

fn assign_lookahead(
    stream: &[ExecInst],
    window: usize,
    refine_passes: usize,
    balance_slack: f64,
) -> Vec<u8> {
    let replicable = replicable_closure(stream);
    let mut assign = vec![0u8; stream.len()];
    let mut base = 0;
    while base < stream.len() {
        let end = (base + window).min(stream.len());
        let win = &stream[base..end];
        let g = DepGraph::build(win);
        let local = assign_window(
            win,
            &g,
            &assign[..base],
            base,
            &replicable,
            refine_passes,
            balance_slack,
        );
        assign[base..end].copy_from_slice(&local);
        base = end;
    }
    assign
}

/// Assigns one window: chain-following placement seeded by the two longest
/// disjoint dependence chains, plus boundary refinement.
///
/// Placement follows the *critical producer*: an instruction goes to the
/// core that produces its latest-arriving non-replicable operand, so
/// serial chains never absorb queue latency. Instructions whose operands
/// are all replicable (or absent) start new chains on the less-loaded
/// core — this is where the load balance between the cores comes from.
fn assign_window(
    win: &[ExecInst],
    g: &DepGraph,
    prior: &[u8],
    base: usize,
    replicable: &[bool],
    refine_passes: usize,
    balance_slack: f64,
) -> Vec<u8> {
    let n = win.len();
    let mut assign = vec![u8::MAX; n];
    let mut load = [0u64; 2];
    let depth = g.depth_from_sources();
    // A producer whose value is free everywhere does not constrain
    // placement.
    let effective = |p_global: usize| !replicable[p_global];

    // Seed the two longest disjoint chains, one per core.
    let chain0 = g.critical_path();
    let mut excluded = vec![false; n];
    for &i in &chain0 {
        assign[i] = 0;
        load[0] += g.weight(i);
        excluded[i] = true;
    }
    for &i in &g.longest_chain(&excluded) {
        assign[i] = 1;
        load[1] += g.weight(i);
    }

    // Chain-following growth, in program order (every in-window producer
    // of node `i` is already assigned when `i` is reached).
    //
    // Three placement cases:
    // 1. a node with a non-replicable (effective) producer follows its
    //    deepest such producer — serial chains never absorb queue latency;
    // 2. a replicable node follows its own chain (deepest producer of any
    //    kind) so induction/address chains stay cohesive — replicas are
    //    created later only where actually needed;
    // 3. a non-replicable node fed only by replicable chains (a load off
    //    an induction variable, the head of a fresh computation) is a
    //    *balance point*: it starts on the less-loaded core. This is
    //    where Fg-STP's parallelism comes from.
    for i in 0..n {
        if assign[i] != u8::MAX {
            continue;
        }
        let deepest = |only_effective: bool| -> Option<(u64, usize)> {
            let mut best: Option<(u64, usize)> = None;
            for &p in g.preds(i) {
                if (!only_effective || effective(base + p))
                    && best.is_none_or(|(d, _)| depth[p] > d)
                {
                    best = Some((depth[p], assign[p] as usize));
                }
            }
            best
        };
        let external = |only_effective: bool| -> Option<usize> {
            win[i]
                .deps
                .iter()
                .flatten()
                .map(|d| d.producer as usize)
                .filter(|&p| p < base && (!only_effective || effective(p)))
                .max()
                .map(|p| prior[p] as usize)
        };
        let c = if let Some((_, c)) = deepest(true) {
            c
        } else if let Some(c) = external(true) {
            // Loop-carried chain continuity across windows.
            c
        } else if replicable[base + i] {
            // Keep replicable chains cohesive wherever their own chain
            // lives; fall back to the less-loaded core for chain heads.
            deepest(false)
                .map(|(_, c)| c)
                .or_else(|| external(false))
                .unwrap_or(usize::from(load[1] < load[0]))
        } else {
            // A fresh computation rooted only in replicable values: start
            // it on the less-loaded core.
            usize::from(load[1] < load[0])
        };
        assign[i] = c as u8;
        load[c] += g.weight(i);
    }

    // Boundary refinement: migrate nodes whose effective cross edges
    // outnumber their effective local edges, within the balance slack.
    let total: u64 = (0..n).map(|i| g.weight(i)).sum();
    let slack = ((total as f64 * balance_slack) as u64).max(2 * g.weight(0).max(1));
    for _ in 0..refine_passes {
        let mut changed = false;
        for i in 0..n {
            let here = assign[i] as usize;
            let there = 1 - here;
            let mut local_edges = 0i64;
            let mut cross_edges = 0i64;
            for &p in g.preds(i) {
                if !effective(base + p) {
                    continue;
                }
                if assign[p] as usize == here {
                    local_edges += 1;
                } else {
                    cross_edges += 1;
                }
            }
            for &s in g.succs(i) {
                if !effective(base + i) {
                    continue;
                }
                if assign[s] as usize == here {
                    local_edges += 1;
                } else {
                    cross_edges += 1;
                }
            }
            for dep in win[i].deps.iter().flatten() {
                let p = dep.producer as usize;
                if p < base && effective(p) {
                    if prior[p] as usize == here {
                        local_edges += 1;
                    } else {
                        cross_edges += 1;
                    }
                }
            }
            let gain = cross_edges - local_edges;
            let w = g.weight(i);
            let balanced_after =
                load[there] + w <= load[here].saturating_sub(w).max(load[there]) + slack;
            if gain > 0 && balanced_after {
                assign[i] = there as u8;
                load[here] -= w;
                load[there] += w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

/// Decides which instructions to replicate: replicable producers (cheap
/// integer chains — see [`replicable_closure`]) whose value is needed on
/// the other core, either by a remote consumer directly or transitively by
/// a replica of one of their consumers.
///
/// The pass runs in reverse program order so a whole address/induction
/// chain replicates together: when a consumer's replica needs its
/// producer remotely, the producer (if replicable) replicates too.
fn plan_replication(stream: &[ExecInst], assign: &[u8]) -> Vec<bool> {
    let replicable = replicable_closure(stream);
    let mut replicated = vec![false; stream.len()];
    // needed_on[p][c]: p's value must be locally available on core c.
    let mut needed_on = vec![[false; 2]; stream.len()];
    for (i, x) in stream.iter().enumerate().rev() {
        let home = assign[i] as usize;
        let away = 1 - home;
        if needed_on[i][away] && replicable[i] {
            replicated[i] = true;
        }
        // The primary copy executes on `home`; a replica also executes on
        // `away`. Each copy needs the operands on its own core.
        for dep in x.deps.iter().flatten() {
            let p = dep.producer as usize;
            needed_on[p][home] = true;
            if replicated[i] {
                needed_on[p][away] = true;
            }
        }
    }
    replicated
}

/// Builds the two per-core streams with final cross/sends annotations.
fn materialize(stream: &[ExecInst], assign: Vec<u8>, replicated: Vec<bool>) -> PartitionedStream {
    let mut out = PartitionedStream {
        streams: [Vec::new(), Vec::new()],
        load_barriers: HashMap::new(),
        stats: PartitionStats::default(),
        ..Default::default()
    };
    // `sends[p]`: producer p's value is consumed remotely without a replica.
    let mut sends = vec![false; stream.len()];
    let available_on = |p: usize, core: u8| assign[p] == core || replicated[p];
    for (i, x) in stream.iter().enumerate() {
        let c = assign[i];
        for dep in x.deps.iter().flatten() {
            let p = dep.producer as usize;
            if !available_on(p, c) {
                sends[p] = true;
                out.stats.cross_reg_deps += 1;
            }
        }
        if let Some(md) = x.mem_dep {
            if assign[md.store as usize] != c {
                out.stats.cross_mem_deps += 1;
            }
        }
    }
    let mut last_store: [Option<u64>; 2] = [None, None];
    for (i, x) in stream.iter().enumerate() {
        let c = assign[i];
        let fix = |x: &ExecInst, core: u8| -> ExecInst {
            let mut y = *x;
            y.core = core as usize;
            for dep in y.deps.iter_mut().flatten() {
                dep.cross = !available_on(dep.producer as usize, core);
            }
            if let Some(md) = y.mem_dep.as_mut() {
                md.cross = assign[md.store as usize] != core;
            }
            y
        };
        let mut primary = fix(x, c);
        primary.sends = sends[i];
        out.streams[c as usize].push(primary);
        out.stats.insts[c as usize] += 1;
        if replicated[i] {
            let other = 1 - c;
            let mut replica = fix(x, other);
            replica.replica = true;
            replica.sends = false;
            out.streams[other as usize].push(replica);
            out.stats.replicated += 1;
        }
        if x.is_load() {
            if let Some(barrier) = last_store[1 - c as usize] {
                out.load_barriers.insert(x.gseq, barrier);
            }
        }
        if x.is_store() {
            last_store[c as usize] = Some(x.gseq);
        }
    }
    out.assign = assign;
    out.replicated = replicated;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program};
    use fgstp_ooo::build_exec_stream;

    fn stream(src: &str) -> Vec<ExecInst> {
        let p = assemble(src).unwrap();
        let t = trace_program(&p, 50_000).unwrap();
        build_exec_stream(t.insts())
    }

    /// Two completely independent chains interleaved.
    fn two_chains() -> Vec<ExecInst> {
        let mut src = String::from("li x1, 1\nli x2, 1\n");
        for _ in 0..50 {
            src.push_str("add x1, x1, x1\nadd x2, x2, x2\n");
        }
        src.push_str("halt\n");
        stream(&src)
    }

    #[test]
    fn modn_alternates_chunks() {
        let s = two_chains();
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 4 },
                replication: false,
                balance_slack: 0.15,
            },
        );
        assert_eq!(&p.assign[0..8], &[0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn greedy_separates_independent_chains() {
        let s = two_chains();
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::GreedyDep,
                replication: false,
                balance_slack: 0.15,
            },
        );
        // The two chains should mostly land on different cores, producing
        // very few cross deps.
        assert!(
            p.stats.comms_per_inst() < 0.1,
            "independent chains need almost no communication, got {}",
            p.stats.comms_per_inst()
        );
        let bal = p.stats.balance();
        assert!((0.3..=0.7).contains(&bal), "balance {bal}");
    }

    #[test]
    fn lookahead_beats_modn_on_cut() {
        let s = two_chains();
        let naive = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 4 },
                replication: false,
                balance_slack: 0.15,
            },
        );
        let smart = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::fgstp_default(),
                replication: false,
                balance_slack: 0.15,
            },
        );
        assert!(
            smart.stats.cross_reg_deps < naive.stats.cross_reg_deps,
            "lookahead {} should cut less than modn {}",
            smart.stats.cross_reg_deps,
            naive.stats.cross_reg_deps
        );
    }

    #[test]
    fn replication_reduces_communications() {
        // One shared cheap producer feeding both chains every iteration.
        let mut src = String::from("li x1, 1\nli x2, 1\nli x3, 3\n");
        for _ in 0..50 {
            src.push_str("li x3, 5\nadd x1, x1, x3\nadd x2, x2, x3\n");
        }
        src.push_str("halt\n");
        let s = stream(&src);
        let without = partition_stream(
            &s,
            &PartitionConfig {
                replication: false,
                ..PartitionConfig::default()
            },
        );
        let with = partition_stream(
            &s,
            &PartitionConfig {
                replication: true,
                ..PartitionConfig::default()
            },
        );
        assert!(with.stats.replicated > 0, "the shared li should replicate");
        assert!(
            with.stats.cross_reg_deps < without.stats.cross_reg_deps,
            "replication should remove communications: {} vs {}",
            with.stats.cross_reg_deps,
            without.stats.cross_reg_deps
        );
    }

    #[test]
    fn replicas_appear_in_both_streams_in_order() {
        let s = two_chains();
        let p = partition_stream(&s, &PartitionConfig::default());
        let total: usize = p.streams.iter().map(Vec::len).sum();
        assert_eq!(total as u64, s.len() as u64 + p.stats.replicated);
        for st in &p.streams {
            for w in st.windows(2) {
                assert!(
                    w[0].gseq < w[1].gseq,
                    "per-core streams stay in global order"
                );
            }
        }
    }

    #[test]
    fn cross_flags_match_assignment() {
        let s = two_chains();
        let p = partition_stream(&s, &PartitionConfig::default());
        for (core, st) in p.streams.iter().enumerate() {
            for x in st {
                for dep in x.deps.iter().flatten() {
                    let prod = dep.producer as usize;
                    let local = p.assign[prod] as usize == core || p.replicated[prod];
                    assert_eq!(dep.cross, !local, "inst {} dep {}", x.gseq, dep.producer);
                }
            }
        }
    }

    #[test]
    fn load_barriers_point_to_older_remote_stores() {
        let src = r#"
            li x1, 0x100
            li x2, 1
            sd x2, 0(x1)
            sd x2, 8(x1)
            ld x3, 0(x1)
            ld x4, 8(x1)
            halt
        "#;
        let s = stream(src);
        let p = partition_stream(
            &s,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 3 },
                replication: false,
                balance_slack: 0.15,
            },
        );
        // chunk 3: seqs 0,1,2 on core 0; 3,4,5 on core 1.
        // Load 4 (core 1) has older store 2 on core 0 -> barrier.
        assert_eq!(p.load_barriers.get(&4), Some(&2));
        for (&load, &store) in &p.load_barriers {
            assert!(store < load);
            assert_ne!(p.assign[store as usize], p.assign[load as usize]);
        }
    }

    #[test]
    fn sends_marked_only_for_remote_consumers() {
        let s = two_chains();
        let p = partition_stream(&s, &PartitionConfig::default());
        // Count sends in streams and verify every cross dep has a sending
        // producer.
        let mut senders = std::collections::HashSet::new();
        for st in &p.streams {
            for x in st {
                if x.sends {
                    senders.insert(x.gseq);
                }
            }
        }
        for st in &p.streams {
            for x in st {
                for dep in x.deps.iter().flatten() {
                    if dep.cross {
                        assert!(
                            senders.contains(&dep.producer),
                            "cross dep on {} lacks a sender",
                            dep.producer
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_stream_partitions_to_empty() {
        let p = partition_stream(&[], &PartitionConfig::default());
        assert!(p.streams[0].is_empty() && p.streams[1].is_empty());
        assert_eq!(p.stats, PartitionStats::default());
    }
}
