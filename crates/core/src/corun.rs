//! Multi-program co-run scenarios: independent workloads on disjoint core
//! sets of one machine, coupled through the shared levels of the memory
//! hierarchy.
//!
//! A [`CoRunPlan`] places one Fg-STP machine instance per program (a
//! single-core "machine" is the conventional core — the 1-core Fg-STP
//! machine is bit-identical to `run_single`) on consecutive core ranges of
//! one chip. The driver advances a single global cycle counter and steps
//! each active program's machine in fixed program order every cycle, so
//! shared-resource arbitration (L2 tags, L2 MSHRs, the optional
//! finite-bandwidth DRAM channel) sees requests in a deterministic
//! fixed-priority order among same-cycle requestors, with slots recycling
//! round-robin as they free — results are bit-identical regardless of how
//! many worker threads the surrounding harness uses, because a co-run is
//! always one job on one thread.
//!
//! Degenerate cases are exact by construction:
//!
//! * one program on all cores with [`CoRunContention::shared_unlimited`]
//!   runs against the same shared hierarchy a solo run uses, and is
//!   bit-identical to [`run_fgstp`](crate::run_fgstp);
//! * with [`CoRunContention::isolated`] every program gets a private
//!   hierarchy shaped exactly like its solo machine, and reproduces its
//!   solo cycle count exactly (co-scheduling without coupling).
//!
//! [`CoRunContention::shared`] adds the finite DRAM bandwidth model on top
//! of the shared L2 — the configuration the E16 interference experiments
//! use.

use fgstp_isa::DynInst;
use fgstp_mem::{DramBandwidth, Hierarchy, HierarchyConfig, HierarchyStats};
use fgstp_ooo::RunResult;

use crate::machine::{FgstpConfig, FgstpMachine, FgstpStats, PreparedProgram};

/// One co-running program: its machine shape and arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct CoRunProgram {
    /// The Fg-STP machine this program owns (its `num_cores` cores are a
    /// contiguous range of the chip).
    pub cfg: FgstpConfig,
    /// Global cycle the program arrives and starts executing.
    pub start_cycle: u64,
}

impl CoRunProgram {
    /// A program present from cycle 0.
    pub fn new(cfg: FgstpConfig) -> CoRunProgram {
        CoRunProgram {
            cfg,
            start_cycle: 0,
        }
    }

    /// A program arriving at `start_cycle`.
    pub fn arriving_at(cfg: FgstpConfig, start_cycle: u64) -> CoRunProgram {
        CoRunProgram { cfg, start_cycle }
    }
}

/// How the co-running programs couple through the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoRunContention {
    /// Whether the programs share one L2 (and its MSHR file). When false,
    /// every program gets a private hierarchy identical to its solo shape.
    pub shared_l2: bool,
    /// Finite DRAM bandwidth (requires `shared_l2`); `None` keeps the
    /// unlimited fixed-latency DRAM.
    pub dram: Option<DramBandwidth>,
}

impl CoRunContention {
    /// The standard contended configuration: shared L2 plus the default
    /// finite-bandwidth DRAM channel.
    pub fn shared() -> CoRunContention {
        CoRunContention {
            shared_l2: true,
            dram: Some(DramBandwidth::default()),
        }
    }

    /// Shared L2 only, unlimited DRAM: a lone program behaves bit-identically
    /// to its solo run.
    pub fn shared_unlimited() -> CoRunContention {
        CoRunContention {
            shared_l2: true,
            dram: None,
        }
    }

    /// No shared resources at all: per-program private hierarchies.
    pub fn isolated() -> CoRunContention {
        CoRunContention {
            shared_l2: false,
            dram: None,
        }
    }
}

/// A full co-run scenario: programs on disjoint core ranges plus the
/// contention model.
#[derive(Debug, Clone, PartialEq)]
pub struct CoRunPlan {
    /// The co-running programs, in chip core order (program 0 owns cores
    /// `0..k0`, program 1 owns `k0..k0+k1`, ...). The stepping order is
    /// also the fixed arbitration priority among same-cycle requests.
    pub programs: Vec<CoRunProgram>,
    /// Shared-resource coupling.
    pub contention: CoRunContention,
}

impl CoRunPlan {
    /// A contended plan ([`CoRunContention::shared`]) over `programs`.
    pub fn new(programs: Vec<CoRunProgram>) -> CoRunPlan {
        CoRunPlan {
            programs,
            contention: CoRunContention::shared(),
        }
    }

    /// Total chip cores across all programs.
    pub fn total_cores(&self) -> usize {
        self.programs.iter().map(|p| p.cfg.num_cores).sum()
    }

    /// The requestor (program) id per chip core.
    fn requestor_map(&self) -> Vec<usize> {
        let mut map = Vec::with_capacity(self.total_cores());
        for (p, prog) in self.programs.iter().enumerate() {
            map.extend(std::iter::repeat_n(p, prog.cfg.num_cores));
        }
        map
    }
}

/// One program's outcome inside a co-run.
#[derive(Debug, Clone)]
pub struct CoRunProgramResult {
    /// The program's timing result. `cycles` counts from its arrival to
    /// its own completion; `mem` is the program's slice of the hierarchy
    /// (its cores' L1s plus its requestor share of L2/DRAM).
    pub result: RunResult,
    /// Fg-STP machine statistics.
    pub stats: FgstpStats,
    /// Global cycle the program started.
    pub start_cycle: u64,
    /// Global cycle the program finished.
    pub finish_cycle: u64,
    /// First chip core the program owns.
    pub first_core: usize,
}

/// Outcome of a whole co-run.
#[derive(Debug, Clone)]
pub struct CoRunResult {
    /// Per-program results, in plan order.
    pub programs: Vec<CoRunProgramResult>,
    /// Global cycles until the last program finished.
    pub total_cycles: u64,
    /// Machine-wide hierarchy statistics (the shared hierarchy, or the
    /// merge of the per-program hierarchies when isolated).
    pub mem: HierarchyStats,
}

/// Runs `traces[i]` under `plan.programs[i]` on one machine; see the
/// [module docs](self) for the determinism and degeneracy contracts.
///
/// `base` supplies the cache geometries and DRAM latency; its `cores`
/// field is ignored (the plan dictates the chip's core count).
///
/// # Panics
///
/// Panics if `traces.len() != plan.programs.len()`, if the plan is empty,
/// or if a machine deadlocks (a model bug).
pub fn run_corun(traces: &[&[DynInst]], plan: &CoRunPlan, base: &HierarchyConfig) -> CoRunResult {
    assert_eq!(
        traces.len(),
        plan.programs.len(),
        "one trace per co-running program"
    );
    assert!(
        !plan.programs.is_empty(),
        "co-run needs at least one program"
    );
    if plan.contention.shared_l2 {
        run_corun_shared(traces, plan, base)
    } else {
        run_corun_isolated(traces, plan, base)
    }
}

/// Shared-hierarchy co-run: the lockstep global cycle loop.
fn run_corun_shared(
    traces: &[&[DynInst]],
    plan: &CoRunPlan,
    base: &HierarchyConfig,
) -> CoRunResult {
    let hcfg = HierarchyConfig {
        cores: plan.total_cores(),
        ..*base
    };
    let requestors = plan.requestor_map();
    let mut mem = Hierarchy::new_shared(&hcfg, &requestors, plan.contention.dram);

    let progs: Vec<PreparedProgram> = traces
        .iter()
        .zip(&plan.programs)
        .map(|(t, p)| PreparedProgram::new(t, &p.cfg))
        .collect();
    let mut first_core = Vec::with_capacity(plan.programs.len());
    let mut next = 0;
    for p in &plan.programs {
        first_core.push(next);
        next += p.cfg.num_cores;
    }
    let mut machines: Vec<FgstpMachine> = progs
        .iter()
        .zip(&plan.programs)
        .zip(&first_core)
        .map(|((prog, p), &base_core)| FgstpMachine::new(prog, &p.cfg, base_core))
        .collect();

    let mut finish: Vec<Option<u64>> = machines
        .iter()
        .zip(&plan.programs)
        // An empty program is finished the moment it arrives.
        .map(|(m, p)| m.done().then_some(p.start_cycle))
        .collect();
    let mut now = 0u64;
    while finish.iter().any(Option::is_none) {
        for (i, m) in machines.iter_mut().enumerate() {
            if finish[i].is_some() || now < plan.programs[i].start_cycle {
                continue;
            }
            m.step(now, &mut mem);
            if m.done() {
                finish[i] = Some(now + 1);
            }
        }
        now += 1;
    }

    let global = mem.stats();
    let total_cycles = finish.iter().map(|f| f.unwrap()).max().unwrap_or(0);
    let programs = machines
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            let start = plan.programs[i].start_cycle;
            let end = finish[i].unwrap();
            let cores = first_core[i]..first_core[i] + plan.programs[i].cfg.num_cores;
            let view = program_view(&global, cores, i);
            let (result, stats) = m.finish(end - start, view);
            CoRunProgramResult {
                result,
                stats,
                start_cycle: start,
                finish_cycle: end,
                first_core: first_core[i],
            }
        })
        .collect();
    CoRunResult {
        programs,
        total_cycles,
        mem: global,
    }
}

/// Isolated co-run: private hierarchies, so each program reproduces its
/// solo cycle count exactly; only the schedule (arrival offsets) is shared.
fn run_corun_isolated(
    traces: &[&[DynInst]],
    plan: &CoRunPlan,
    base: &HierarchyConfig,
) -> CoRunResult {
    let mut first_core = 0;
    let mut merged = HierarchyStats::default();
    let mut total_cycles = 0;
    let mut programs = Vec::with_capacity(plan.programs.len());
    for (trace, p) in traces.iter().zip(&plan.programs) {
        let hcfg = HierarchyConfig {
            cores: p.cfg.num_cores,
            ..*base
        };
        let (result, stats) = crate::machine::run_fgstp(trace, &p.cfg, &hcfg);
        let finish = p.start_cycle + result.cycles;
        total_cycles = total_cycles.max(finish);
        merged.merge(&result.mem);
        programs.push(CoRunProgramResult {
            result,
            stats,
            start_cycle: p.start_cycle,
            finish_cycle: finish,
            first_core,
        });
        first_core += p.cfg.num_cores;
    }
    CoRunResult {
        programs,
        total_cycles,
        mem: merged,
    }
}

/// A program's slice of the shared hierarchy: its cores' L1s plus its
/// requestor share of the L2/DRAM traffic. Merging all program views with
/// [`HierarchyStats::merge`] reconstructs the machine-wide view.
fn program_view(
    global: &HierarchyStats,
    cores: std::ops::Range<usize>,
    requestor: usize,
) -> HierarchyStats {
    let r = global.by_requestor[requestor];
    HierarchyStats {
        l1i: global.l1i[cores.clone()].to_vec(),
        l1d: global.l1d[cores].to_vec(),
        l2: r.l2,
        invalidations: r.invalidations,
        dram: r.dram,
        by_requestor: vec![r],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program, Trace};

    fn trace(src: &str) -> Trace {
        let p = assemble(src).unwrap();
        trace_program(&p, 200_000).unwrap()
    }

    /// A pointer-chase-ish loop with a data footprint: misses in L1/L2.
    fn memory_trace(lines: u64) -> Trace {
        let src = format!(
            r#"
                li x1, 0x10000
                li x9, {lines}
            loop:
                ld x3, 0(x1)
                add x4, x3, x9
                addi x1, x1, 256
                addi x9, x9, -1
                bne x9, x0, loop
                halt
            "#
        );
        trace(&src)
    }

    fn compute_trace() -> Trace {
        let mut src = String::from("li x1, 1\nli x2, 1\nli x9, 120\n");
        src.push_str(
            r#"
            loop:
                add  x1, x1, x1
                xor  x3, x1, x9
                add  x2, x2, x2
                xor  x4, x2, x9
                addi x9, x9, -1
                bne  x9, x0, loop
                halt
            "#,
        );
        trace(&src)
    }

    #[test]
    fn lone_program_on_all_cores_is_bit_identical_to_solo() {
        let t = memory_trace(200);
        let cfg = FgstpConfig::small();
        let hcfg = HierarchyConfig::small(2);
        let (solo, solo_stats) = crate::machine::run_fgstp(t.insts(), &cfg, &hcfg);
        let plan = CoRunPlan {
            programs: vec![CoRunProgram::new(cfg)],
            contention: CoRunContention::shared_unlimited(),
        };
        let co = run_corun(&[t.insts()], &plan, &hcfg);
        let p = &co.programs[0];
        assert_eq!(p.result.cycles, solo.cycles, "cycles must be bit-identical");
        assert_eq!(p.result.committed, solo.committed);
        assert_eq!(p.result.cores, solo.cores);
        assert_eq!(p.result.branches, solo.branches);
        assert_eq!(p.result.mem.l2, solo.mem.l2);
        assert_eq!(p.result.mem.l1d, solo.mem.l1d);
        assert_eq!(p.stats.partition, solo_stats.partition);
        assert_eq!(co.total_cycles, solo.cycles);
    }

    #[test]
    fn isolated_corunners_reproduce_solo_cycles_exactly() {
        let a = memory_trace(150);
        let b = compute_trace();
        let cfg = FgstpConfig::small();
        let hcfg = HierarchyConfig::small(2);
        let (solo_a, _) = crate::machine::run_fgstp(a.insts(), &cfg, &hcfg);
        let (solo_b, _) = crate::machine::run_fgstp(b.insts(), &cfg, &hcfg);
        let plan = CoRunPlan {
            programs: vec![
                CoRunProgram::new(cfg.clone()),
                CoRunProgram::new(cfg.clone()),
            ],
            contention: CoRunContention::isolated(),
        };
        let co = run_corun(&[a.insts(), b.insts()], &plan, &hcfg);
        assert_eq!(co.programs[0].result.cycles, solo_a.cycles);
        assert_eq!(co.programs[1].result.cycles, solo_b.cycles);
        assert_eq!(co.total_cycles, solo_a.cycles.max(solo_b.cycles));
        // The machine-wide view concatenates both programs' L1 sets.
        assert_eq!(co.mem.l1d.len(), 4);
    }

    #[test]
    fn shared_l2_contention_slows_corunners_down() {
        let t = memory_trace(400);
        let cfg = FgstpConfig::small();
        let hcfg = HierarchyConfig::small(2);
        let solo = {
            let plan = CoRunPlan {
                programs: vec![CoRunProgram::new(cfg.clone())],
                contention: CoRunContention::shared(),
            };
            run_corun(&[t.insts()], &plan, &hcfg).programs[0]
                .result
                .cycles
        };
        let plan = CoRunPlan {
            programs: vec![
                CoRunProgram::new(cfg.clone()),
                CoRunProgram::new(cfg.clone()),
            ],
            contention: CoRunContention::shared(),
        };
        let co = run_corun(&[t.insts(), t.insts()], &plan, &hcfg);
        assert!(
            co.programs.iter().any(|p| p.result.cycles > solo),
            "two memory-bound co-runners must contend: solo {} vs {:?}",
            solo,
            co.programs
                .iter()
                .map(|p| p.result.cycles)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corun_is_deterministic_across_repeats() {
        let a = memory_trace(120);
        let b = compute_trace();
        let plan = CoRunPlan::new(vec![
            CoRunProgram::new(FgstpConfig::small()),
            CoRunProgram::new(FgstpConfig::small()),
        ]);
        let hcfg = HierarchyConfig::small(2);
        let r1 = run_corun(&[a.insts(), b.insts()], &plan, &hcfg);
        let r2 = run_corun(&[a.insts(), b.insts()], &plan, &hcfg);
        for (p1, p2) in r1.programs.iter().zip(&r2.programs) {
            assert_eq!(p1.result.cycles, p2.result.cycles);
            assert_eq!(p1.result.mem.l2, p2.result.mem.l2);
        }
        assert_eq!(r1.total_cycles, r2.total_cycles);
    }

    #[test]
    fn late_arrival_shifts_a_programs_window() {
        let b = compute_trace();
        let plan = CoRunPlan {
            programs: vec![CoRunProgram::arriving_at(FgstpConfig::small(), 500)],
            contention: CoRunContention::shared_unlimited(),
        };
        let hcfg = HierarchyConfig::small(2);
        let co = run_corun(&[b.insts()], &plan, &hcfg);
        let p = &co.programs[0];
        assert_eq!(p.start_cycle, 500);
        assert_eq!(p.finish_cycle, 500 + p.result.cycles);
        assert_eq!(co.total_cycles, p.finish_cycle);
    }

    #[test]
    fn program_views_merge_back_to_the_machine_view() {
        let a = memory_trace(100);
        let b = compute_trace();
        let plan = CoRunPlan::new(vec![
            CoRunProgram::new(FgstpConfig::small()),
            CoRunProgram::new(FgstpConfig::small()),
        ]);
        let co = run_corun(&[a.insts(), b.insts()], &plan, &HierarchyConfig::small(2));
        let mut merged = co.programs[0].result.mem.clone();
        merged.merge(&co.programs[1].result.mem);
        assert_eq!(merged.l2, co.mem.l2);
        assert_eq!(merged.dram, co.mem.dram);
        assert_eq!(merged.l1d, co.mem.l1d);
        assert_eq!(merged.invalidations, co.mem.invalidations);
    }

    #[test]
    fn heterogeneous_corun_commits_everything() {
        use fgstp_ooo::CoreConfig;
        let a = compute_trace();
        let b = memory_trace(80);
        let wide =
            FgstpConfig::small().with_per_core(vec![CoreConfig::medium(), CoreConfig::small()]);
        let narrow = FgstpConfig::small().with_cores(1);
        let plan = CoRunPlan::new(vec![CoRunProgram::new(wide), CoRunProgram::new(narrow)]);
        let co = run_corun(&[a.insts(), b.insts()], &plan, &HierarchyConfig::small(2));
        assert_eq!(co.programs[0].result.committed, a.len() as u64);
        assert_eq!(co.programs[1].result.committed, b.len() as u64);
        assert_eq!(co.programs[1].first_core, 2);
    }

    #[test]
    #[should_panic(expected = "one trace per co-running program")]
    fn trace_count_mismatch_is_rejected() {
        let plan = CoRunPlan::new(vec![CoRunProgram::new(FgstpConfig::small())]);
        run_corun(&[], &plan, &HierarchyConfig::small(2));
    }
}
