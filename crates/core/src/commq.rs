//! Inter-core register communication queues.
//!
//! Fg-STP cores exchange register values through dedicated point-to-point
//! queues. Each directed edge has a fixed transfer latency, a per-cycle
//! bandwidth, and a finite capacity: when the queue is full, a new send
//! must wait for the oldest in-flight value to drain (producer-side
//! back-pressure).
//!
//! A [`CommFabric`] bundles the N·(N−1) directed-edge queues of an N-core
//! machine and aggregates their [`CommStats`]. On the paper's 2-core CMP
//! the fabric degenerates to the two point-to-point queues of the original
//! design.

/// Configuration of one communication direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// Cycles from send to availability at the consumer.
    pub latency: u64,
    /// Values accepted per cycle.
    pub bandwidth: u32,
    /// Maximum values in flight.
    pub capacity: usize,
}

impl Default for CommConfig {
    fn default() -> CommConfig {
        CommConfig {
            latency: 4,
            bandwidth: 2,
            capacity: 16,
        }
    }
}

/// Counter snapshot of one queue (or an aggregate of several queues).
///
/// Queues expose their counters through this struct so consumers never
/// hand-assemble tuples of `sends()`/`backpressure_cycles()` calls, and so
/// per-edge numbers can be merged into per-core or machine totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Values sent.
    pub sends: u64,
    /// Total cycles sends were delayed by bandwidth or capacity limits.
    pub backpressure_cycles: u64,
    /// Sum of queue occupancy sampled at each send (mean occupancy is
    /// `occupancy_sum / sends`; kept as a sum so aggregates stay exact).
    pub occupancy_sum: u64,
}

impl CommStats {
    /// Mean queue occupancy observed at send time (0 with no sends).
    pub fn mean_occupancy(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.sends as f64
        }
    }

    /// Accumulates `other` into `self` (aggregating several edges).
    pub fn merge(&mut self, other: &CommStats) {
        self.sends += other.sends;
        self.backpressure_cycles += other.backpressure_cycles;
        self.occupancy_sum += other.occupancy_sum;
    }
}

/// One direction of the inter-core communication fabric.
///
/// Sends must be issued in non-decreasing completion-time order (the
/// machine drains completions chronologically per core), which lets the
/// queue compute slot times incrementally.
#[derive(Debug, Clone)]
pub struct CommQueue {
    cfg: CommConfig,
    /// Delivery times of values still in flight.
    in_flight: std::collections::VecDeque<u64>,
    /// Cycle of the most recent send slot.
    slot_cycle: u64,
    /// Sends already placed in `slot_cycle`.
    slot_used: u32,
    sends: u64,
    /// Total cycles sends waited for bandwidth or capacity.
    backpressure_cycles: u64,
    /// Sum of queue occupancy sampled at each send (for mean occupancy).
    occupancy_sum: u64,
}

impl CommQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth or capacity is zero.
    pub fn new(cfg: CommConfig) -> CommQueue {
        assert!(cfg.bandwidth > 0, "queue bandwidth must be positive");
        assert!(cfg.capacity > 0, "queue capacity must be positive");
        CommQueue {
            cfg,
            in_flight: std::collections::VecDeque::new(),
            slot_cycle: 0,
            slot_used: 0,
            sends: 0,
            backpressure_cycles: 0,
            occupancy_sum: 0,
        }
    }

    /// Sends a value produced at `ready`; returns the cycle it becomes
    /// available to the consumer.
    ///
    pub fn send(&mut self, ready: u64) -> u64 {
        let mut slot = ready.max(self.slot_cycle);
        // Bandwidth: advance to the first cycle with a spare slot.
        if slot == self.slot_cycle && self.slot_used >= self.cfg.bandwidth {
            slot += 1;
        }
        // Capacity: wait for the oldest in-flight value to drain.
        while let Some(&oldest) = self.in_flight.front() {
            if oldest <= slot {
                self.in_flight.pop_front();
            } else if self.in_flight.len() >= self.cfg.capacity {
                slot = oldest;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        if slot != self.slot_cycle {
            self.slot_cycle = slot;
            self.slot_used = 0;
        }
        self.slot_used += 1;
        self.backpressure_cycles += slot - ready;
        self.occupancy_sum += self.in_flight.len() as u64;
        let delivery = slot + self.cfg.latency;
        self.in_flight.push_back(delivery);
        self.sends += 1;
        delivery
    }

    /// Number of values sent.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Total cycles sends were delayed by bandwidth or capacity limits.
    pub fn backpressure_cycles(&self) -> u64 {
        self.backpressure_cycles
    }

    /// Mean queue occupancy observed at send time.
    pub fn mean_occupancy(&self) -> f64 {
        self.stats().mean_occupancy()
    }

    /// Counter snapshot of this queue.
    pub fn stats(&self) -> CommStats {
        CommStats {
            sends: self.sends,
            backpressure_cycles: self.backpressure_cycles,
            occupancy_sum: self.occupancy_sum,
        }
    }
}

/// The full inter-core communication fabric of an N-core machine: one
/// [`CommQueue`] per directed core pair (N·(N−1) queues), all built from
/// the same [`CommConfig`].
///
/// With one core the fabric has no queues and every send panics; with two
/// cores it is exactly the paper's pair of point-to-point queues.
#[derive(Debug, Clone)]
pub struct CommFabric {
    cores: usize,
    /// Dense `from * cores + to` index; the diagonal is `None`.
    queues: Vec<Option<CommQueue>>,
}

impl CommFabric {
    /// Builds the fabric for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `cfg` is invalid (see
    /// [`CommQueue::new`]).
    pub fn new(cores: usize, cfg: CommConfig) -> CommFabric {
        assert!(cores >= 1, "a fabric needs at least one core");
        let queues = (0..cores * cores)
            .map(|i| (i / cores != i % cores).then(|| CommQueue::new(cfg)))
            .collect();
        CommFabric { cores, queues }
    }

    /// Number of cores the fabric connects.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Sends a value produced at `ready` from core `from` to core `to`;
    /// returns the cycle it becomes available at the consumer.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either index is out of range.
    pub fn send(&mut self, from: usize, to: usize, ready: u64) -> u64 {
        assert!(from < self.cores && to < self.cores, "core out of range");
        self.queues[from * self.cores + to]
            .as_mut()
            .expect("a core does not send to itself")
            .send(ready)
    }

    /// The queue of one directed edge, or `None` for the diagonal.
    pub fn edge(&self, from: usize, to: usize) -> Option<&CommQueue> {
        self.queues[from * self.cores + to].as_ref()
    }

    /// Aggregate statistics of every edge delivering *into* core `to`.
    pub fn inbound_stats(&self, to: usize) -> CommStats {
        let mut s = CommStats::default();
        for from in 0..self.cores {
            if let Some(q) = self.edge(from, to) {
                s.merge(&q.stats());
            }
        }
        s
    }

    /// Aggregate statistics of the whole fabric.
    pub fn total_stats(&self) -> CommStats {
        let mut s = CommStats::default();
        for q in self.queues.iter().flatten() {
            s.merge(&q.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(latency: u64, bandwidth: u32, capacity: usize) -> CommQueue {
        CommQueue::new(CommConfig {
            latency,
            bandwidth,
            capacity,
        })
    }

    #[test]
    fn delivery_adds_latency() {
        let mut q = q(4, 2, 16);
        assert_eq!(q.send(10), 14);
    }

    #[test]
    fn bandwidth_limits_sends_per_cycle() {
        let mut q = q(4, 2, 16);
        assert_eq!(q.send(10), 14);
        assert_eq!(q.send(10), 14);
        assert_eq!(q.send(10), 15, "third value in the same cycle waits");
        assert_eq!(q.backpressure_cycles(), 1);
    }

    #[test]
    fn capacity_causes_backpressure() {
        let mut q = q(100, 1, 2);
        let d0 = q.send(0);
        let _d1 = q.send(1);
        // Queue full until cycle d0: a third send at cycle 2 must wait.
        let d2 = q.send(2);
        assert!(d2 >= d0 + 100, "send should wait for capacity: {d2}");
        assert!(q.backpressure_cycles() > 0);
    }

    #[test]
    fn spaced_sends_see_no_backpressure() {
        let mut q = q(4, 1, 4);
        for t in [0u64, 10, 20, 30] {
            assert_eq!(q.send(t), t + 4);
        }
        assert_eq!(q.backpressure_cycles(), 0);
        assert_eq!(q.sends(), 4);
    }

    #[test]
    fn occupancy_reflects_inflight_values() {
        let mut q = q(50, 4, 64);
        for t in 0..10u64 {
            q.send(t);
        }
        assert!(
            q.mean_occupancy() > 1.0,
            "values pile up with 50-cycle latency"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        q(1, 0, 1);
    }

    #[test]
    fn stats_snapshot_matches_accessors() {
        let mut q = q(4, 2, 16);
        for t in 0..5u64 {
            q.send(t);
        }
        let s = q.stats();
        assert_eq!(s.sends, q.sends());
        assert_eq!(s.backpressure_cycles, q.backpressure_cycles());
        assert!((s.mean_occupancy() - q.mean_occupancy()).abs() < 1e-12);
    }

    #[test]
    fn fabric_has_one_queue_per_directed_edge() {
        let f = CommFabric::new(3, CommConfig::default());
        let mut edges = 0;
        for from in 0..3 {
            for to in 0..3 {
                if from == to {
                    assert!(f.edge(from, to).is_none());
                } else {
                    assert!(f.edge(from, to).is_some());
                    edges += 1;
                }
            }
        }
        assert_eq!(edges, 3 * 2, "N(N-1) directed edges");
        assert_eq!(f.cores(), 3);
    }

    #[test]
    fn fabric_edges_are_independent() {
        let mut f = CommFabric::new(
            3,
            CommConfig {
                latency: 4,
                bandwidth: 1,
                capacity: 16,
            },
        );
        // Saturate edge 0->1; edge 2->1 must be unaffected.
        assert_eq!(f.send(0, 1, 10), 14);
        assert_eq!(f.send(0, 1, 10), 15, "second send waits for bandwidth");
        assert_eq!(f.send(2, 1, 10), 14, "different edge, fresh bandwidth");
        let inbound = f.inbound_stats(1);
        assert_eq!(inbound.sends, 3);
        assert_eq!(inbound.backpressure_cycles, 1);
        assert_eq!(f.inbound_stats(0).sends, 0);
        assert_eq!(f.total_stats().sends, 3);
    }

    #[test]
    fn stats_merge_is_exact() {
        let a = CommStats {
            sends: 4,
            backpressure_cycles: 2,
            occupancy_sum: 8,
        };
        let mut b = CommStats {
            sends: 2,
            backpressure_cycles: 1,
            occupancy_sum: 1,
        };
        b.merge(&a);
        assert_eq!(b.sends, 6);
        assert_eq!(b.backpressure_cycles, 3);
        assert!((b.mean_occupancy() - 1.5).abs() < 1e-12);
        assert_eq!(CommStats::default().mean_occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not send to itself")]
    fn fabric_rejects_self_sends() {
        CommFabric::new(2, CommConfig::default()).send(1, 1, 0);
    }

    #[test]
    fn single_core_fabric_has_no_queues() {
        let f = CommFabric::new(1, CommConfig::default());
        assert!(f.edge(0, 0).is_none());
        assert_eq!(f.total_stats(), CommStats::default());
    }
}
