//! Inter-core register communication queues.
//!
//! Fg-STP cores exchange register values through dedicated point-to-point
//! queues. Each direction has a fixed transfer latency, a per-cycle
//! bandwidth, and a finite capacity: when the queue is full, a new send
//! must wait for the oldest in-flight value to drain (producer-side
//! back-pressure).

/// Configuration of one communication direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// Cycles from send to availability at the consumer.
    pub latency: u64,
    /// Values accepted per cycle.
    pub bandwidth: u32,
    /// Maximum values in flight.
    pub capacity: usize,
}

impl Default for CommConfig {
    fn default() -> CommConfig {
        CommConfig {
            latency: 4,
            bandwidth: 2,
            capacity: 16,
        }
    }
}

/// One direction of the inter-core communication fabric.
///
/// Sends must be issued in non-decreasing completion-time order (the
/// machine drains completions chronologically per core), which lets the
/// queue compute slot times incrementally.
#[derive(Debug, Clone)]
pub struct CommQueue {
    cfg: CommConfig,
    /// Delivery times of values still in flight.
    in_flight: std::collections::VecDeque<u64>,
    /// Cycle of the most recent send slot.
    slot_cycle: u64,
    /// Sends already placed in `slot_cycle`.
    slot_used: u32,
    sends: u64,
    /// Total cycles sends waited for bandwidth or capacity.
    backpressure_cycles: u64,
    /// Sum of queue occupancy sampled at each send (for mean occupancy).
    occupancy_sum: u64,
}

impl CommQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth or capacity is zero.
    pub fn new(cfg: CommConfig) -> CommQueue {
        assert!(cfg.bandwidth > 0, "queue bandwidth must be positive");
        assert!(cfg.capacity > 0, "queue capacity must be positive");
        CommQueue {
            cfg,
            in_flight: std::collections::VecDeque::new(),
            slot_cycle: 0,
            slot_used: 0,
            sends: 0,
            backpressure_cycles: 0,
            occupancy_sum: 0,
        }
    }

    /// Sends a value produced at `ready`; returns the cycle it becomes
    /// available to the consumer.
    ///
    pub fn send(&mut self, ready: u64) -> u64 {
        let mut slot = ready.max(self.slot_cycle);
        // Bandwidth: advance to the first cycle with a spare slot.
        if slot == self.slot_cycle && self.slot_used >= self.cfg.bandwidth {
            slot += 1;
        }
        // Capacity: wait for the oldest in-flight value to drain.
        while let Some(&oldest) = self.in_flight.front() {
            if oldest <= slot {
                self.in_flight.pop_front();
            } else if self.in_flight.len() >= self.cfg.capacity {
                slot = oldest;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        if slot != self.slot_cycle {
            self.slot_cycle = slot;
            self.slot_used = 0;
        }
        self.slot_used += 1;
        self.backpressure_cycles += slot - ready;
        self.occupancy_sum += self.in_flight.len() as u64;
        let delivery = slot + self.cfg.latency;
        self.in_flight.push_back(delivery);
        self.sends += 1;
        delivery
    }

    /// Number of values sent.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Total cycles sends were delayed by bandwidth or capacity limits.
    pub fn backpressure_cycles(&self) -> u64 {
        self.backpressure_cycles
    }

    /// Mean queue occupancy observed at send time.
    pub fn mean_occupancy(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.sends as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(latency: u64, bandwidth: u32, capacity: usize) -> CommQueue {
        CommQueue::new(CommConfig {
            latency,
            bandwidth,
            capacity,
        })
    }

    #[test]
    fn delivery_adds_latency() {
        let mut q = q(4, 2, 16);
        assert_eq!(q.send(10), 14);
    }

    #[test]
    fn bandwidth_limits_sends_per_cycle() {
        let mut q = q(4, 2, 16);
        assert_eq!(q.send(10), 14);
        assert_eq!(q.send(10), 14);
        assert_eq!(q.send(10), 15, "third value in the same cycle waits");
        assert_eq!(q.backpressure_cycles(), 1);
    }

    #[test]
    fn capacity_causes_backpressure() {
        let mut q = q(100, 1, 2);
        let d0 = q.send(0);
        let _d1 = q.send(1);
        // Queue full until cycle d0: a third send at cycle 2 must wait.
        let d2 = q.send(2);
        assert!(d2 >= d0 + 100, "send should wait for capacity: {d2}");
        assert!(q.backpressure_cycles() > 0);
    }

    #[test]
    fn spaced_sends_see_no_backpressure() {
        let mut q = q(4, 1, 4);
        for t in [0u64, 10, 20, 30] {
            assert_eq!(q.send(t), t + 4);
        }
        assert_eq!(q.backpressure_cycles(), 0);
        assert_eq!(q.sends(), 4);
    }

    #[test]
    fn occupancy_reflects_inflight_values() {
        let mut q = q(50, 4, 64);
        for t in 0..10u64 {
            q.send(t);
        }
        assert!(
            q.mean_occupancy() > 1.0,
            "values pile up with 50-cycle latency"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        q(1, 0, 1);
    }
}
