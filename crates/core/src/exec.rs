//! Functional partitioned executor: proves a partition preserves the
//! sequential architectural semantics.
//!
//! Fg-STP's correctness claim is that distributing one thread's
//! instructions over N cores — with register values moving only through
//! the communication queues or via replication — computes exactly what the
//! original sequential execution computes. This module *executes* a
//! partitioned stream that way: each core has its own register file, cross
//! dependences may only read values that were explicitly sent, and every
//! produced value is compared against the reference trace. The check works
//! for any core count the partitioner supports.
//!
//! Any mis-wired dependence annotation (a cross dependence marked local, a
//! missing send, a replica whose operands are not actually available)
//! surfaces as a concrete [`CheckError`]. The property tests in the
//! workspace drive random programs through this check.

use std::collections::HashMap;
use std::fmt;

use fgstp_isa::semantics::{branch_taken, eval_compute, load_extend};
use fgstp_isa::{InstClass, Op};
use fgstp_ooo::ExecInst;

use crate::partition::PartitionedStream;

/// A violation of the partition-correctness invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A cross dependence's value was never sent by its producer.
    MissingCommunication {
        /// Consumer global sequence number.
        consumer: u64,
        /// Producer global sequence number.
        producer: u64,
    },
    /// An instruction computed a different value than the reference.
    ValueMismatch {
        /// Global sequence number of the diverging instruction.
        gseq: u64,
        /// Core it executed on.
        core: usize,
        /// Value computed by the partitioned execution.
        got: u64,
        /// Value recorded by the reference execution.
        expected: u64,
    },
    /// A branch resolved differently than the reference.
    BranchMismatch {
        /// Global sequence number of the branch.
        gseq: u64,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::MissingCommunication { consumer, producer } => write!(
                f,
                "instruction {consumer} consumes value of {producer} across cores, but it was never sent"
            ),
            CheckError::ValueMismatch { gseq, core, got, expected } => write!(
                f,
                "instruction {gseq} on core {core} computed {got:#x}, reference has {expected:#x}"
            ),
            CheckError::BranchMismatch { gseq } => {
                write!(f, "branch {gseq} resolved differently than the reference")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Byte-granular memory shared by the functional cores (stores apply in
/// global program order, exactly like the machine's in-order commit).
#[derive(Debug, Default)]
struct ByteMem {
    bytes: HashMap<u64, u8>,
}

impl ByteMem {
    fn read(&self, addr: u64, width: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..u64::from(width) {
            v |= u64::from(*self.bytes.get(&addr.wrapping_add(i)).unwrap_or(&0)) << (8 * i);
        }
        v
    }

    fn write(&mut self, addr: u64, width: u8, value: u64) {
        for i in 0..u64::from(width) {
            self.bytes
                .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }
}

/// One functional core: a private register file.
#[derive(Debug)]
struct FuncCore {
    regs: [u64; 64],
}

/// Executes `part` functionally with per-core register files and explicit
/// communication, verifying every value against the reference trace
/// embedded in the stream.
///
/// `data_init` seeds memory with the program's initialized data segment
/// (`(addr, bytes)` pairs).
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered; `Ok(())` means the
/// partition preserves sequential semantics for this trace.
pub fn check_partition(
    part: &PartitionedStream,
    data_init: &[(u64, Vec<u8>)],
) -> Result<(), CheckError> {
    let mut mem = ByteMem::default();
    for (addr, bytes) in data_init {
        for (i, b) in bytes.iter().enumerate() {
            mem.bytes.insert(addr + i as u64, *b);
        }
    }
    let mut cores: Vec<FuncCore> = (0..part.num_cores())
        .map(|_| FuncCore { regs: [0; 64] })
        .collect();
    // Values sent across cores, keyed by producer gseq.
    let mut channel: HashMap<u64, u64> = HashMap::new();

    // Merge the per-core streams back into global order; replicas execute
    // at the same point as their primary (primary first, then replicas in
    // core order).
    let mut merged: Vec<&ExecInst> = part.streams.iter().flatten().collect();
    merged.sort_by_key(|x| (x.gseq, x.replica, x.core));

    for x in merged {
        let core = x.core;
        let value = execute_one(x, &mut cores[core], &mut mem, &channel)?;
        if x.sends && !x.replica {
            if let Some(v) = value {
                channel.insert(x.gseq, v);
            }
        }
    }
    Ok(())
}

/// Executes one instruction on one functional core, returning the value it
/// produced (if it writes a register) after verifying it against the
/// reference.
fn execute_one(
    x: &ExecInst,
    core: &mut FuncCore,
    mem: &mut ByteMem,
    channel: &HashMap<u64, u64>,
) -> Result<Option<u64>, CheckError> {
    // Resolve source values: local sources come from this core's register
    // file; cross sources must have been communicated.
    let mut srcs = [0u64; 2];
    let source_regs: Vec<_> = x.d.inst.sources().collect();
    for (i, reg) in source_regs.iter().enumerate() {
        srcs[i] = match x.deps[i] {
            Some(dep) if dep.cross => {
                *channel
                    .get(&dep.producer)
                    .ok_or(CheckError::MissingCommunication {
                        consumer: x.gseq,
                        producer: dep.producer,
                    })?
            }
            _ => core.regs[reg.index()],
        };
    }
    // Map back to the rs1/rs2 positions the semantics helpers expect
    // (sources() skips x0, whose value is always 0).
    let mut rs1 = 0u64;
    let mut rs2 = 0u64;
    let mut si = 0;
    if x.d.inst.op.reads_rs1() && !x.d.inst.rs1.is_zero() {
        rs1 = srcs[si];
        si += 1;
    }
    if x.d.inst.op.reads_rs2() && !x.d.inst.rs2.is_zero() {
        rs2 = srcs[si];
    }
    let imm = x.d.inst.imm;

    // Memory operations: verify the address was computed from the right
    // register value before using it.
    if x.class().is_mem() {
        let (addr, _) = x.mem_range().expect("memory op has range");
        let computed = rs1.wrapping_add(imm as u64);
        if computed != addr {
            return Err(CheckError::ValueMismatch {
                gseq: x.gseq,
                core: x.core,
                got: computed,
                expected: addr,
            });
        }
    }

    let mut produced = None;
    match x.class() {
        InstClass::Load => {
            let (addr, width) = x.mem_range().expect("load has range");
            let raw = mem.read(addr, width);
            produced = Some(load_extend(x.d.inst.op, raw));
        }
        InstClass::Store => {
            // Only the primary copy writes memory (stores never replicate,
            // but be defensive).
            if !x.replica {
                let (addr, width) = x.mem_range().expect("store has range");
                mem.write(addr, width, rs2);
            }
            if x.d.store_value != Some(rs2) {
                return Err(CheckError::ValueMismatch {
                    gseq: x.gseq,
                    core: x.core,
                    got: rs2,
                    expected: x.d.store_value.unwrap_or(0),
                });
            }
        }
        InstClass::Branch => {
            let t = branch_taken(x.d.inst.op, rs1, rs2).expect("branch");
            if Some(t) != x.d.taken {
                return Err(CheckError::BranchMismatch { gseq: x.gseq });
            }
        }
        InstClass::Jump => {
            produced = Some(x.d.pc + 1);
            if x.d.inst.op == Op::Jalr {
                // Verify the indirect target was computed from the right
                // register value.
                let target = rs1.wrapping_add(imm as u64);
                if target != x.d.next_pc {
                    return Err(CheckError::ValueMismatch {
                        gseq: x.gseq,
                        core: x.core,
                        got: target,
                        expected: x.d.next_pc,
                    });
                }
            }
        }
        InstClass::Nop => {}
        _ => {
            produced = eval_compute(x.d.inst.op, rs1, rs2, imm);
        }
    }

    if let (Some(v), Some(expected)) = (produced, x.d.rd_value) {
        if v != expected {
            return Err(CheckError::ValueMismatch {
                gseq: x.gseq,
                core: x.core,
                got: v,
                expected,
            });
        }
    }
    if let Some(rd) = x.d.inst.dest() {
        if let Some(v) = produced {
            core.regs[rd.index()] = v;
        }
    }
    Ok(produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_stream, PartitionConfig, PartitionPolicy};
    use fgstp_isa::{assemble, trace_program, Program};
    use fgstp_ooo::build_exec_stream;

    fn check_src(src: &str, cfg: &PartitionConfig, num_cores: usize) -> Result<(), CheckError> {
        let p: Program = assemble(src).unwrap();
        let t = trace_program(&p, 100_000).unwrap();
        let s = build_exec_stream(t.insts());
        let part = partition_stream(&s, cfg, num_cores);
        let data: Vec<(u64, Vec<u8>)> = p.data.iter().map(|d| (d.addr, d.bytes.clone())).collect();
        check_partition(&part, &data)
    }

    const MIXED: &str = r#"
        .data 0x1000
        .word 11, 22, 33, 44
        li x1, 0x1000
        li x2, 4
        li x4, 7
    loop:
        ld   x3, 0(x1)
        add  x4, x4, x3
        mul  x5, x3, x2
        sd   x5, 32(x1)
        ld   x6, 32(x1)
        xor  x7, x6, x4
        addi x1, x1, 8
        addi x2, x2, -1
        bne  x2, x0, loop
        halt
    "#;

    #[test]
    fn default_policy_preserves_semantics() {
        check_src(MIXED, &PartitionConfig::default(), 2).unwrap();
    }

    #[test]
    fn every_policy_preserves_semantics_for_any_core_count() {
        for policy in [
            PartitionPolicy::ModN { chunk: 1 },
            PartitionPolicy::ModN { chunk: 7 },
            PartitionPolicy::GreedyDep,
            PartitionPolicy::SliceLookahead {
                window: 16,
                refine_passes: 3,
            },
        ] {
            for replication in [false, true] {
                for num_cores in [1usize, 2, 3, 4] {
                    let cfg = PartitionConfig {
                        policy,
                        replication,
                        balance_slack: 0.2,
                    };
                    check_src(MIXED, &cfg, num_cores).unwrap_or_else(|e| {
                        panic!("{policy:?}/{replication}/{num_cores} cores: {e}")
                    });
                }
            }
        }
    }

    #[test]
    fn corrupted_cross_flag_is_detected() {
        // Take a valid partition and flip one cross dependence to local:
        // the consumer then reads a stale register on its core.
        let p: Program = assemble(MIXED).unwrap();
        let t = trace_program(&p, 100_000).unwrap();
        let s = build_exec_stream(t.insts());
        let cfg = PartitionConfig {
            policy: PartitionPolicy::ModN { chunk: 2 },
            replication: false,
            balance_slack: 0.2,
        };
        let mut part = partition_stream(&s, &cfg, 2);
        let mut corrupted = false;
        'outer: for stream in part.streams.iter_mut() {
            for x in stream.iter_mut() {
                for dep in x.deps.iter_mut().flatten() {
                    if dep.cross {
                        dep.cross = false;
                        corrupted = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(corrupted, "test needs at least one cross dep");
        let data: Vec<(u64, Vec<u8>)> = p.data.iter().map(|d| (d.addr, d.bytes.clone())).collect();
        // Either the stale value happens to match (possible for constants)
        // or we must detect a mismatch; for this kernel the values differ.
        assert!(check_partition(&part, &data).is_err());
    }

    #[test]
    fn branch_outcomes_are_verified() {
        check_src(
            r#"
                li x1, 10
            loop:
                addi x1, x1, -1
                bne  x1, x0, loop
                halt
            "#,
            &PartitionConfig::default(),
            2,
        )
        .unwrap();
    }

    #[test]
    fn jalr_targets_are_verified() {
        check_src(
            r#"
                jal  ra, func
                halt
            func:
                li   x5, 3
                jalr x0, ra, 0
            "#,
            &PartitionConfig {
                policy: PartitionPolicy::ModN { chunk: 1 },
                replication: false,
                balance_slack: 0.2,
            },
            3,
        )
        .unwrap();
    }
}
