//! # fgstp
//!
//! Reproduction of **Fg-STP: Fine-Grain Single Thread Partitioning on
//! Multicores** (Ranjan, Latorre, Marcuello, González — HPCA 2011): a
//! hardware-only scheme that reconfigures two conventional out-of-order
//! cores to collaborate on fetching and executing one thread, partitioning
//! the code at instruction granularity with extensive use of dependence
//! speculation, replication and communication, over large instruction
//! windows and with no software support.
//!
//! This crate is the paper's contribution; the substrates live in sibling
//! crates (`fgstp-isa`, `fgstp-mem`, `fgstp-bpred`, `fgstp-ooo`):
//!
//! * [`depgraph`] — the windowed dynamic dependence graph the partitioning
//!   hardware observes;
//! * [`partition`] — instruction-granularity partitioning policies,
//!   including the slice-lookahead policy with boundary refinement and the
//!   replication pass;
//! * [`commq`] — inter-core register communication queues and the
//!   per-directed-edge fabric (latency, bandwidth, capacity,
//!   back-pressure);
//! * [`machine`] — the N-core timing machine (the paper's machine is the
//!   2-core instance): shared frontend orchestration, cross-core
//!   memory-dependence speculation and global in-order commit
//!   ([`run_fgstp`]);
//! * [`exec`] — a functional partitioned executor that *proves* a
//!   partition preserves sequential semantics ([`check_partition`]).
//!
//! The **Core Fusion** baseline the paper compares against is the fused
//! two-cluster configuration of the `fgstp-ooo` core
//! ([`fgstp_ooo::CoreConfig::fused`]), run through
//! [`fgstp_ooo::run_single`].
//!
//! ```
//! use fgstp::{run_fgstp, FgstpConfig};
//! use fgstp_isa::{assemble, trace_program};
//! use fgstp_mem::HierarchyConfig;
//!
//! let p = assemble("li x1, 2\nadd x2, x1, x1\nhalt")?;
//! let t = trace_program(&p, 100)?;
//! let (result, stats) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
//! assert_eq!(result.committed, 2);
//! assert_eq!(stats.partition.total_insts(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod adaptive;
pub mod commq;
pub mod corun;
pub mod depgraph;
pub mod exec;
pub mod machine;
pub mod partition;

pub use adaptive::{
    run_dynamic, run_oracle, run_sampling, AdaptiveResult, CorePhase, DynamicConfig, DynamicResult,
    Mode, SamplingConfig,
};
pub use commq::{CommConfig, CommFabric, CommQueue, CommStats};
pub use corun::{
    run_corun, CoRunContention, CoRunPlan, CoRunProgram, CoRunProgramResult, CoRunResult,
};
pub use depgraph::DepGraph;
pub use exec::{check_partition, CheckError};
pub use machine::{
    run_fgstp, run_fgstp_recorded, run_fgstp_warm, run_fgstp_warm_with_sink, run_fgstp_with_sink,
    FgstpConfig, FgstpMachine, FgstpStats, PreparedProgram,
};
pub use partition::{
    partition_stream, partition_stream_weighted, PartitionConfig, PartitionPolicy, PartitionStats,
    PartitionedStream,
};
