//! The Fg-STP dual-core timing machine.
//!
//! Two conventional out-of-order cores (the `fgstp-ooo` pipeline) execute
//! the two partitioned halves of a single thread. This module provides the
//! shared environment that couples them:
//!
//! * a **shared frontend orchestrator** — one branch predictor, a global
//!   fetch gate for mispredictions, and a lookahead-buffer skew bound (a
//!   core may run at most one partition window ahead of its partner);
//! * the **register communication queues** ([`crate::CommQueue`]) that
//!   deliver cross-core values with latency, bandwidth and capacity;
//! * **cross-core memory-dependence speculation**: loads issue past remote
//!   stores and replay on a conflict, or (speculation disabled) wait for
//!   the youngest older remote store;
//! * **global in-order commit** across both cores.

use std::collections::HashMap;

use fgstp_isa::DynInst;
use fgstp_mem::{Hierarchy, HierarchyConfig};
use fgstp_ooo::{
    build_exec_stream, classify_single, stat_delta, CommitStall, Core, CoreConfig, CoreStats,
    ExecEnv, ExecInst, FetchGate, LoadGate, Prediction, PredictorState, RunResult, StatDelta,
};
use fgstp_telemetry::{CycleOutcome, CycleSink, NullSink, StallCategory};

use crate::commq::{CommConfig, CommQueue};
use crate::partition::{partition_stream, PartitionConfig, PartitionStats, PartitionedStream};

/// Configuration of the full Fg-STP machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FgstpConfig {
    /// Per-core configuration (both cores are identical).
    pub core: CoreConfig,
    /// Register communication queues (both directions).
    pub comm: CommConfig,
    /// Cycles after a remote store completes until its value is visible to
    /// the other core's loads.
    pub store_vis_latency: u64,
    /// Replay penalty for a cross-core memory-dependence violation.
    pub cross_violation_penalty: u64,
    /// Whether loads may speculate past unresolved remote stores.
    pub dep_speculation: bool,
    /// Partitioner configuration.
    pub partition: PartitionConfig,
}

impl FgstpConfig {
    /// Fg-STP on two small cores (the paper's small 2-core CMP).
    pub fn small() -> FgstpConfig {
        FgstpConfig {
            core: CoreConfig::small(),
            comm: CommConfig::default(),
            store_vis_latency: 6,
            cross_violation_penalty: 12,
            dep_speculation: true,
            partition: PartitionConfig::default(),
        }
    }

    /// Fg-STP on two medium cores (the paper's medium 2-core CMP).
    pub fn medium() -> FgstpConfig {
        FgstpConfig {
            core: CoreConfig::medium(),
            ..FgstpConfig::small()
        }
    }

    /// Fetch-skew bound implied by the partition lookahead window.
    pub fn fetch_skew(&self) -> u64 {
        match self.partition.policy {
            crate::partition::PartitionPolicy::SliceLookahead { window, .. } => window as u64,
            _ => 256,
        }
    }
}

/// Fg-STP-specific statistics beyond the per-core pipeline counters.
#[derive(Debug, Clone, Default)]
pub struct FgstpStats {
    /// Partitioning summary.
    pub partition: PartitionStats,
    /// Values delivered to each core (index = receiving core).
    pub deliveries: [u64; 2],
    /// Cycles sends waited on queue bandwidth/capacity, per direction.
    pub backpressure: [u64; 2],
    /// Mean queue occupancy per direction (index = receiving core).
    pub mean_occupancy: [f64; 2],
    /// Cross-core memory-dependence violations replayed.
    pub cross_violations: u64,
}

/// The dual-core execution environment implementing [`ExecEnv`].
#[derive(Debug)]
struct FgstpEnv {
    /// Predictions made by the shared frontend orchestrator, which sees
    /// the fetch stream in program order *before* distribution — so the
    /// predictor history is exactly the single-thread history (computed in
    /// a prepass over the stream).
    predictions: HashMap<u64, Prediction>,
    branches: u64,
    mispredicts: u64,
    gate: FetchGate,
    /// Completion cycle per global sequence number (primary copies only).
    board: Vec<u64>,
    /// Smallest gseq whose instruction has not completed yet. An
    /// instruction may retire once every older instruction (on either
    /// core) has completed — distributed commit with exchanged completion
    /// pointers, rather than a serialized global commit port.
    completed_frontier: u64,
    /// Delivered cross-core values per receiving core.
    deliveries: [HashMap<u64, u64>; 2],
    /// Queues indexed by receiving core.
    queues: [CommQueue; 2],
    committed: u64,
    /// Load gseq → youngest older remote store gseq.
    barriers: HashMap<u64, u64>,
    /// Next unfetched gseq per core (`u64::MAX` when exhausted).
    next_fetch: [u64; 2],
    fetch_skew: u64,
    store_vis_latency: u64,
    cross_violation_penalty: u64,
    dep_speculation: bool,
}

impl FgstpEnv {
    fn new(
        cfg: &FgstpConfig,
        stream: &[fgstp_ooo::ExecInst],
        part: &PartitionedStream,
    ) -> FgstpEnv {
        // Prepass: the shared orchestrator predicts every control
        // instruction in program order.
        let mut pred = PredictorState::new(&cfg.core);
        let mut predictions = HashMap::new();
        for x in stream {
            if x.class().is_control() {
                predictions.insert(x.gseq, pred.predict(x));
            }
        }
        FgstpEnv {
            predictions,
            branches: pred.branches,
            mispredicts: pred.mispredicts,
            gate: FetchGate::default(),
            board: vec![u64::MAX; stream.len()],
            completed_frontier: 0,
            deliveries: [HashMap::new(), HashMap::new()],
            queues: [CommQueue::new(cfg.comm), CommQueue::new(cfg.comm)],
            committed: 0,
            barriers: part.load_barriers.clone(),
            next_fetch: [0, 0],
            fetch_skew: cfg.fetch_skew(),
            store_vis_latency: cfg.store_vis_latency,
            cross_violation_penalty: cfg.cross_violation_penalty,
            dep_speculation: cfg.dep_speculation,
        }
    }

    fn completed(&self, gseq: u64) -> Option<u64> {
        let c = self.board[gseq as usize];
        (c != u64::MAX).then_some(c)
    }

    /// Whether `core`'s fetch is currently bound by the lookahead-buffer
    /// skew limit (it ran a full partition window ahead of its partner) —
    /// the telemetry disambiguator between a branch-redirect fetch gate
    /// and partitioner backpressure.
    fn skew_blocked(&self, core: usize) -> bool {
        let me = self.next_fetch[core];
        let other = self.next_fetch[1 - core];
        me != u64::MAX && other != u64::MAX && me > other + self.fetch_skew
    }
}

/// Charges one non-commit cycle of an Fg-STP core to a [`StallCategory`]:
/// the cross-core refinements first, then the single-core decision tree.
fn classify_fgstp(
    done: bool,
    skew_blocked: bool,
    stall: CommitStall,
    d: &StatDelta,
) -> StallCategory {
    if done {
        // Drained while the partner still runs: global-commit slack.
        return StallCategory::CommitSync;
    }
    if d.replica_committed > 0 {
        // The commit slot went to replicated shadow copies.
        return StallCategory::Replication;
    }
    match stall {
        CommitStall::Idle if d.fetch_blocked > 0 && skew_blocked => StallCategory::CommBackpressure,
        CommitStall::Executing {
            replica: true,
            is_load: false,
            cross_replay: false,
            ..
        } => StallCategory::Replication,
        CommitStall::Completing { replica: true } => StallCategory::Replication,
        other => classify_single(other, d),
    }
}

impl ExecEnv for FgstpEnv {
    fn predict(&mut self, _core: usize, x: &ExecInst) -> Prediction {
        *self
            .predictions
            .get(&x.gseq)
            .expect("control instruction was pre-predicted")
    }

    fn fetch_blocked(&mut self, core: usize, gseq: u64, now: u64) -> bool {
        if self.gate.blocked(gseq, now) {
            return true;
        }
        // Lookahead-buffer bound: the partitioner distributes at most
        // `fetch_skew` instructions ahead of the slower core.
        let other = self.next_fetch[1 - core];
        other != u64::MAX && gseq > other + self.fetch_skew
    }

    fn note_fetch_cursor(&mut self, core: usize, next_gseq: Option<u64>) {
        self.next_fetch[core] = next_gseq.unwrap_or(u64::MAX);
    }

    fn block_fetch_after(&mut self, _core: usize, gseq: u64) {
        self.gate.block_after(gseq);
    }

    fn resolve_fetch_block(&mut self, _core: usize, gseq: u64, resume: u64) {
        self.gate.resolve(gseq, resume);
    }

    fn on_complete(&mut self, core: usize, x: &ExecInst, cycle: u64) {
        if x.replica {
            return;
        }
        self.board[x.gseq as usize] = cycle;
        while (self.completed_frontier as usize) < self.board.len()
            && self.board[self.completed_frontier as usize] != u64::MAX
        {
            self.completed_frontier += 1;
        }
        if x.sends {
            let to = 1 - core;
            let delivery = self.queues[to].send(cycle);
            self.deliveries[to].insert(x.gseq, delivery);
        }
    }

    fn cross_operand_ready(&mut self, core: usize, producer: u64) -> Option<u64> {
        self.deliveries[core].get(&producer).copied()
    }

    fn cross_load_gate(
        &mut self,
        _core: usize,
        x: &ExecInst,
        ready_since: u64,
        _now: u64,
    ) -> LoadGate {
        if !self.dep_speculation {
            // Conservative cross-core ordering: wait for the youngest older
            // remote store to complete and become visible.
            return match self.barriers.get(&x.gseq) {
                None => LoadGate::Free,
                Some(&store) => match self.completed(store) {
                    None => LoadGate::Retry,
                    Some(c) => LoadGate::WaitUntil(c + self.store_vis_latency),
                },
            };
        }
        let Some(md) = x.mem_dep.filter(|m| m.cross) else {
            return LoadGate::Free;
        };
        match self.completed(md.store) {
            // The conflicting remote store has not even executed: the load
            // speculates, is squashed when the store arrives, and replays.
            None => LoadGate::Retry,
            Some(c) => {
                let visible = c + self.store_vis_latency;
                if visible <= ready_since {
                    LoadGate::Free
                } else {
                    LoadGate::Replay {
                        data_at: visible + self.cross_violation_penalty,
                    }
                }
            }
        }
    }

    fn can_commit(&self, x: &ExecInst) -> bool {
        // Distributed commit: retire once every older instruction (on
        // either core) has completed. Per-core ROBs stay in order, so each
        // core retires its own instructions in order; the frontier
        // guarantees global precise-state recoverability.
        x.gseq < self.completed_frontier
    }

    fn on_commit(&mut self, _core: usize, x: &ExecInst, _cycle: u64) {
        if !x.replica {
            self.committed += 1;
        }
    }
}

/// Upper bound on cycles per instruction before declaring a deadlock.
const DEADLOCK_CPI: u64 = 2_000;

/// Runs `trace` on the Fg-STP machine; returns the timing result and the
/// Fg-STP-specific statistics.
///
/// # Panics
///
/// Panics if `hcfg` does not describe exactly two cores, or if the machine
/// deadlocks (a model bug).
pub fn run_fgstp(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
) -> (RunResult, FgstpStats) {
    let (result, stats, _) = run_fgstp_recorded(trace, cfg, hcfg, None);
    (result, stats)
}

/// Like [`run_fgstp`], but optionally records per-instruction pipeline
/// events on both cores (pass one recorder per core) and returns them —
/// the two-core pipeview used by the `fgstpsim pipeview2` command.
///
/// # Panics
///
/// Panics if `hcfg` does not describe exactly two cores, or if the machine
/// deadlocks (a model bug).
#[allow(clippy::type_complexity)]
pub fn run_fgstp_recorded(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    recorders: Option<[fgstp_ooo::PipeRecorder; 2]>,
) -> (RunResult, FgstpStats, Option<[fgstp_ooo::PipeRecorder; 2]>) {
    run_fgstp_impl(trace, cfg, hcfg, recorders, &mut NullSink)
}

/// Like [`run_fgstp`], but charges every core-cycle into `sink` (cores 0
/// and 1; one outcome per core per machine cycle).
///
/// Timing is bit-identical to [`run_fgstp`]: the accounting probes reuse
/// the environment's idempotent queries and never mutate pipeline,
/// predictor, queue or cache state.
///
/// # Panics
///
/// Panics if `hcfg` does not describe exactly two cores, or if the machine
/// deadlocks (a model bug).
pub fn run_fgstp_with_sink<S: CycleSink>(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    sink: &mut S,
) -> (RunResult, FgstpStats) {
    let (result, stats, _) = run_fgstp_impl(trace, cfg, hcfg, None, sink);
    (result, stats)
}

#[allow(clippy::type_complexity)]
fn run_fgstp_impl<S: CycleSink>(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    recorders: Option<[fgstp_ooo::PipeRecorder; 2]>,
    sink: &mut S,
) -> (RunResult, FgstpStats, Option<[fgstp_ooo::PipeRecorder; 2]>) {
    assert_eq!(hcfg.cores, 2, "Fg-STP reconfigures exactly two cores");
    let stream = build_exec_stream(trace);
    let part = partition_stream(&stream, &cfg.partition);
    let mut env = FgstpEnv::new(cfg, &stream, &part);
    let [s0, s1] = part.streams.clone();
    let mut core0 = Core::new(0, cfg.core.clone(), s0);
    let mut core1 = Core::new(1, cfg.core.clone(), s1);
    let recording = recorders.is_some();
    if let Some([r0, r1]) = recorders {
        core0.set_recorder(r0);
        core1.set_recorder(r1);
    }
    let mut mem = Hierarchy::new(hcfg);
    let cap = (stream.len() as u64) * DEADLOCK_CPI + 100_000;
    let mut now = 0u64;
    let debug = std::env::var_os("FGSTP_TRACE").is_some();
    while !(core0.done() && core1.done()) {
        let before = if S::ENABLED {
            [*core0.stats(), *core1.stats()]
        } else {
            [CoreStats::default(); 2]
        };
        core0.cycle(now, &mut env, &mut mem);
        core1.cycle(now, &mut env, &mut mem);
        if S::ENABLED {
            for (i, core) in [&core0, &core1].into_iter().enumerate() {
                let d = stat_delta(&before[i], core.stats());
                let outcome = if d.committed > 0 {
                    CycleOutcome::Commit(d.committed as u32)
                } else {
                    let stall = core.commit_stall(&mut env, now);
                    CycleOutcome::Stall(classify_fgstp(core.done(), env.skew_blocked(i), stall, &d))
                };
                sink.record(i, now, outcome);
            }
        }
        now += 1;
        if debug && now.is_multiple_of(2000) {
            eprintln!(
                "[{}] commit={} c0 {} | c1 {}",
                now,
                env.completed_frontier,
                core0.pipeline_snapshot(),
                core1.pipeline_snapshot()
            );
        }
        assert!(now < cap, "Fg-STP machine deadlocked at cycle {now}");
    }
    let cores = vec![*core0.stats(), *core1.stats()];
    let stats = FgstpStats {
        partition: part.stats,
        deliveries: [env.queues[0].sends(), env.queues[1].sends()],
        backpressure: [
            env.queues[0].backpressure_cycles(),
            env.queues[1].backpressure_cycles(),
        ],
        mean_occupancy: [
            env.queues[0].mean_occupancy(),
            env.queues[1].mean_occupancy(),
        ],
        cross_violations: cores.iter().map(|c| c.cross_violations).sum(),
    };
    let result = RunResult {
        cycles: now,
        committed: env.committed,
        cores,
        branches: (env.branches, env.mispredicts),
        mem: mem.stats(),
    };
    let recorders = if recording {
        Some([
            core0
                .take_recorder()
                .expect("recorder was attached to core 0"),
            core1
                .take_recorder()
                .expect("recorder was attached to core 1"),
        ])
    } else {
        None
    };
    (result, stats, recorders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program, Trace};

    fn trace(src: &str) -> Trace {
        let p = assemble(src).unwrap();
        trace_program(&p, 200_000).unwrap()
    }

    /// Two independent chains — the best case for partitioning.
    fn two_chain_trace() -> Trace {
        let mut src = String::from("li x1, 1\nli x2, 1\nli x9, 150\n");
        src.push_str(
            r#"
            loop:
                add  x1, x1, x1
                xor  x3, x1, x9
                add  x2, x2, x2
                xor  x4, x2, x9
                addi x9, x9, -1
                bne  x9, x0, loop
                halt
            "#,
        );
        trace(&src)
    }

    #[test]
    fn all_instructions_commit_exactly_once() {
        let t = two_chain_trace();
        let (r, _) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
    }

    #[test]
    fn work_is_distributed_across_both_cores() {
        let t = two_chain_trace();
        let (r, s) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert!(r.cores[0].committed > 0 && r.cores[1].committed > 0);
        let balance = s.partition.balance();
        assert!((0.25..=0.75).contains(&balance), "balance {balance}");
    }

    #[test]
    fn fgstp_beats_one_small_core_on_partition_friendly_code() {
        let t = two_chain_trace();
        let single =
            fgstp_ooo::run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let (fg, _) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert!(
            fg.cycles < single.cycles,
            "Fg-STP {} should beat single core {}",
            fg.cycles,
            single.cycles
        );
    }

    #[test]
    fn communication_latency_hurts() {
        let t = two_chain_trace();
        let mut fast = FgstpConfig::small();
        fast.comm.latency = 1;
        let mut slow = FgstpConfig::small();
        slow.comm.latency = 24;
        let (f, _) = run_fgstp(t.insts(), &fast, &HierarchyConfig::small(2));
        let (s, _) = run_fgstp(t.insts(), &slow, &HierarchyConfig::small(2));
        assert!(
            f.cycles <= s.cycles,
            "latency 1 ({}) vs 24 ({})",
            f.cycles,
            s.cycles
        );
    }

    #[test]
    fn cross_core_store_load_pairs_execute_correctly() {
        // Producer/consumer through memory, forced onto opposite cores.
        let src = r#"
            li x1, 0x1000
            li x9, 100
        loop:
            sd   x9, 0(x1)
            ld   x5, 0(x1)
            add  x6, x5, x5
            addi x9, x9, -1
            bne  x9, x0, loop
            halt
        "#;
        let t = trace(src);
        let mut cfg = FgstpConfig::small();
        cfg.partition.policy = crate::partition::PartitionPolicy::ModN { chunk: 3 };
        let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
        // ModN slices the store/load pairs apart: cross memory deps exist.
        assert!(s.partition.cross_mem_deps > 0);
    }

    #[test]
    fn disabling_speculation_still_completes() {
        let t = two_chain_trace();
        let mut cfg = FgstpConfig::small();
        cfg.dep_speculation = false;
        let (r, _) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
    }

    #[test]
    fn queue_stats_are_reported_when_there_is_traffic() {
        let t = two_chain_trace();
        let mut cfg = FgstpConfig::small();
        cfg.partition.policy = crate::partition::PartitionPolicy::ModN { chunk: 2 };
        cfg.partition.replication = false;
        let (_, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert!(
            s.deliveries[0] + s.deliveries[1] > 0,
            "chunked round-robin must communicate"
        );
    }

    #[test]
    fn sink_accounts_both_cores_without_changing_timing() {
        let t = two_chain_trace();
        let (plain, _) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        let mut sink = fgstp_telemetry::CpiSink::new(2);
        let (r, _) = run_fgstp_with_sink(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &mut sink,
        );
        assert_eq!(r.cycles, plain.cycles, "telemetry must not change timing");
        assert_eq!(r.committed, plain.committed);
        // Each core's stack covers every machine cycle: the merged total is
        // 2 × machine cycles (aggregate core-cycles).
        for (i, stack) in sink.stacks().iter().enumerate() {
            stack
                .check_against(r.cycles)
                .unwrap_or_else(|e| panic!("core {i}: {e}"));
        }
        let merged = sink.merged();
        merged.check_against(2 * r.cycles).unwrap();
        assert_eq!(merged.committed, r.committed);
    }

    #[test]
    fn fgstp_classifier_covers_every_refinement() {
        let d = StatDelta::default();
        // A drained core is global-commit slack no matter what the probe says.
        assert_eq!(
            classify_fgstp(true, false, CommitStall::Idle, &d),
            StallCategory::CommitSync
        );
        // A commit slot spent on replicated shadow copies is replication cost.
        let replicas = StatDelta {
            replica_committed: 2,
            ..d
        };
        assert_eq!(
            classify_fgstp(false, false, CommitStall::Idle, &replicas),
            StallCategory::Replication
        );
        // Empty ROB because the lookahead gate holds fetch back for the
        // partner core: back-pressure, not a frontend problem.
        let gated = StatDelta {
            fetch_blocked: 3,
            ..d
        };
        assert_eq!(
            classify_fgstp(false, true, CommitStall::Idle, &gated),
            StallCategory::CommBackpressure
        );
        // ...but the same empty ROB without skew gating falls through to
        // the single-core classifier (fetch gated by a branch redirect).
        assert_eq!(
            classify_fgstp(false, false, CommitStall::Idle, &gated),
            StallCategory::BranchRedirect
        );
        // Executing / completing replicas charge to replication, while a
        // replaying load keeps its memory-dependence attribution.
        assert_eq!(
            classify_fgstp(
                false,
                false,
                CommitStall::Executing {
                    is_load: false,
                    mem_level: None,
                    cross_replay: false,
                    replica: true,
                },
                &d
            ),
            StallCategory::Replication
        );
        assert_eq!(
            classify_fgstp(false, false, CommitStall::Completing { replica: true }, &d),
            StallCategory::Replication
        );
        assert_eq!(
            classify_fgstp(
                false,
                false,
                CommitStall::Executing {
                    is_load: true,
                    mem_level: None,
                    cross_replay: true,
                    replica: true,
                },
                &d
            ),
            StallCategory::MemDepReplay
        );
    }

    #[test]
    #[should_panic(expected = "exactly two cores")]
    fn one_core_hierarchy_is_rejected() {
        let t = trace("li x1, 1\nhalt");
        run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(1));
    }

    #[test]
    fn empty_trace_finishes() {
        let (r, _) = run_fgstp(&[], &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert_eq!(r.committed, 0);
    }
}
