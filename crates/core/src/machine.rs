//! The Fg-STP N-core timing machine.
//!
//! A set of conventional out-of-order cores (the `fgstp-ooo` pipeline)
//! executes the partitioned slices of a single thread. This module
//! provides the shared environment that couples them:
//!
//! * a **shared frontend orchestrator** — one branch predictor, a global
//!   fetch gate for mispredictions, and a lookahead-buffer skew bound (a
//!   core may run at most one partition window ahead of the slowest
//!   partner);
//! * the **register communication fabric** ([`crate::CommFabric`]): one
//!   queue per directed core pair, delivering cross-core values with
//!   latency, bandwidth and capacity;
//! * **cross-core memory-dependence speculation**: loads issue past remote
//!   stores and replay on a conflict, or (speculation disabled) wait for
//!   the youngest older remote store;
//! * **global in-order commit** across all cores.
//!
//! The paper's machine is the 2-core instance (`num_cores = 2`, the
//! default); every mechanism generalizes unchanged to N cores.

use fgstp_isa::DynInst;
use fgstp_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use fgstp_ooo::{
    build_exec_stream, classify_single, stat_delta, CommitStall, Core, CoreConfig, CoreStats,
    ExecEnv, ExecInst, FetchGate, LoadGate, Prediction, PredictorState, RunResult, StatDelta,
    WarmRun, WarmState,
};
use fgstp_telemetry::{CycleOutcome, CycleSink, NullSink, StallCategory};

use crate::commq::{CommConfig, CommFabric, CommStats};
use crate::partition::{
    partition_stream_weighted, PartitionConfig, PartitionStats, PartitionedStream,
};

/// Configuration of the full Fg-STP machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FgstpConfig {
    /// Number of cores the thread is partitioned across (the paper's
    /// machine uses 2).
    pub num_cores: usize,
    /// Per-core configuration (all cores are identical).
    pub core: CoreConfig,
    /// Register communication queues (every directed core pair).
    pub comm: CommConfig,
    /// Cycles after a remote store completes until its value is visible to
    /// another core's loads.
    pub store_vis_latency: u64,
    /// Replay penalty for a cross-core memory-dependence violation.
    pub cross_violation_penalty: u64,
    /// Whether loads may speculate past unresolved remote stores.
    pub dep_speculation: bool,
    /// Partitioner configuration.
    pub partition: PartitionConfig,
    /// Per-core configuration overrides for asymmetric machines (index =
    /// core; the length must equal `num_cores`). `None` — the default —
    /// keeps every core identical to `core`. The shared frontend
    /// orchestrator (branch predictor geometry) always follows `core`.
    pub per_core: Option<Vec<CoreConfig>>,
}

impl FgstpConfig {
    /// Fg-STP on two small cores (the paper's small 2-core CMP).
    pub fn small() -> FgstpConfig {
        FgstpConfig {
            num_cores: 2,
            core: CoreConfig::small(),
            comm: CommConfig::default(),
            store_vis_latency: 6,
            cross_violation_penalty: 12,
            dep_speculation: true,
            partition: PartitionConfig::default(),
            per_core: None,
        }
    }

    /// Fg-STP on two medium cores (the paper's medium 2-core CMP).
    pub fn medium() -> FgstpConfig {
        FgstpConfig {
            core: CoreConfig::medium(),
            ..FgstpConfig::small()
        }
    }

    /// The same machine partitioned across `n` cores.
    pub fn with_cores(mut self, n: usize) -> FgstpConfig {
        self.num_cores = n;
        self.per_core = None;
        self
    }

    /// An asymmetric machine: one explicit configuration per core.
    /// `num_cores` follows the list length; `core` (the shared-frontend
    /// base) is left as is.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn with_per_core(mut self, cores: Vec<CoreConfig>) -> FgstpConfig {
        assert!(!cores.is_empty(), "per-core list must not be empty");
        self.num_cores = cores.len();
        self.per_core = Some(cores);
        self
    }

    /// The configuration of core `i`.
    pub fn core_for(&self, i: usize) -> &CoreConfig {
        match &self.per_core {
            Some(cores) => &cores[i],
            None => &self.core,
        }
    }

    /// Relative steering capacity per core for the weighted partitioner:
    /// issue widths on an asymmetric machine, uniform otherwise (which
    /// keeps the partition bit-identical to the unweighted path).
    pub fn steering_caps(&self) -> Vec<u64> {
        match &self.per_core {
            Some(cores) => cores.iter().map(|c| c.issue_width as u64).collect(),
            None => vec![1; self.num_cores],
        }
    }

    /// Fetch-skew bound implied by the partition lookahead window.
    pub fn fetch_skew(&self) -> u64 {
        match self.partition.policy {
            crate::partition::PartitionPolicy::SliceLookahead { window, .. } => window as u64,
            _ => 256,
        }
    }
}

/// Fg-STP-specific statistics beyond the per-core pipeline counters.
#[derive(Debug, Clone, Default)]
pub struct FgstpStats {
    /// Partitioning summary.
    pub partition: PartitionStats,
    /// Aggregate inbound communication statistics per receiving core.
    pub comm: Vec<CommStats>,
    /// Cross-core memory-dependence violations replayed.
    pub cross_violations: u64,
}

impl FgstpStats {
    /// Machine-wide communication totals (all directed edges merged).
    pub fn comm_total(&self) -> CommStats {
        let mut total = CommStats::default();
        for c in &self.comm {
            total.merge(c);
        }
        total
    }
}

/// The shared execution environment implementing [`ExecEnv`] for N cores.
///
/// The environment borrows the partitioner's per-producer send masks and
/// load barriers for the duration of a run — nothing is cloned, and the
/// hot-path lookups (predictions, deliveries, completion board) are dense
/// gseq-indexed vectors rather than hash maps.
#[derive(Debug)]
struct FgstpEnv<'a> {
    /// Predictions made by the shared frontend orchestrator, which sees
    /// the fetch stream in program order *before* distribution — so the
    /// predictor history is exactly the single-thread history (computed in
    /// a prepass over the stream). Dense per gseq; only control
    /// instructions' entries are ever read.
    predictions: Vec<Prediction>,
    branches: u64,
    mispredicts: u64,
    gate: FetchGate,
    /// Completion cycle per global sequence number (primary copies only).
    board: Vec<u64>,
    /// Smallest gseq whose instruction has not completed yet. An
    /// instruction may retire once every older instruction (on any core)
    /// has completed — distributed commit with exchanged completion
    /// pointers, rather than a serialized global commit port.
    completed_frontier: u64,
    /// Delivered cross-core values per receiving core, dense per gseq
    /// (`u64::MAX` = not delivered).
    deliveries: Vec<Vec<u64>>,
    /// One queue per directed core pair.
    fabric: CommFabric,
    /// Per-producer bitmask of destination cores (from the partitioner).
    send_targets: &'a [u64],
    committed: u64,
    /// Per-gseq youngest older remote store (`u64::MAX` = no barrier).
    barriers: &'a [u64],
    /// Next unfetched gseq per core (`u64::MAX` when exhausted).
    next_fetch: Vec<u64>,
    fetch_skew: u64,
    store_vis_latency: u64,
    cross_violation_penalty: u64,
    dep_speculation: bool,
}

impl<'a> FgstpEnv<'a> {
    fn new(
        cfg: &FgstpConfig,
        stream: &[fgstp_ooo::ExecInst],
        send_targets: &'a [u64],
        barriers: &'a [u64],
        n: usize,
        pred: &mut PredictorState,
    ) -> FgstpEnv<'a> {
        // Prepass: the shared orchestrator predicts every control
        // instruction in program order. The predictor bundle is external so
        // a sampled run can carry its training across windows; the reported
        // counters are the deltas of this window.
        let branches_before = (pred.branches, pred.mispredicts);
        let mut predictions = vec![
            Prediction {
                mispredicted: false,
                btb_miss: false,
            };
            stream.len()
        ];
        for x in stream {
            if x.class().is_control() {
                predictions[x.gseq as usize] = pred.predict(x);
            }
        }
        FgstpEnv {
            predictions,
            branches: pred.branches - branches_before.0,
            mispredicts: pred.mispredicts - branches_before.1,
            gate: FetchGate::default(),
            board: vec![u64::MAX; stream.len()],
            completed_frontier: 0,
            deliveries: vec![vec![u64::MAX; stream.len()]; n],
            fabric: CommFabric::new(n, cfg.comm),
            send_targets,
            committed: 0,
            barriers,
            next_fetch: vec![0; n],
            fetch_skew: cfg.fetch_skew(),
            store_vis_latency: cfg.store_vis_latency,
            cross_violation_penalty: cfg.cross_violation_penalty,
            dep_speculation: cfg.dep_speculation,
        }
    }

    fn completed(&self, gseq: u64) -> Option<u64> {
        let c = self.board[gseq as usize];
        (c != u64::MAX).then_some(c)
    }

    /// Fetch cursor of the slowest *other* core still fetching.
    fn slowest_partner(&self, core: usize) -> Option<u64> {
        self.next_fetch
            .iter()
            .enumerate()
            .filter(|&(k, &f)| k != core && f != u64::MAX)
            .map(|(_, &f)| f)
            .min()
    }

    /// Whether `core`'s fetch is currently bound by the lookahead-buffer
    /// skew limit (it ran a full partition window ahead of the slowest
    /// partner) — the telemetry disambiguator between a branch-redirect
    /// fetch gate and partitioner backpressure.
    fn skew_blocked(&self, core: usize) -> bool {
        let me = self.next_fetch[core];
        me != u64::MAX
            && self
                .slowest_partner(core)
                .is_some_and(|other| me > other + self.fetch_skew)
    }
}

/// Charges one non-commit cycle of an Fg-STP core to a [`StallCategory`]:
/// the cross-core refinements first, then the single-core decision tree.
fn classify_fgstp(
    done: bool,
    skew_blocked: bool,
    stall: CommitStall,
    d: &StatDelta,
) -> StallCategory {
    if done {
        // Drained while a partner still runs: global-commit slack.
        return StallCategory::CommitSync;
    }
    if d.replica_committed > 0 {
        // The commit slot went to replicated shadow copies.
        return StallCategory::Replication;
    }
    match stall {
        CommitStall::Idle if d.fetch_blocked > 0 && skew_blocked => StallCategory::CommBackpressure,
        CommitStall::Executing {
            replica: true,
            is_load: false,
            cross_replay: false,
            ..
        } => StallCategory::Replication,
        CommitStall::Completing { replica: true } => StallCategory::Replication,
        other => classify_single(other, d),
    }
}

impl ExecEnv for FgstpEnv<'_> {
    fn predict(&mut self, _core: usize, x: &ExecInst) -> Prediction {
        debug_assert!(x.class().is_control(), "only control flow is predicted");
        self.predictions[x.gseq as usize]
    }

    fn fetch_blocked(&mut self, core: usize, gseq: u64, now: u64) -> bool {
        if self.gate.blocked(gseq, now) {
            return true;
        }
        // Lookahead-buffer bound: the partitioner distributes at most
        // `fetch_skew` instructions ahead of the slowest core.
        self.slowest_partner(core)
            .is_some_and(|other| gseq > other + self.fetch_skew)
    }

    fn note_fetch_cursor(&mut self, core: usize, next_gseq: Option<u64>) {
        self.next_fetch[core] = next_gseq.unwrap_or(u64::MAX);
    }

    fn block_fetch_after(&mut self, _core: usize, gseq: u64) {
        self.gate.block_after(gseq);
    }

    fn resolve_fetch_block(&mut self, _core: usize, gseq: u64, resume: u64) {
        self.gate.resolve(gseq, resume);
    }

    fn on_complete(&mut self, core: usize, x: &ExecInst, cycle: u64) {
        if x.replica {
            return;
        }
        self.board[x.gseq as usize] = cycle;
        while (self.completed_frontier as usize) < self.board.len()
            && self.board[self.completed_frontier as usize] != u64::MAX
        {
            self.completed_frontier += 1;
        }
        if x.sends {
            // One queue send per destination core that consumes the value.
            let mut mask = self.send_targets[x.gseq as usize];
            while mask != 0 {
                let to = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let delivery = self.fabric.send(core, to, cycle);
                self.deliveries[to][x.gseq as usize] = delivery;
            }
        }
    }

    fn cross_operand_ready(&mut self, core: usize, producer: u64) -> Option<u64> {
        let v = self.deliveries[core][producer as usize];
        (v != u64::MAX).then_some(v)
    }

    fn cross_load_gate(
        &mut self,
        _core: usize,
        x: &ExecInst,
        ready_since: u64,
        _now: u64,
    ) -> LoadGate {
        if !self.dep_speculation {
            // Conservative cross-core ordering: wait for the youngest older
            // remote store to complete and become visible.
            let store = self.barriers[x.gseq as usize];
            if store == u64::MAX {
                return LoadGate::Free;
            }
            return match self.completed(store) {
                None => LoadGate::Retry,
                Some(c) => LoadGate::WaitUntil(c + self.store_vis_latency),
            };
        }
        let Some(md) = x.mem_dep.filter(|m| m.cross) else {
            return LoadGate::Free;
        };
        match self.completed(md.store) {
            // The conflicting remote store has not even executed: the load
            // speculates, is squashed when the store arrives, and replays.
            None => LoadGate::Retry,
            Some(c) => {
                let visible = c + self.store_vis_latency;
                if visible <= ready_since {
                    LoadGate::Free
                } else {
                    LoadGate::Replay {
                        data_at: visible + self.cross_violation_penalty,
                    }
                }
            }
        }
    }

    fn can_commit(&self, x: &ExecInst) -> bool {
        // Distributed commit: retire once every older instruction (on any
        // core) has completed. Per-core ROBs stay in order, so each core
        // retires its own instructions in order; the frontier guarantees
        // global precise-state recoverability.
        x.gseq < self.completed_frontier
    }

    fn on_commit(&mut self, _core: usize, x: &ExecInst, _cycle: u64) {
        if !x.replica {
            self.committed += 1;
        }
    }
}

/// Upper bound on cycles per instruction before declaring a deadlock.
const DEADLOCK_CPI: u64 = 2_000;

/// Runs `trace` on the Fg-STP machine; returns the timing result and the
/// Fg-STP-specific statistics.
///
/// # Panics
///
/// Panics if `hcfg` does not describe `cfg.num_cores` cores, or if the
/// machine deadlocks (a model bug).
pub fn run_fgstp(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
) -> (RunResult, FgstpStats) {
    let (result, stats, _) = run_fgstp_recorded(trace, cfg, hcfg, None);
    (result, stats)
}

/// Like [`run_fgstp`], but optionally records per-instruction pipeline
/// events on every core (pass one recorder per core) and returns them —
/// the multi-core pipeview used by the `fgstpsim pipeview2` command.
///
/// # Panics
///
/// Panics if `hcfg` does not describe `cfg.num_cores` cores, if the number
/// of recorders does not match, or if the machine deadlocks (a model bug).
#[allow(clippy::type_complexity)]
pub fn run_fgstp_recorded(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    recorders: Option<Vec<fgstp_ooo::PipeRecorder>>,
) -> (RunResult, FgstpStats, Option<Vec<fgstp_ooo::PipeRecorder>>) {
    run_fgstp_impl(trace, cfg, hcfg, recorders, &mut NullSink)
}

/// Like [`run_fgstp`], but charges every core-cycle into `sink` (cores
/// `0..num_cores`; one outcome per core per machine cycle).
///
/// Timing is bit-identical to [`run_fgstp`]: the accounting probes reuse
/// the environment's idempotent queries and never mutate pipeline,
/// predictor, queue or cache state.
///
/// # Panics
///
/// Panics if `hcfg` does not describe `cfg.num_cores` cores, or if the
/// machine deadlocks (a model bug).
pub fn run_fgstp_with_sink<S: CycleSink>(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    sink: &mut S,
) -> (RunResult, FgstpStats) {
    let (result, stats, _) = run_fgstp_impl(trace, cfg, hcfg, None, sink);
    (result, stats)
}

#[allow(clippy::type_complexity)]
fn run_fgstp_impl<S: CycleSink>(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    hcfg: &HierarchyConfig,
    recorders: Option<Vec<fgstp_ooo::PipeRecorder>>,
    sink: &mut S,
) -> (RunResult, FgstpStats, Option<Vec<fgstp_ooo::PipeRecorder>>) {
    let mut pred = PredictorState::new(&cfg.core);
    let mut mem = Hierarchy::new(hcfg);
    let (result, stats, _, recorders) =
        run_fgstp_loop(trace, cfg, &mut mem, &mut pred, recorders, sink, 0);
    (result, stats, recorders)
}

/// Runs one detailed Fg-STP window entered mid-trace with warmed
/// long-lived state (the sampled-simulation path); the N-core counterpart
/// of [`fgstp_ooo::run_single_warm`].
///
/// # Panics
///
/// Panics if `warm`'s hierarchy does not describe `cfg.num_cores` cores,
/// or if the machine deadlocks (a model bug).
pub fn run_fgstp_warm(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    warm: &mut WarmState,
    measure_from: u64,
) -> (WarmRun, FgstpStats) {
    run_fgstp_warm_with_sink(trace, cfg, warm, measure_from, &mut NullSink)
}

/// Like [`run_fgstp_warm`], but charges every core-cycle (warmup included)
/// into `sink`.
///
/// # Panics
///
/// Panics if `warm`'s hierarchy does not describe `cfg.num_cores` cores,
/// or if the machine deadlocks (a model bug).
pub fn run_fgstp_warm_with_sink<S: CycleSink>(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    warm: &mut WarmState,
    measure_from: u64,
    sink: &mut S,
) -> (WarmRun, FgstpStats) {
    let (result, stats, warmup_cycles, _) = run_fgstp_loop(
        trace,
        cfg,
        &mut warm.mem,
        &mut warm.pred,
        None,
        sink,
        measure_from,
    );
    warm.apply_writebacks(trace);
    (
        WarmRun {
            result,
            warmup_cycles,
        },
        stats,
    )
}

/// The shared machine loop: drives the N cores over `trace` against an
/// external hierarchy and predictor bundle, returning the result, the
/// Fg-STP statistics, the cycle at which the `measure_from`-th primary
/// commit landed, and any pipeline recorders.
#[allow(clippy::type_complexity)]
fn run_fgstp_loop<S: CycleSink>(
    trace: &[DynInst],
    cfg: &FgstpConfig,
    mem: &mut Hierarchy,
    pred: &mut PredictorState,
    recorders: Option<Vec<fgstp_ooo::PipeRecorder>>,
    sink: &mut S,
    measure_from: u64,
) -> (
    RunResult,
    FgstpStats,
    u64,
    Option<Vec<fgstp_ooo::PipeRecorder>>,
) {
    let n = cfg.num_cores;
    assert!(n >= 1, "Fg-STP needs at least one core");
    assert_eq!(
        mem.config().cores,
        n,
        "hierarchy core count must match FgstpConfig::num_cores"
    );
    if let Some(per_core) = &cfg.per_core {
        assert_eq!(
            per_core.len(),
            n,
            "per-core override list must match FgstpConfig::num_cores"
        );
    }
    let stream = build_exec_stream(trace);
    // Destructured so the environment can borrow the send masks and load
    // barriers while the cores borrow their streams — no per-run clones.
    let PartitionedStream {
        streams,
        send_targets,
        load_barriers,
        stats: partition_stats,
        ..
    } = partition_stream_weighted(&stream, &cfg.partition, &cfg.steering_caps());
    let mut env = FgstpEnv::new(cfg, &stream, &send_targets, &load_barriers, n, pred);
    let mut cores: Vec<Core> = streams
        .iter()
        .enumerate()
        .map(|(i, s)| Core::new(i, cfg.core_for(i), s))
        .collect();
    let recording = recorders.is_some();
    if let Some(recs) = recorders {
        assert_eq!(recs.len(), n, "one pipeline recorder per core");
        for (core, r) in cores.iter_mut().zip(recs) {
            core.set_recorder(r);
        }
    }
    let cap = (stream.len() as u64) * DEADLOCK_CPI + 100_000;
    let mut now = 0u64;
    let mut warmup_cycles = if measure_from == 0 { 0 } else { u64::MAX };
    let debug = std::env::var_os("FGSTP_TRACE").is_some();
    let mut before = vec![CoreStats::default(); n];
    while !cores.iter().all(Core::done) {
        if S::ENABLED {
            for (b, core) in before.iter_mut().zip(&cores) {
                *b = *core.stats();
            }
        }
        for core in &mut cores {
            core.cycle(now, &mut env, mem);
        }
        if S::ENABLED {
            for (i, core) in cores.iter().enumerate() {
                let d = stat_delta(&before[i], core.stats());
                let outcome = if d.committed > 0 {
                    CycleOutcome::Commit(d.committed as u32)
                } else {
                    let stall = core.commit_stall(&mut env, now);
                    CycleOutcome::Stall(classify_fgstp(core.done(), env.skew_blocked(i), stall, &d))
                };
                sink.record(i, now, outcome);
            }
        }
        now += 1;
        if warmup_cycles == u64::MAX && env.committed >= measure_from {
            warmup_cycles = now;
        }
        if debug && now.is_multiple_of(2000) {
            let snaps: Vec<String> = cores
                .iter()
                .enumerate()
                .map(|(i, c)| format!("c{i} {}", c.pipeline_snapshot()))
                .collect();
            eprintln!(
                "[{}] commit={} {}",
                now,
                env.completed_frontier,
                snaps.join(" | ")
            );
        }
        assert!(now < cap, "Fg-STP machine deadlocked at cycle {now}");
    }
    if warmup_cycles == u64::MAX {
        warmup_cycles = now;
    }
    let core_stats: Vec<CoreStats> = cores.iter().map(|c| *c.stats()).collect();
    let stats = FgstpStats {
        partition: partition_stats,
        comm: (0..n).map(|to| env.fabric.inbound_stats(to)).collect(),
        cross_violations: core_stats.iter().map(|c| c.cross_violations).sum(),
    };
    let result = RunResult {
        cycles: now,
        committed: env.committed,
        cores: core_stats,
        branches: (env.branches, env.mispredicts),
        mem: mem.stats(),
    };
    let recorders = if recording {
        Some(
            cores
                .iter_mut()
                .enumerate()
                .map(|(i, c)| {
                    c.take_recorder()
                        .unwrap_or_else(|| panic!("recorder was attached to core {i}"))
                })
                .collect(),
        )
    } else {
        None
    };
    (result, stats, warmup_cycles, recorders)
}

/// A partitioned program ready to run on an [`FgstpMachine`]: owns the
/// execution stream and the partition data the machine borrows, so
/// machines can be created against it and stepped side by side in a
/// co-run.
#[derive(Debug)]
pub struct PreparedProgram {
    stream: Vec<ExecInst>,
    parts: PartitionedStream,
}

impl PreparedProgram {
    /// Builds the annotated execution stream and partitions it for `cfg`'s
    /// machine (capacity-weighted on asymmetric machines, exactly like
    /// [`run_fgstp`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.per_core` is present with the wrong length.
    pub fn new(trace: &[DynInst], cfg: &FgstpConfig) -> PreparedProgram {
        if let Some(per_core) = &cfg.per_core {
            assert_eq!(
                per_core.len(),
                cfg.num_cores,
                "per-core override list must match FgstpConfig::num_cores"
            );
        }
        let stream = build_exec_stream(trace);
        let parts = partition_stream_weighted(&stream, &cfg.partition, &cfg.steering_caps());
        PreparedProgram { stream, parts }
    }

    /// Number of primary (architectural) instructions.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// The partitioning summary.
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.parts.stats
    }
}

/// One steppable Fg-STP machine instance over a [`PreparedProgram`] — the
/// co-run building block. [`FgstpMachine::step`] performs exactly the
/// per-cycle operations of [`run_fgstp`]'s loop (same core stepping order,
/// same shared environment), so a lone machine stepped from cycle 0
/// against a cold hierarchy is bit-identical to [`run_fgstp`]; the co-run
/// degenerate-case tests pin this down.
///
/// `mem_core_base` remaps the machine's locally-numbered cores onto a
/// slice of a larger shared hierarchy: core `i` issues its memory accesses
/// as hierarchy core `mem_core_base + i`, while every environment
/// interaction (prediction, fabric, commit) keeps the local index.
#[derive(Debug)]
pub struct FgstpMachine<'a> {
    prog: &'a PreparedProgram,
    env: FgstpEnv<'a>,
    cores: Vec<Core<'a>>,
    stepped: u64,
    cap: u64,
}

impl<'a> FgstpMachine<'a> {
    /// Builds the machine with a fresh predictor bundle.
    ///
    /// # Panics
    ///
    /// Panics if `prog` was partitioned for a different core count than
    /// `cfg.num_cores`.
    pub fn new(
        prog: &'a PreparedProgram,
        cfg: &'a FgstpConfig,
        mem_core_base: usize,
    ) -> FgstpMachine<'a> {
        let n = cfg.num_cores;
        assert_eq!(
            prog.parts.num_cores(),
            n,
            "program was partitioned for a different core count"
        );
        let mut pred = PredictorState::new(&cfg.core);
        let env = FgstpEnv::new(
            cfg,
            &prog.stream,
            &prog.parts.send_targets,
            &prog.parts.load_barriers,
            n,
            &mut pred,
        );
        let mut cores: Vec<Core> = prog
            .parts
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| Core::new(i, cfg.core_for(i), s))
            .collect();
        for (i, c) in cores.iter_mut().enumerate() {
            c.set_mem_core(mem_core_base + i);
        }
        FgstpMachine {
            prog,
            env,
            cores,
            stepped: 0,
            cap: (prog.stream.len() as u64) * DEADLOCK_CPI + 100_000,
        }
    }

    /// Whether every core has drained its stream.
    pub fn done(&self) -> bool {
        self.cores.iter().all(Core::done)
    }

    /// Primary instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.env.committed
    }

    /// Advances every core one cycle at global time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the machine exceeds its deadlock bound (a model bug).
    pub fn step(&mut self, now: u64, mem: &mut Hierarchy) {
        for core in &mut self.cores {
            core.cycle(now, &mut self.env, mem);
        }
        self.stepped += 1;
        assert!(
            self.stepped < self.cap,
            "Fg-STP machine deadlocked after {} cycles",
            self.stepped
        );
    }

    /// Consumes the machine into its results. `cycles` is the program's
    /// own elapsed-cycle count (finish minus start on the caller's clock);
    /// `mem` is the hierarchy view to embed — the program's slice of a
    /// shared hierarchy, or a private hierarchy's full stats.
    pub fn finish(self, cycles: u64, mem: HierarchyStats) -> (RunResult, FgstpStats) {
        let n = self.cores.len();
        let core_stats: Vec<CoreStats> = self.cores.iter().map(|c| *c.stats()).collect();
        let stats = FgstpStats {
            partition: self.prog.parts.stats.clone(),
            comm: (0..n).map(|to| self.env.fabric.inbound_stats(to)).collect(),
            cross_violations: core_stats.iter().map(|c| c.cross_violations).sum(),
        };
        let result = RunResult {
            cycles,
            committed: self.env.committed,
            cores: core_stats,
            branches: (self.env.branches, self.env.mispredicts),
            mem,
        };
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program, Trace};

    fn trace(src: &str) -> Trace {
        let p = assemble(src).unwrap();
        trace_program(&p, 200_000).unwrap()
    }

    /// Two independent chains — the best case for partitioning.
    fn two_chain_trace() -> Trace {
        let mut src = String::from("li x1, 1\nli x2, 1\nli x9, 150\n");
        src.push_str(
            r#"
            loop:
                add  x1, x1, x1
                xor  x3, x1, x9
                add  x2, x2, x2
                xor  x4, x2, x9
                addi x9, x9, -1
                bne  x9, x0, loop
                halt
            "#,
        );
        trace(&src)
    }

    #[test]
    fn all_instructions_commit_exactly_once() {
        let t = two_chain_trace();
        let (r, _) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
    }

    #[test]
    fn work_is_distributed_across_both_cores() {
        let t = two_chain_trace();
        let (r, s) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert!(r.cores[0].committed > 0 && r.cores[1].committed > 0);
        let balance = s.partition.balance();
        assert!((0.25..=0.75).contains(&balance), "balance {balance}");
    }

    #[test]
    fn fgstp_beats_one_small_core_on_partition_friendly_code() {
        let t = two_chain_trace();
        let single =
            fgstp_ooo::run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let (fg, _) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert!(
            fg.cycles < single.cycles,
            "Fg-STP {} should beat single core {}",
            fg.cycles,
            single.cycles
        );
    }

    #[test]
    fn communication_latency_hurts() {
        let t = two_chain_trace();
        let mut fast = FgstpConfig::small();
        fast.comm.latency = 1;
        let mut slow = FgstpConfig::small();
        slow.comm.latency = 24;
        let (f, _) = run_fgstp(t.insts(), &fast, &HierarchyConfig::small(2));
        let (s, _) = run_fgstp(t.insts(), &slow, &HierarchyConfig::small(2));
        assert!(
            f.cycles <= s.cycles,
            "latency 1 ({}) vs 24 ({})",
            f.cycles,
            s.cycles
        );
    }

    #[test]
    fn cross_core_store_load_pairs_execute_correctly() {
        // Producer/consumer through memory, forced onto opposite cores.
        let src = r#"
            li x1, 0x1000
            li x9, 100
        loop:
            sd   x9, 0(x1)
            ld   x5, 0(x1)
            add  x6, x5, x5
            addi x9, x9, -1
            bne  x9, x0, loop
            halt
        "#;
        let t = trace(src);
        let mut cfg = FgstpConfig::small();
        cfg.partition.policy = crate::partition::PartitionPolicy::ModN { chunk: 3 };
        let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
        // ModN slices the store/load pairs apart: cross memory deps exist.
        assert!(s.partition.cross_mem_deps > 0);
    }

    #[test]
    fn disabling_speculation_still_completes() {
        let t = two_chain_trace();
        let mut cfg = FgstpConfig::small();
        cfg.dep_speculation = false;
        let (r, _) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
    }

    #[test]
    fn queue_stats_are_reported_when_there_is_traffic() {
        let t = two_chain_trace();
        let mut cfg = FgstpConfig::small();
        cfg.partition.policy = crate::partition::PartitionPolicy::ModN { chunk: 2 };
        cfg.partition.replication = false;
        let (_, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert!(
            s.comm_total().sends > 0,
            "chunked round-robin must communicate"
        );
        assert_eq!(s.comm.len(), 2, "one inbound summary per core");
    }

    #[test]
    fn four_core_machine_commits_the_whole_trace() {
        let t = two_chain_trace();
        for n in [3usize, 4] {
            let cfg = FgstpConfig::small().with_cores(n);
            let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(n));
            assert_eq!(r.committed, t.len() as u64, "num_cores = {n}");
            assert_eq!(r.cores.len(), n);
            assert_eq!(s.comm.len(), n);
            assert_eq!(s.partition.insts.len(), n);
        }
    }

    #[test]
    fn asymmetric_machine_commits_the_whole_trace() {
        let t = two_chain_trace();
        let cfg =
            FgstpConfig::small().with_per_core(vec![CoreConfig::medium(), CoreConfig::small()]);
        let (r, s) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
        assert_eq!(r.committed, t.len() as u64);
        assert_eq!(r.cores.len(), 2);
        // The wide core is favored by weighted steering.
        assert!(s.partition.insts[0] >= s.partition.insts[1]);
    }

    #[test]
    fn identical_per_core_list_matches_the_uniform_machine_exactly() {
        let t = two_chain_trace();
        let uniform = FgstpConfig::small();
        let listed = FgstpConfig::small().with_per_core(vec![CoreConfig::small(); 2]);
        let (a, _) = run_fgstp(t.insts(), &uniform, &HierarchyConfig::small(2));
        let (b, _) = run_fgstp(t.insts(), &listed, &HierarchyConfig::small(2));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    #[should_panic(expected = "per-core override list")]
    fn wrong_per_core_length_is_rejected() {
        let t = trace("li x1, 1\nhalt");
        let mut cfg = FgstpConfig::small();
        cfg.per_core = Some(vec![CoreConfig::small()]);
        run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(2));
    }

    #[test]
    fn sink_accounts_both_cores_without_changing_timing() {
        let t = two_chain_trace();
        let (plain, _) = run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(2));
        let mut sink = fgstp_telemetry::CpiSink::new(2);
        let (r, _) = run_fgstp_with_sink(
            t.insts(),
            &FgstpConfig::small(),
            &HierarchyConfig::small(2),
            &mut sink,
        );
        assert_eq!(r.cycles, plain.cycles, "telemetry must not change timing");
        assert_eq!(r.committed, plain.committed);
        // Each core's stack covers every machine cycle: the merged total is
        // 2 × machine cycles (aggregate core-cycles).
        for (i, stack) in sink.stacks().iter().enumerate() {
            stack
                .check_against(r.cycles)
                .unwrap_or_else(|e| panic!("core {i}: {e}"));
        }
        let merged = sink.merged();
        merged.check_against(2 * r.cycles).unwrap();
        assert_eq!(merged.committed, r.committed);
    }

    #[test]
    fn sink_accounts_four_cores_without_changing_timing() {
        let t = two_chain_trace();
        let cfg = FgstpConfig::small().with_cores(4);
        let (plain, _) = run_fgstp(t.insts(), &cfg, &HierarchyConfig::small(4));
        let mut sink = fgstp_telemetry::CpiSink::new(4);
        let (r, _) = run_fgstp_with_sink(t.insts(), &cfg, &HierarchyConfig::small(4), &mut sink);
        assert_eq!(r.cycles, plain.cycles, "telemetry must not change timing");
        let merged = sink.merged();
        merged.check_against(4 * r.cycles).unwrap();
        assert_eq!(merged.committed, r.committed);
    }

    #[test]
    fn fgstp_classifier_covers_every_refinement() {
        let d = StatDelta::default();
        // A drained core is global-commit slack no matter what the probe says.
        assert_eq!(
            classify_fgstp(true, false, CommitStall::Idle, &d),
            StallCategory::CommitSync
        );
        // A commit slot spent on replicated shadow copies is replication cost.
        let replicas = StatDelta {
            replica_committed: 2,
            ..d
        };
        assert_eq!(
            classify_fgstp(false, false, CommitStall::Idle, &replicas),
            StallCategory::Replication
        );
        // Empty ROB because the lookahead gate holds fetch back for the
        // partner core: back-pressure, not a frontend problem.
        let gated = StatDelta {
            fetch_blocked: 3,
            ..d
        };
        assert_eq!(
            classify_fgstp(false, true, CommitStall::Idle, &gated),
            StallCategory::CommBackpressure
        );
        // ...but the same empty ROB without skew gating falls through to
        // the single-core classifier (fetch gated by a branch redirect).
        assert_eq!(
            classify_fgstp(false, false, CommitStall::Idle, &gated),
            StallCategory::BranchRedirect
        );
        // Executing / completing replicas charge to replication, while a
        // replaying load keeps its memory-dependence attribution.
        assert_eq!(
            classify_fgstp(
                false,
                false,
                CommitStall::Executing {
                    is_load: false,
                    mem_level: None,
                    cross_replay: false,
                    replica: true,
                },
                &d
            ),
            StallCategory::Replication
        );
        assert_eq!(
            classify_fgstp(false, false, CommitStall::Completing { replica: true }, &d),
            StallCategory::Replication
        );
        assert_eq!(
            classify_fgstp(
                false,
                false,
                CommitStall::Executing {
                    is_load: true,
                    mem_level: None,
                    cross_replay: true,
                    replica: true,
                },
                &d
            ),
            StallCategory::MemDepReplay
        );
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_hierarchy_is_rejected() {
        let t = trace("li x1, 1\nhalt");
        run_fgstp(t.insts(), &FgstpConfig::small(), &HierarchyConfig::small(1));
    }

    #[test]
    fn empty_trace_finishes() {
        let (r, _) = run_fgstp(&[], &FgstpConfig::small(), &HierarchyConfig::small(2));
        assert_eq!(r.committed, 0);
    }
}
