//! Property tests for the Fg-STP crate's communication queue and
//! dependence-graph substrates.
//!
//! Cases come from the workspace's deterministic [`Xorshift`] generator;
//! every assertion names its case seed so failures replay exactly.

use fgstp::{CommConfig, CommQueue, DepGraph, PartitionPolicy};
use fgstp_isa::{assemble, trace_program};
use fgstp_ooo::build_exec_stream;
use fgstp_workloads::gen::Xorshift;

/// Queue deliveries respect latency, are monotone for chronological
/// sends, and back-pressure never reorders.
#[test]
fn commq_deliveries_are_monotone() {
    for case in 0..256u64 {
        let mut g = Xorshift::new(0x31_0001 + case);
        let latency = g.range_u64(1, 16);
        let bandwidth = g.range_u64(1, 4) as u32;
        let capacity = g.range_usize(1, 32);
        let mut q = CommQueue::new(CommConfig {
            latency,
            bandwidth,
            capacity,
        });
        let mut now = 0u64;
        let mut last_delivery = 0u64;
        let total = g.range_usize(1, 100) as u64;
        for _ in 0..total {
            now += g.below(6);
            let d = q.send(now);
            assert!(
                d >= now + latency,
                "case {case}: delivery {d} violates latency"
            );
            assert!(
                d >= last_delivery,
                "case {case}: deliveries must be monotone"
            );
            last_delivery = d;
        }
        assert_eq!(q.sends(), total, "case {case}");
    }
}

/// With ample bandwidth and capacity there is never back-pressure.
#[test]
fn commq_uncontended_is_pure_latency() {
    for case in 0..256u64 {
        let mut g = Xorshift::new(0x32_0001 + case);
        let latency = g.range_u64(1, 16);
        let mut q = CommQueue::new(CommConfig {
            latency,
            bandwidth: 64,
            capacity: 4096,
        });
        let mut now = 0u64;
        for _ in 0..g.range_usize(1, 50) {
            now += g.range_u64(1, 10);
            assert_eq!(q.send(now), now + latency, "case {case}");
        }
        assert_eq!(q.backpressure_cycles(), 0, "case {case}");
    }
}

/// Dependence-graph structural invariants on straight-line programs:
/// edges point forward, depths are consistent, the critical path is a
/// real chain.
#[test]
fn depgraph_invariants() {
    for case in 0..100u64 {
        let mut g = Xorshift::new(0x33_0001 + case);
        // Build a random ALU program over 4 registers.
        let mut src = String::from("li x1, 1\nli x2, 2\nli x3, 3\nli x4, 4\n");
        for i in 0..g.range_usize(2, 60) {
            let d = 1 + (i % 4);
            let a = 1 + ((i * 7 + 1) % 4);
            let b = 1 + ((i * 5 + 2) % 4);
            let m = ["add", "xor", "mul", "sub", "and"][g.below(5) as usize];
            src.push_str(&format!("{m} x{d}, x{a}, x{b}\n"));
        }
        src.push_str("halt\n");
        let p = assemble(&src).unwrap();
        let t = trace_program(&p, 10_000).unwrap();
        let s = build_exec_stream(t.insts());
        let graph = DepGraph::build(&s);
        for i in 0..graph.len() {
            for &pr in graph.preds(i) {
                let pr = pr as usize;
                assert!(pr < i, "case {case}: edges point forward");
                assert!(
                    graph.succs(pr).contains(&(i as u32)),
                    "case {case}: succ lists mirror preds"
                );
            }
        }
        let from = graph.depth_from_sources();
        for i in 0..graph.len() {
            for &pr in graph.preds(i) {
                assert!(
                    from[i] >= from[pr as usize] + graph.weight(i),
                    "case {case}: depths accumulate"
                );
            }
        }
        let cp = graph.critical_path();
        assert!(!cp.is_empty(), "case {case}");
        for w in cp.windows(2) {
            assert!(
                graph.preds(w[1]).contains(&(w[0] as u32)),
                "case {case}: critical path is a chain"
            );
        }
        // The cut of the everything-on-one-core assignment is zero.
        assert_eq!(graph.cut_size(&vec![0u8; graph.len()]), 0, "case {case}");
    }
}

/// Partition balance: on a stream of many independent chains, the
/// lookahead partitioner keeps both cores busy.
#[test]
fn lookahead_balances_independent_chains() {
    for case in 0..64u64 {
        let mut g = Xorshift::new(0x34_0001 + case);
        let chains = g.range_usize(2, 6);
        let links = g.range_usize(4, 20);
        let mut src = String::new();
        for c in 0..chains {
            src.push_str(&format!("li x{}, {}\n", c + 1, c + 1));
        }
        for _ in 0..links {
            for c in 0..chains {
                src.push_str(&format!("mul x{r}, x{r}, x{r}\n", r = c + 1));
            }
        }
        src.push_str("halt\n");
        let p = assemble(&src).unwrap();
        let t = trace_program(&p, 100_000).unwrap();
        let s = build_exec_stream(t.insts());
        let part = fgstp::partition_stream(
            &s,
            &fgstp::PartitionConfig {
                policy: PartitionPolicy::SliceLookahead {
                    window: 256,
                    refine_passes: 2,
                },
                replication: false,
                balance_slack: 0.2,
            },
            2,
        );
        let balance = part.stats.balance();
        assert!(
            (0.2..=0.8).contains(&balance),
            "case {case}: independent chains should spread: balance {balance}, {:?}",
            part.stats
        );
    }
}
