//! Property tests for the Fg-STP crate's communication queue and
//! dependence-graph substrates.

use proptest::prelude::*;

use fgstp::{CommConfig, CommQueue, DepGraph, PartitionPolicy};
use fgstp_isa::{assemble, trace_program};
use fgstp_ooo::build_exec_stream;

proptest! {
    /// Queue deliveries respect latency, are monotone for chronological
    /// sends, and back-pressure never reorders.
    #[test]
    fn commq_deliveries_are_monotone(
        latency in 1u64..16,
        bandwidth in 1u32..4,
        capacity in 1usize..32,
        gaps in proptest::collection::vec(0u64..6, 1..100),
    ) {
        let mut q = CommQueue::new(CommConfig { latency, bandwidth, capacity });
        let mut now = 0u64;
        let mut last_delivery = 0u64;
        let total = gaps.len() as u64;
        for gap in gaps {
            now += gap;
            let d = q.send(now);
            prop_assert!(d >= now + latency, "delivery {d} violates latency");
            prop_assert!(d >= last_delivery, "deliveries must be monotone");
            last_delivery = d;
        }
        prop_assert_eq!(q.sends(), total);
    }

    /// With ample bandwidth and capacity there is never back-pressure.
    #[test]
    fn commq_uncontended_is_pure_latency(
        latency in 1u64..16,
        times in proptest::collection::vec(1u64..10, 1..50),
    ) {
        let mut q = CommQueue::new(CommConfig { latency, bandwidth: 64, capacity: 4096 });
        let mut now = 0u64;
        for gap in times {
            now += gap;
            prop_assert_eq!(q.send(now), now + latency);
        }
        prop_assert_eq!(q.backpressure_cycles(), 0);
    }

    /// Dependence-graph structural invariants on straight-line programs:
    /// edges point forward, depths are consistent, the critical path is a
    /// real chain.
    #[test]
    fn depgraph_invariants(ops in proptest::collection::vec(0u8..5, 2..60)) {
        // Build a random ALU program over 4 registers.
        let mut src = String::from("li x1, 1\nli x2, 2\nli x3, 3\nli x4, 4\n");
        for (i, op) in ops.iter().enumerate() {
            let d = 1 + (i % 4);
            let a = 1 + ((i * 7 + 1) % 4);
            let b = 1 + ((i * 5 + 2) % 4);
            let m = match op { 0 => "add", 1 => "xor", 2 => "mul", 3 => "sub", _ => "and" };
            src.push_str(&format!("{m} x{d}, x{a}, x{b}\n"));
        }
        src.push_str("halt\n");
        let p = assemble(&src).unwrap();
        let t = trace_program(&p, 10_000).unwrap();
        let s = build_exec_stream(t.insts());
        let g = DepGraph::build(&s);
        for i in 0..g.len() {
            for &p in g.preds(i) {
                prop_assert!(p < i, "edges point forward");
                prop_assert!(g.succs(p).contains(&i), "succ lists mirror preds");
            }
        }
        let from = g.depth_from_sources();
        for i in 0..g.len() {
            for &p in g.preds(i) {
                prop_assert!(from[i] >= from[p] + g.weight(i), "depths accumulate");
            }
        }
        let cp = g.critical_path();
        prop_assert!(!cp.is_empty());
        for w in cp.windows(2) {
            prop_assert!(g.preds(w[1]).contains(&w[0]), "critical path is a chain");
        }
        // The cut of the everything-on-one-core assignment is zero.
        prop_assert_eq!(g.cut_size(&vec![0u8; g.len()]), 0);
    }

    /// Partition balance: on a stream of many independent chains, the
    /// lookahead partitioner keeps both cores busy.
    #[test]
    fn lookahead_balances_independent_chains(chains in 2usize..6, links in 4usize..20) {
        let mut src = String::new();
        for c in 0..chains {
            src.push_str(&format!("li x{}, {}\n", c + 1, c + 1));
        }
        for _ in 0..links {
            for c in 0..chains {
                src.push_str(&format!("mul x{r}, x{r}, x{r}\n", r = c + 1));
            }
        }
        src.push_str("halt\n");
        let p = assemble(&src).unwrap();
        let t = trace_program(&p, 100_000).unwrap();
        let s = build_exec_stream(t.insts());
        let part = fgstp::partition_stream(
            &s,
            &fgstp::PartitionConfig {
                policy: PartitionPolicy::SliceLookahead { window: 256, refine_passes: 2 },
                replication: false,
                balance_slack: 0.2,
            },
        );
        let balance = part.stats.balance();
        prop_assert!(
            (0.2..=0.8).contains(&balance),
            "independent chains should spread: balance {balance}, {:?}",
            part.stats
        );
    }
}
