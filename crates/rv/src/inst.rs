//! Typed RV32IM instruction representation.

use std::fmt;

/// One RV32IM opcode.
///
/// The set covers the RV32I base integer ISA plus the M extension —
/// everything the in-tree assembly programs (and a compiler targeting
/// `rv32im`) can produce. `Fence`, `Ecall` and `Ebreak` are included so
/// the decoder is total over well-formed words; the emulator treats
/// `Fence` as a no-op and both system instructions as a clean halt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RvOp {
    // R-type (OP).
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // R-type, M extension.
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    // I-type (OP-IMM).
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    // Loads.
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    // Stores.
    Sb,
    Sh,
    Sw,
    // Branches.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    // Upper-immediate.
    Lui,
    Auipc,
    // Jumps.
    Jal,
    Jalr,
    // Misc.
    Fence,
    Ecall,
    Ebreak,
}

/// Operand shape of an [`RvOp`], driving encode/decode/display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RvFormat {
    /// `op rd, rs1, rs2`.
    R,
    /// `op rd, rs1, imm` (ALU immediates, `jalr`).
    I,
    /// `op rd, imm(rs1)` (loads).
    Load,
    /// `op rs2, imm(rs1)` (stores).
    S,
    /// `op rs1, rs2, imm` (branches; `imm` is a byte offset from the pc).
    B,
    /// `op rd, imm` (`lui`/`auipc`; `imm` carries the full shifted value).
    U,
    /// `jal rd, imm` (`imm` is a byte offset from the pc).
    J,
    /// No register operands (`fence`, `ecall`, `ebreak`).
    Sys,
}

impl RvOp {
    /// The operand shape of this opcode.
    pub fn format(self) -> RvFormat {
        use RvOp::*;
        match self {
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Mul | Mulh | Mulhsu
            | Mulhu | Div | Divu | Rem | Remu => RvFormat::R,
            Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai | Jalr => RvFormat::I,
            Lb | Lh | Lw | Lbu | Lhu => RvFormat::Load,
            Sb | Sh | Sw => RvFormat::S,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => RvFormat::B,
            Lui | Auipc => RvFormat::U,
            Jal => RvFormat::J,
            Fence | Ecall | Ebreak => RvFormat::Sys,
        }
    }

    /// Whether the instruction writes `rd` (x0 writes are discarded).
    pub fn writes_rd(self) -> bool {
        matches!(
            self.format(),
            RvFormat::R | RvFormat::I | RvFormat::Load | RvFormat::U | RvFormat::J
        )
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use RvOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Mul => "mul",
            Mulh => "mulh",
            Mulhsu => "mulhsu",
            Mulhu => "mulhu",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Lb => "lb",
            Lh => "lh",
            Lw => "lw",
            Lbu => "lbu",
            Lhu => "lhu",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Lui => "lui",
            Auipc => "auipc",
            Jal => "jal",
            Jalr => "jalr",
            Fence => "fence",
            Ecall => "ecall",
            Ebreak => "ebreak",
        }
    }

    /// Every computational opcode (system instructions excluded), for
    /// exhaustive tests and random instruction generation.
    pub const ALL: [RvOp; 45] = {
        use RvOp::*;
        [
            Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And, Mul, Mulh, Mulhsu, Mulhu, Div, Divu,
            Rem, Remu, Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai, Lb, Lh, Lw, Lbu, Lhu,
            Sb, Sh, Sw, Beq, Bne, Blt, Bge, Bltu, Bgeu, Lui, Auipc, Jal, Jalr,
        ]
    };
}

/// A decoded RV32IM instruction.
///
/// Fields an opcode does not use are zero. `imm` holds the sign-extended
/// immediate in the opcode's natural unit: byte offsets for memory,
/// branches and `jal`, the full shifted constant for `lui`/`auipc`
/// (low 12 bits zero), the shift amount for `slli`/`srli`/`srai`, and the
/// raw 12-bit field for `fence` (pred/succ bits) and
/// `ecall`/`ebreak` (funct12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RvInst {
    /// The opcode.
    pub op: RvOp,
    /// Destination register number (0–31).
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Immediate, see the struct docs.
    pub imm: i32,
}

impl RvInst {
    /// A register-register instruction.
    pub fn r(op: RvOp, rd: u8, rs1: u8, rs2: u8) -> RvInst {
        debug_assert_eq!(op.format(), RvFormat::R);
        RvInst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// A register-immediate instruction (`addi`, `jalr`, loads).
    pub fn i(op: RvOp, rd: u8, rs1: u8, imm: i32) -> RvInst {
        debug_assert!(matches!(op.format(), RvFormat::I | RvFormat::Load));
        RvInst {
            op,
            rd,
            rs1,
            rs2: 0,
            imm,
        }
    }

    /// A store (`sw rs2, imm(rs1)`).
    pub fn s(op: RvOp, rs2: u8, rs1: u8, imm: i32) -> RvInst {
        debug_assert_eq!(op.format(), RvFormat::S);
        RvInst {
            op,
            rd: 0,
            rs1,
            rs2,
            imm,
        }
    }

    /// A branch with a byte offset from its own pc.
    pub fn b(op: RvOp, rs1: u8, rs2: u8, offset: i32) -> RvInst {
        debug_assert_eq!(op.format(), RvFormat::B);
        RvInst {
            op,
            rd: 0,
            rs1,
            rs2,
            imm: offset,
        }
    }

    /// `lui`/`auipc` carrying the full shifted constant.
    pub fn u(op: RvOp, rd: u8, value: i32) -> RvInst {
        debug_assert_eq!(op.format(), RvFormat::U);
        debug_assert_eq!(value & 0xfff, 0, "U-type constant has zero low bits");
        RvInst {
            op,
            rd,
            rs1: 0,
            rs2: 0,
            imm: value,
        }
    }

    /// `jal rd` with a byte offset from its own pc.
    pub fn jal(rd: u8, offset: i32) -> RvInst {
        RvInst {
            op: RvOp::Jal,
            rd,
            rs1: 0,
            rs2: 0,
            imm: offset,
        }
    }

    /// A system instruction (`fence`/`ecall`/`ebreak`).
    pub fn sys(op: RvOp, imm: i32) -> RvInst {
        debug_assert_eq!(op.format(), RvFormat::Sys);
        RvInst {
            op,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm,
        }
    }
}

impl fmt::Display for RvInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.format() {
            RvFormat::R => write!(f, "{m} x{}, x{}, x{}", self.rd, self.rs1, self.rs2),
            RvFormat::I => write!(f, "{m} x{}, x{}, {}", self.rd, self.rs1, self.imm),
            RvFormat::Load => write!(f, "{m} x{}, {}(x{})", self.rd, self.imm, self.rs1),
            RvFormat::S => write!(f, "{m} x{}, {}(x{})", self.rs2, self.imm, self.rs1),
            RvFormat::B => write!(f, "{m} x{}, x{}, {}", self.rs1, self.rs2, self.imm),
            RvFormat::U => write!(f, "{m} x{}, {:#x}", self.rd, (self.imm as u32) >> 12),
            RvFormat::J => write!(f, "{m} x{}, {}", self.rd, self.imm),
            RvFormat::Sys => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_partition_the_opcode_set() {
        for op in RvOp::ALL {
            // Every opcode has a total format and mnemonic.
            let _ = op.format();
            assert!(!op.mnemonic().is_empty());
        }
        assert_eq!(RvOp::Fence.format(), RvFormat::Sys);
        assert_eq!(RvOp::Ecall.format(), RvFormat::Sys);
    }

    #[test]
    fn display_formats_common_shapes() {
        assert_eq!(RvInst::r(RvOp::Add, 1, 2, 3).to_string(), "add x1, x2, x3");
        assert_eq!(RvInst::i(RvOp::Lw, 5, 2, -8).to_string(), "lw x5, -8(x2)");
        assert_eq!(RvInst::s(RvOp::Sw, 7, 2, 12).to_string(), "sw x7, 12(x2)");
        assert_eq!(
            RvInst::b(RvOp::Bne, 1, 0, -16).to_string(),
            "bne x1, x0, -16"
        );
        assert_eq!(RvInst::u(RvOp::Lui, 3, 0x10000).to_string(), "lui x3, 0x10");
    }
}
