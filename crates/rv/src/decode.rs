//! RV32IM instruction decoder: 32-bit words to typed [`RvInst`]s.

use std::fmt;

use crate::inst::{RvInst, RvOp};

/// A word the decoder does not recognise as RV32IM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal RV32IM instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1f) as u8
}

fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}

fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1f) as u8
}

fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}

fn funct7(w: u32) -> u32 {
    w >> 25
}

/// Sign-extended 12-bit I-type immediate.
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

/// Sign-extended 12-bit S-type immediate.
fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | ((w >> 7) & 0x1f) as i32
}

/// Sign-extended 13-bit B-type byte offset (bit 0 is zero).
fn imm_b(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 12
    (sign << 12)
        | (((w >> 7) & 0x1) as i32) << 11
        | (((w >> 25) & 0x3f) as i32) << 5
        | (((w >> 8) & 0xf) as i32) << 1
}

/// U-type constant: the upper 20 bits, already shifted into place.
fn imm_u(w: u32) -> i32 {
    (w & 0xffff_f000) as i32
}

/// Sign-extended 21-bit J-type byte offset (bit 0 is zero).
fn imm_j(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 20
    (sign << 20)
        | (((w >> 12) & 0xff) as i32) << 12
        | (((w >> 20) & 0x1) as i32) << 11
        | (((w >> 21) & 0x3ff) as i32) << 1
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] carrying the word when it is not a valid
/// RV32IM encoding (reserved opcode, bad funct7, compressed-width low
/// bits, …).
pub fn decode(w: u32) -> Result<RvInst, DecodeError> {
    use RvOp::*;
    let err = Err(DecodeError { word: w });
    if w & 0x3 != 0x3 {
        // 16-bit (compressed) or reserved instruction widths.
        return err;
    }
    let opcode = w & 0x7f;
    let inst = match opcode {
        // LUI / AUIPC.
        0b0110111 => RvInst::u(Lui, rd(w), imm_u(w)),
        0b0010111 => RvInst::u(Auipc, rd(w), imm_u(w)),
        // JAL.
        0b1101111 => RvInst::jal(rd(w), imm_j(w)),
        // JALR.
        0b1100111 => {
            if funct3(w) != 0 {
                return err;
            }
            RvInst::i(Jalr, rd(w), rs1(w), imm_i(w))
        }
        // Branches.
        0b1100011 => {
            let op = match funct3(w) {
                0b000 => Beq,
                0b001 => Bne,
                0b100 => Blt,
                0b101 => Bge,
                0b110 => Bltu,
                0b111 => Bgeu,
                _ => return err,
            };
            RvInst::b(op, rs1(w), rs2(w), imm_b(w))
        }
        // Loads.
        0b0000011 => {
            let op = match funct3(w) {
                0b000 => Lb,
                0b001 => Lh,
                0b010 => Lw,
                0b100 => Lbu,
                0b101 => Lhu,
                _ => return err,
            };
            RvInst::i(op, rd(w), rs1(w), imm_i(w))
        }
        // Stores.
        0b0100011 => {
            let op = match funct3(w) {
                0b000 => Sb,
                0b001 => Sh,
                0b010 => Sw,
                _ => return err,
            };
            RvInst::s(op, rs2(w), rs1(w), imm_s(w))
        }
        // OP-IMM.
        0b0010011 => {
            let f3 = funct3(w);
            let op = match f3 {
                0b000 => Addi,
                0b010 => Slti,
                0b011 => Sltiu,
                0b100 => Xori,
                0b110 => Ori,
                0b111 => Andi,
                0b001 => {
                    if funct7(w) != 0 {
                        return err;
                    }
                    Slli
                }
                0b101 => match funct7(w) {
                    0b0000000 => Srli,
                    0b0100000 => Srai,
                    _ => return err,
                },
                _ => unreachable!("funct3 is 3 bits"),
            };
            let imm = match op {
                Slli | Srli | Srai => rs2(w) as i32, // shamt
                _ => imm_i(w),
            };
            RvInst::i(op, rd(w), rs1(w), imm)
        }
        // OP.
        0b0110011 => {
            let op = match (funct7(w), funct3(w)) {
                (0b0000000, 0b000) => Add,
                (0b0100000, 0b000) => Sub,
                (0b0000000, 0b001) => Sll,
                (0b0000000, 0b010) => Slt,
                (0b0000000, 0b011) => Sltu,
                (0b0000000, 0b100) => Xor,
                (0b0000000, 0b101) => Srl,
                (0b0100000, 0b101) => Sra,
                (0b0000000, 0b110) => Or,
                (0b0000000, 0b111) => And,
                (0b0000001, 0b000) => Mul,
                (0b0000001, 0b001) => Mulh,
                (0b0000001, 0b010) => Mulhsu,
                (0b0000001, 0b011) => Mulhu,
                (0b0000001, 0b100) => Div,
                (0b0000001, 0b101) => Divu,
                (0b0000001, 0b110) => Rem,
                (0b0000001, 0b111) => Remu,
                _ => return err,
            };
            RvInst::r(op, rd(w), rs1(w), rs2(w))
        }
        // MISC-MEM: fence (pred/succ kept in imm for round-tripping).
        0b0001111 => {
            if funct3(w) != 0 || rd(w) != 0 || rs1(w) != 0 {
                return err;
            }
            RvInst::sys(Fence, imm_i(w))
        }
        // SYSTEM: ecall / ebreak.
        0b1110011 => {
            if funct3(w) != 0 || rd(w) != 0 || rs1(w) != 0 {
                return err;
            }
            match imm_i(w) {
                0 => RvInst::sys(Ecall, 0),
                1 => RvInst::sys(Ebreak, 1),
                _ => return err,
            }
        }
        _ => return err,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_reference_encodings() {
        // Encodings cross-checked against the RISC-V ISA manual examples.
        assert_eq!(decode(0x00000013).unwrap(), RvInst::i(RvOp::Addi, 0, 0, 0)); // nop
        assert_eq!(
            decode(0x00b50633).unwrap(),
            RvInst::r(RvOp::Add, 12, 10, 11)
        );
        assert_eq!(
            decode(0x40b50633).unwrap(),
            RvInst::r(RvOp::Sub, 12, 10, 11)
        );
        assert_eq!(
            decode(0x02b50633).unwrap(),
            RvInst::r(RvOp::Mul, 12, 10, 11)
        );
        assert_eq!(
            decode(0xfff00593).unwrap(),
            RvInst::i(RvOp::Addi, 11, 0, -1)
        );
        assert_eq!(
            decode(0x000105b7).unwrap(),
            RvInst::u(RvOp::Lui, 11, 0x10000)
        );
        assert_eq!(decode(0xff872283).unwrap(), RvInst::i(RvOp::Lw, 5, 14, -8));
        assert_eq!(decode(0x00552423).unwrap(), RvInst::s(RvOp::Sw, 5, 10, 8));
        assert_eq!(decode(0x00000073).unwrap(), RvInst::sys(RvOp::Ecall, 0));
        assert_eq!(decode(0x00100073).unwrap(), RvInst::sys(RvOp::Ebreak, 1));
    }

    #[test]
    fn branch_offset_reassembles_with_sign() {
        // beq x1, x2, -4 (backward by one instruction).
        let w = decode(0xfe208ee3).unwrap();
        assert_eq!(w, RvInst::b(RvOp::Beq, 1, 2, -4));
    }

    #[test]
    fn jal_offset_reassembles_with_sign() {
        // jal x1, -16.
        let w = decode(0xff1ff0ef).unwrap();
        assert_eq!(w, RvInst::jal(1, -16));
    }

    #[test]
    fn rejects_compressed_and_reserved_words() {
        assert!(decode(0x0000).is_err()); // all-zero (compressed width)
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000007f).is_err()); // reserved major opcode
    }
}
