//! RV32IM instruction encoder: typed [`RvInst`]s to 32-bit words.
//!
//! The inverse of [`mod@crate::decode`]: `decode(encode(i)) == i` for every
//! well-formed instruction, and `encode(decode(w)) == w` for every word
//! the decoder accepts — both pinned by property tests.

use crate::inst::{RvFormat, RvInst, RvOp};

fn opcode(op: RvOp) -> u32 {
    use RvOp::*;
    match op {
        Lui => 0b0110111,
        Auipc => 0b0010111,
        Jal => 0b1101111,
        Jalr => 0b1100111,
        Beq | Bne | Blt | Bge | Bltu | Bgeu => 0b1100011,
        Lb | Lh | Lw | Lbu | Lhu => 0b0000011,
        Sb | Sh | Sw => 0b0100011,
        Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai => 0b0010011,
        Fence => 0b0001111,
        Ecall | Ebreak => 0b1110011,
        _ => 0b0110011, // R-type OP
    }
}

fn funct3(op: RvOp) -> u32 {
    use RvOp::*;
    match op {
        Add | Sub | Addi | Mul | Beq | Lb | Sb | Jalr | Fence | Ecall | Ebreak => 0b000,
        Sll | Slli | Mulh | Bne | Lh | Sh => 0b001,
        Slt | Slti | Mulhsu | Lw | Sw => 0b010,
        Sltu | Sltiu | Mulhu => 0b011,
        Xor | Xori | Div | Blt | Lbu => 0b100,
        Srl | Sra | Srli | Srai | Divu | Bge | Lhu => 0b101,
        Or | Ori | Rem | Bltu => 0b110,
        And | Andi | Remu | Bgeu => 0b111,
        Lui | Auipc | Jal => 0,
    }
}

fn funct7(op: RvOp) -> u32 {
    use RvOp::*;
    match op {
        Sub | Sra | Srai => 0b0100000,
        Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu => 0b0000001,
        _ => 0,
    }
}

/// Encodes one instruction to its 32-bit word.
///
/// # Panics
///
/// Debug-asserts that register numbers and immediates fit their fields
/// (the assembler range-checks before calling; hand-built `RvInst`s must
/// respect the same ranges).
pub fn encode(inst: &RvInst) -> u32 {
    let RvInst {
        op,
        rd,
        rs1,
        rs2,
        imm,
    } = *inst;
    debug_assert!(rd < 32 && rs1 < 32 && rs2 < 32);
    let (rd, rs1, rs2) = (rd as u32, rs1 as u32, rs2 as u32);
    let base = opcode(op) | funct3(op) << 12;
    match op.format() {
        RvFormat::R => base | rd << 7 | rs1 << 15 | rs2 << 20 | funct7(op) << 25,
        RvFormat::I | RvFormat::Load => {
            let imm12 = match op {
                RvOp::Slli | RvOp::Srli | RvOp::Srai => {
                    debug_assert!((0..32).contains(&imm), "shamt {imm}");
                    (imm as u32) | funct7(op) << 5
                }
                _ => {
                    debug_assert!((-2048..2048).contains(&imm), "I-imm {imm}");
                    (imm as u32) & 0xfff
                }
            };
            base | rd << 7 | rs1 << 15 | imm12 << 20
        }
        RvFormat::S => {
            debug_assert!((-2048..2048).contains(&imm), "S-imm {imm}");
            let imm = imm as u32;
            base | (imm & 0x1f) << 7 | rs1 << 15 | rs2 << 20 | (imm >> 5 & 0x7f) << 25
        }
        RvFormat::B => {
            debug_assert!(
                (-4096..4096).contains(&imm) && imm & 1 == 0,
                "B-offset {imm}"
            );
            let imm = imm as u32;
            base | (imm >> 11 & 0x1) << 7
                | (imm >> 1 & 0xf) << 8
                | rs1 << 15
                | rs2 << 20
                | (imm >> 5 & 0x3f) << 25
                | (imm >> 12 & 0x1) << 31
        }
        RvFormat::U => {
            debug_assert_eq!(imm & 0xfff, 0, "U-constant {imm:#x}");
            base | rd << 7 | (imm as u32)
        }
        RvFormat::J => {
            debug_assert!(
                (-(1 << 20)..1 << 20).contains(&imm) && imm & 1 == 0,
                "J-offset {imm}"
            );
            let imm = imm as u32;
            base | rd << 7
                | (imm >> 12 & 0xff) << 12
                | (imm >> 11 & 0x1) << 20
                | (imm >> 1 & 0x3ff) << 21
                | (imm >> 20 & 0x1) << 31
        }
        RvFormat::Sys => {
            debug_assert!((-2048..2048).contains(&imm), "funct12 {imm}");
            base | ((imm as u32) & 0xfff) << 20
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn encodes_reference_words() {
        assert_eq!(encode(&RvInst::i(RvOp::Addi, 0, 0, 0)), 0x00000013);
        assert_eq!(encode(&RvInst::r(RvOp::Add, 12, 10, 11)), 0x00b50633);
        assert_eq!(encode(&RvInst::u(RvOp::Lui, 11, 0x10000)), 0x000105b7);
        assert_eq!(encode(&RvInst::s(RvOp::Sw, 5, 10, 8)), 0x00552423);
        assert_eq!(encode(&RvInst::b(RvOp::Beq, 1, 2, -4)), 0xfe208ee3);
        assert_eq!(encode(&RvInst::jal(1, -16)), 0xff1ff0ef);
        assert_eq!(encode(&RvInst::sys(RvOp::Ecall, 0)), 0x00000073);
        assert_eq!(encode(&RvInst::sys(RvOp::Ebreak, 1)), 0x00100073);
    }

    #[test]
    fn edge_immediates_round_trip() {
        for inst in [
            RvInst::i(RvOp::Addi, 31, 31, -2048),
            RvInst::i(RvOp::Addi, 1, 2, 2047),
            RvInst::s(RvOp::Sb, 31, 1, -2048),
            RvInst::b(RvOp::Bgeu, 31, 30, -4096),
            RvInst::b(RvOp::Bltu, 3, 4, 4094),
            RvInst::jal(0, -(1 << 20)),
            RvInst::jal(31, (1 << 20) - 2),
            RvInst::u(RvOp::Auipc, 15, i32::MIN), // 0x80000000: top page
            RvInst::i(RvOp::Slli, 1, 1, 31),
            RvInst::i(RvOp::Srai, 1, 1, 31),
        ] {
            assert_eq!(decode(encode(&inst)).unwrap(), inst, "{inst}");
        }
    }
}
