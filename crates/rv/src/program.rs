//! An assembled RV32 program image.

/// One initialised data region.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataSegment {
    /// Absolute base byte address.
    pub base: u32,
    /// The initialised bytes, little-endian for `.word` values.
    pub bytes: Vec<u8>,
}

/// An assembled RV32 program: instruction words loaded at address 0 plus
/// initialised data segments. All other memory reads as zero until
/// written (the emulator zero-fills pages on demand), so arrays that
/// start empty need no directive.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RvProgram {
    /// Encoded instruction words; the entry point is address 0.
    pub text: Vec<u32>,
    /// Initialised data, in declaration order.
    pub data: Vec<DataSegment>,
}

impl RvProgram {
    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}
