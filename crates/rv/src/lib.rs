//! RV32IM real-program frontend for the Fg-STP pipeline.
//!
//! Everything upstream of this crate consumes the SimRISC dynamic
//! instruction stream ([`fgstp_isa::DynInst`]); this crate produces that
//! stream from *real* RISC-V programs instead of hand-built synthetic
//! kernels. It is self-contained (no external toolchain, no new
//! dependencies): assembly source goes in, a translated trace comes out.
//!
//! The pipeline inside the crate:
//!
//! 1. [`asm::assemble_rv`] — a two-pass assembler (labels, `.data` /
//!    `.word` / `.byte` directives, the standard pseudo-instructions)
//!    producing an [`RvProgram`] of encoded words.
//! 2. [`encode::encode`] / [`decode::decode`] — bidirectional between
//!    typed [`RvInst`]s and 32-bit RV32IM words, pinned against each
//!    other by round-trip property tests.
//! 3. [`emulate::RvMachine`] — an RV32IM functional interpreter with
//!    spec-exact M-extension edge semantics.
//! 4. [`translate::trace_rv`] — maps the committed RV32 path onto
//!    SimRISC [`fgstp_isa::DynInst`]s (see that module for the full
//!    mapping table), versioned by [`TRANSLATION_VERSION`] so cached
//!    traces are invalidated whenever the mapping changes.
//!
//! Workload registration (the `rv:`-prefixed names) lives in
//! `fgstp-workloads`, which depends on this crate.

pub mod asm;
pub mod decode;
pub mod emulate;
pub mod encode;
pub mod inst;
pub mod program;
pub mod translate;

pub use asm::{assemble_rv, AsmError};
pub use decode::{decode, DecodeError};
pub use emulate::{RvCommit, RvError, RvMachine};
pub use encode::encode;
pub use inst::{RvFormat, RvInst, RvOp};
pub use program::{DataSegment, RvProgram};
pub use translate::{trace_rv, translate_inst, RvTraceError, TRANSLATION_VERSION};

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole frontend, end to end: assemble → emulate → translate.
    #[test]
    fn assemble_emulate_translate_round_trip() {
        let p = assemble_rv(
            r#"
                li   a0, 0
                li   a1, 5
            loop:
                add  a0, a0, a1
                addi a1, a1, -1
                bnez a1, loop
                li   a2, 0x2000
                sw   a0, 0(a2)
                ecall
            "#,
        )
        .unwrap();
        let mut m = RvMachine::new(&p).unwrap();
        m.run(1000).unwrap();
        assert_eq!(m.read(0x2000, 4), 15);

        let t = trace_rv(&p, 1000).unwrap();
        // 2 setup + 5 iterations of 3 + 3 tail (li 0x2000 is lui+addi, sw);
        // the halting ecall is unrecorded.
        assert_eq!(t.len(), 20);
        let last = &t[t.len() - 1];
        assert_eq!(last.store_value, Some(15));
        assert_eq!(last.addr, Some(0x2000));
    }
}
