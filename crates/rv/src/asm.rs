//! Two-pass RV32IM assembler.
//!
//! Accepts the standard GNU-flavoured syntax subset the in-tree programs
//! use:
//!
//! * labels (`name:`, also inline before an instruction), `#` comments;
//! * directives: `.text`, `.data <addr>` (switch emission to an absolute
//!   data address), `.word v, ..` and `.byte v, ..` (little-endian);
//! * every RV32IM instruction in its usual operand shape (`lw rd,
//!   off(rs1)`, `sw rs2, off(rs1)`, `lui rd, upper20`, …), with ABI
//!   register names (`a0`, `sp`, `t3`, …) alongside `x0`–`x31`;
//! * the standard pseudo-instructions: `nop`, `li`, `la`, `mv`, `not`,
//!   `neg`, `seqz`, `snez`, `j`, `jr`, `ret`, `call`, `beqz`, `bnez`,
//!   `bltz`, `bgez`, `bgtz`, `blez`, `ble`, `bgt`, `bleu`, `bgtu`.
//!
//! Pass 1 sizes every statement (`li` is one instruction when its
//! constant fits a signed 12-bit immediate, else `lui`+`addi`; `la` is
//! always the two-instruction form) and binds labels; pass 2 resolves
//! and encodes.

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::inst::{RvInst, RvOp};
use crate::program::{DataSegment, RvProgram};

/// An assembly error, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Parses a register name: `x0`–`x31` or an ABI name.
fn parse_reg(s: &str) -> Option<u8> {
    if let Some(n) = s.strip_prefix('x') {
        return match n.parse::<u8>() {
            Ok(v) if v < 32 => Some(v),
            _ => None,
        };
    }
    let abi = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    if s == "fp" {
        return Some(8);
    }
    abi.iter().position(|&n| n == s).map(|i| i as u8)
}

/// Parses an integer literal: decimal or `0x` hex, optionally negated.
fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// One source statement after lexing: the mnemonic plus its operands.
struct Stmt<'a> {
    line: usize,
    mnemonic: &'a str,
    ops: Vec<&'a str>,
}

impl Stmt<'_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn expect_ops(&self, n: usize) -> Result<(), AsmError> {
        if self.ops.len() == n {
            Ok(())
        } else {
            Err(self.err(format!(
                "`{}` takes {n} operand(s), got {}",
                self.mnemonic,
                self.ops.len()
            )))
        }
    }

    fn reg(&self, i: usize) -> Result<u8, AsmError> {
        parse_reg(self.ops[i]).ok_or_else(|| self.err(format!("bad register `{}`", self.ops[i])))
    }

    fn int(&self, i: usize) -> Result<i64, AsmError> {
        parse_int(self.ops[i])
            .ok_or_else(|| self.err(format!("bad integer literal `{}`", self.ops[i])))
    }

    /// Parses an `off(reg)` memory operand.
    fn mem(&self, i: usize) -> Result<(i32, u8), AsmError> {
        let s = self.ops[i];
        let open = s
            .find('(')
            .ok_or_else(|| self.err(format!("expected `off(reg)`, got `{s}`")))?;
        let close = s
            .strip_suffix(')')
            .ok_or_else(|| self.err(format!("expected `off(reg)`, got `{s}`")))?;
        let off = if open == 0 {
            0
        } else {
            parse_int(&s[..open]).ok_or_else(|| self.err(format!("bad offset in `{s}`")))?
        };
        let reg = parse_reg(&close[open + 1..])
            .ok_or_else(|| self.err(format!("bad register in `{s}`")))?;
        if !(-2048..2048).contains(&off) {
            return Err(self.err(format!("memory offset {off} exceeds ±2 KiB")));
        }
        Ok((off as i32, reg))
    }
}

/// How many instructions a statement expands to (pass 1).
fn width_of(stmt: &Stmt) -> Result<usize, AsmError> {
    Ok(match stmt.mnemonic {
        "li" => {
            stmt.expect_ops(2)?;
            let v = stmt.int(1)?;
            if (-2048..2048).contains(&v) {
                1
            } else {
                2
            }
        }
        "la" => 2,
        _ => 1,
    })
}

/// Resolves a branch/jump target operand: a label or an absolute byte
/// address literal. Returns the byte offset from `pc`.
fn target_offset(
    stmt: &Stmt,
    i: usize,
    labels: &HashMap<String, u32>,
    pc: u32,
) -> Result<i32, AsmError> {
    let s = stmt.ops[i];
    let abs = if let Some(&a) = labels.get(s) {
        a
    } else if let Some(v) = parse_int(s) {
        v as u32
    } else {
        return Err(stmt.err(format!("unknown label `{s}`")));
    };
    Ok(abs.wrapping_sub(pc) as i32)
}

fn check_range(stmt: &Stmt, what: &str, v: i64, lo: i64, hi: i64) -> Result<i32, AsmError> {
    if (lo..=hi).contains(&v) {
        Ok(v as i32)
    } else {
        Err(stmt.err(format!("{what} {v} out of range [{lo}, {hi}]")))
    }
}

/// Expands one statement into encoded instruction words (pass 2).
fn assemble_stmt(
    stmt: &Stmt,
    labels: &HashMap<String, u32>,
    pc: u32,
    out: &mut Vec<u32>,
) -> Result<(), AsmError> {
    use RvOp::*;
    let mut emit = |inst: RvInst| out.push(encode(&inst));
    let r_type = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(3)?;
        Ok(RvInst::r(op, stmt.reg(0)?, stmt.reg(1)?, stmt.reg(2)?))
    };
    let i_type = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(3)?;
        let imm = check_range(stmt, "immediate", stmt.int(2)?, -2048, 2047)?;
        Ok(RvInst::i(op, stmt.reg(0)?, stmt.reg(1)?, imm))
    };
    let shift = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(3)?;
        let sh = check_range(stmt, "shift amount", stmt.int(2)?, 0, 31)?;
        Ok(RvInst::i(op, stmt.reg(0)?, stmt.reg(1)?, sh))
    };
    let load = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(2)?;
        let (off, base) = stmt.mem(1)?;
        Ok(RvInst::i(op, stmt.reg(0)?, base, off))
    };
    let store = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(2)?;
        let (off, base) = stmt.mem(1)?;
        Ok(RvInst::s(op, stmt.reg(0)?, base, off))
    };
    let branch = |op, rs1, rs2, ti: usize| -> Result<RvInst, AsmError> {
        let off = target_offset(stmt, ti, labels, pc)?;
        if !(-4096..4096).contains(&off) {
            return Err(stmt.err(format!("branch target {off} bytes away exceeds ±4 KiB")));
        }
        Ok(RvInst::b(op, rs1, rs2, off))
    };
    // Plain `op rs1, rs2, label` branch.
    let branch3 = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(3)?;
        branch(op, stmt.reg(0)?, stmt.reg(1)?, 2)
    };
    // `bXz rs, label` zero-compare pseudo (rs against x0, either order).
    let branch_z = |op, swap: bool| -> Result<RvInst, AsmError> {
        stmt.expect_ops(2)?;
        let rs = stmt.reg(0)?;
        let (a, b) = if swap { (0, rs) } else { (rs, 0) };
        branch(op, a, b, 1)
    };
    // `ble/bgt/bleu/bgtu a, b, label`: operand-swapped real branches.
    let branch_swapped = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(3)?;
        branch(op, stmt.reg(1)?, stmt.reg(0)?, 2)
    };
    let upper = |op| -> Result<RvInst, AsmError> {
        stmt.expect_ops(2)?;
        let v = check_range(stmt, "upper immediate", stmt.int(1)?, 0, 0xf_ffff)?;
        Ok(RvInst::u(op, stmt.reg(0)?, v << 12))
    };
    let jump = |rd, ti: usize| -> Result<RvInst, AsmError> {
        let off = target_offset(stmt, ti, labels, pc)?;
        if !(-(1 << 20)..1 << 20).contains(&off) {
            return Err(stmt.err(format!("jump target {off} bytes away exceeds ±1 MiB")));
        }
        Ok(RvInst::jal(rd, off))
    };

    match stmt.mnemonic {
        "add" => emit(r_type(Add)?),
        "sub" => emit(r_type(Sub)?),
        "sll" => emit(r_type(Sll)?),
        "slt" => emit(r_type(Slt)?),
        "sltu" => emit(r_type(Sltu)?),
        "xor" => emit(r_type(Xor)?),
        "srl" => emit(r_type(Srl)?),
        "sra" => emit(r_type(Sra)?),
        "or" => emit(r_type(Or)?),
        "and" => emit(r_type(And)?),
        "mul" => emit(r_type(Mul)?),
        "mulh" => emit(r_type(Mulh)?),
        "mulhsu" => emit(r_type(Mulhsu)?),
        "mulhu" => emit(r_type(Mulhu)?),
        "div" => emit(r_type(Div)?),
        "divu" => emit(r_type(Divu)?),
        "rem" => emit(r_type(Rem)?),
        "remu" => emit(r_type(Remu)?),
        "addi" => emit(i_type(Addi)?),
        "slti" => emit(i_type(Slti)?),
        "sltiu" => emit(i_type(Sltiu)?),
        "xori" => emit(i_type(Xori)?),
        "ori" => emit(i_type(Ori)?),
        "andi" => emit(i_type(Andi)?),
        "slli" => emit(shift(Slli)?),
        "srli" => emit(shift(Srli)?),
        "srai" => emit(shift(Srai)?),
        "lb" => emit(load(Lb)?),
        "lh" => emit(load(Lh)?),
        "lw" => emit(load(Lw)?),
        "lbu" => emit(load(Lbu)?),
        "lhu" => emit(load(Lhu)?),
        "sb" => emit(store(Sb)?),
        "sh" => emit(store(Sh)?),
        "sw" => emit(store(Sw)?),
        "beq" => emit(branch3(Beq)?),
        "bne" => emit(branch3(Bne)?),
        "blt" => emit(branch3(Blt)?),
        "bge" => emit(branch3(Bge)?),
        "bltu" => emit(branch3(Bltu)?),
        "bgeu" => emit(branch3(Bgeu)?),
        "lui" => emit(upper(Lui)?),
        "auipc" => emit(upper(Auipc)?),
        "jal" => match stmt.ops.len() {
            1 => emit(jump(1, 0)?),
            2 => {
                let rd = stmt.reg(0)?;
                emit(jump(rd, 1)?);
            }
            _ => return Err(stmt.err("`jal` takes `[rd,] target`")),
        },
        "jalr" => match stmt.ops.len() {
            1 => emit(RvInst::i(Jalr, 1, stmt.reg(0)?, 0)),
            3 => {
                let imm = check_range(stmt, "immediate", stmt.int(2)?, -2048, 2047)?;
                emit(RvInst::i(Jalr, stmt.reg(0)?, stmt.reg(1)?, imm));
            }
            _ => return Err(stmt.err("`jalr` takes `rs` or `rd, rs1, imm`")),
        },
        "fence" => emit(RvInst::sys(Fence, 0x0ff)),
        "ecall" => emit(RvInst::sys(Ecall, 0)),
        "ebreak" => emit(RvInst::sys(Ebreak, 1)),

        // Pseudo-instructions.
        "nop" => emit(RvInst::i(Addi, 0, 0, 0)),
        "mv" => {
            stmt.expect_ops(2)?;
            emit(RvInst::i(Addi, stmt.reg(0)?, stmt.reg(1)?, 0));
        }
        "not" => {
            stmt.expect_ops(2)?;
            emit(RvInst::i(Xori, stmt.reg(0)?, stmt.reg(1)?, -1));
        }
        "neg" => {
            stmt.expect_ops(2)?;
            emit(RvInst::r(Sub, stmt.reg(0)?, 0, stmt.reg(1)?));
        }
        "seqz" => {
            stmt.expect_ops(2)?;
            emit(RvInst::i(Sltiu, stmt.reg(0)?, stmt.reg(1)?, 1));
        }
        "snez" => {
            stmt.expect_ops(2)?;
            emit(RvInst::r(Sltu, stmt.reg(0)?, 0, stmt.reg(1)?));
        }
        "li" => {
            stmt.expect_ops(2)?;
            let rd = stmt.reg(0)?;
            let v = stmt.int(1)?;
            if !(-(1i64 << 31)..1i64 << 32).contains(&v) {
                return Err(stmt.err(format!("`li` constant {v} does not fit 32 bits")));
            }
            let v = v as u32;
            if (-2048..2048).contains(&(v as i32)) {
                emit(RvInst::i(Addi, rd, 0, v as i32));
            } else {
                let hi = v.wrapping_add(0x800) & 0xffff_f000;
                let lo = v.wrapping_sub(hi) as i32; // sign-extended low 12
                emit(RvInst::u(Lui, rd, hi as i32));
                emit(RvInst::i(Addi, rd, rd, lo));
            }
        }
        "la" => {
            stmt.expect_ops(2)?;
            let rd = stmt.reg(0)?;
            let addr = *labels
                .get(stmt.ops[1])
                .ok_or_else(|| stmt.err(format!("unknown label `{}`", stmt.ops[1])))?;
            let hi = addr.wrapping_add(0x800) & 0xffff_f000;
            let lo = addr.wrapping_sub(hi) as i32;
            emit(RvInst::u(Lui, rd, hi as i32));
            emit(RvInst::i(Addi, rd, rd, lo));
        }
        "j" => {
            stmt.expect_ops(1)?;
            emit(jump(0, 0)?);
        }
        "jr" => {
            stmt.expect_ops(1)?;
            emit(RvInst::i(Jalr, 0, stmt.reg(0)?, 0));
        }
        "ret" => {
            stmt.expect_ops(0)?;
            emit(RvInst::i(Jalr, 0, 1, 0));
        }
        "call" => {
            stmt.expect_ops(1)?;
            emit(jump(1, 0)?);
        }
        "beqz" => emit(branch_z(Beq, false)?),
        "bnez" => emit(branch_z(Bne, false)?),
        "bltz" => emit(branch_z(Blt, false)?),
        "bgez" => emit(branch_z(Bge, false)?),
        "bgtz" => emit(branch_z(Blt, true)?),
        "blez" => emit(branch_z(Bge, true)?),
        "ble" => emit(branch_swapped(Bge)?),
        "bgt" => emit(branch_swapped(Blt)?),
        "bleu" => emit(branch_swapped(Bgeu)?),
        "bgtu" => emit(branch_swapped(Bltu)?),
        other => return Err(stmt.err(format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

/// Where the cursor currently emits.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Text,
    Data,
}

/// Splits one source line into (labels, statement) after comment
/// stripping.
fn lex_line(line: &str, lineno: usize) -> Result<(Vec<&str>, Option<Stmt<'_>>), AsmError> {
    let line = line.split('#').next().unwrap_or("").trim();
    let mut labels = Vec::new();
    let mut rest = line;
    while let Some(colon) = rest.find(':') {
        let head = rest[..colon].trim();
        // A colon inside an operand (there are none in this syntax) would
        // break this, but labels must be leading identifiers.
        if head.is_empty()
            || !head
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            break;
        }
        labels.push(head);
        rest = rest[colon + 1..].trim_start();
    }
    if rest.is_empty() {
        return Ok((labels, None));
    }
    let (mnemonic, ops_text) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let ops: Vec<&str> = if ops_text.is_empty() {
        Vec::new()
    } else {
        ops_text.split(',').map(str::trim).collect()
    };
    if ops.iter().any(|o| o.is_empty()) {
        return Err(AsmError {
            line: lineno,
            msg: format!("empty operand in `{rest}`"),
        });
    }
    Ok((
        labels,
        Some(Stmt {
            line: lineno,
            mnemonic,
            ops,
        }),
    ))
}

/// Assembles RV32IM source into an [`RvProgram`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics or
/// labels, operand-shape mismatches, and out-of-range immediates or
/// branch displacements.
pub fn assemble_rv(src: &str) -> Result<RvProgram, AsmError> {
    // Pass 1: bind labels, size the text segment, lay out data.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut mode = Mode::Text;
    let mut text_len: u32 = 0;
    let mut data_cursor: u32 = 0;
    for (i, line) in src.lines().enumerate() {
        let lineno = i + 1;
        let (line_labels, stmt) = lex_line(line, lineno)?;
        for l in line_labels {
            let addr = match mode {
                Mode::Text => text_len * 4,
                Mode::Data => data_cursor,
            };
            if labels.insert(l.to_owned(), addr).is_some() {
                return Err(AsmError {
                    line: lineno,
                    msg: format!("duplicate label `{l}`"),
                });
            }
        }
        let Some(stmt) = stmt else { continue };
        match stmt.mnemonic {
            ".text" => mode = Mode::Text,
            ".data" => {
                stmt.expect_ops(1)?;
                let addr = stmt.int(0)?;
                data_cursor = check_range(&stmt, ".data address", addr, 0, u32::MAX as i64)? as u32;
                mode = Mode::Data;
            }
            ".word" => {
                if mode != Mode::Data {
                    return Err(stmt.err("`.word` outside a `.data` section"));
                }
                data_cursor += 4 * stmt.ops.len() as u32;
            }
            ".byte" => {
                if mode != Mode::Data {
                    return Err(stmt.err("`.byte` outside a `.data` section"));
                }
                data_cursor += stmt.ops.len() as u32;
            }
            _ => {
                if mode != Mode::Text {
                    return Err(stmt.err("instruction outside the `.text` section"));
                }
                text_len += width_of(&stmt)? as u32;
            }
        }
    }

    // Pass 2: emit.
    let mut text: Vec<u32> = Vec::with_capacity(text_len as usize);
    let mut data: Vec<DataSegment> = Vec::new();
    let mut segment: Option<DataSegment> = None;
    for (i, line) in src.lines().enumerate() {
        let (_, stmt) = lex_line(line, i + 1)?;
        let Some(stmt) = stmt else { continue };
        match stmt.mnemonic {
            ".text" => {}
            ".data" => {
                if let Some(seg) = segment.take() {
                    data.push(seg);
                }
                segment = Some(DataSegment {
                    base: stmt.int(0)? as u32,
                    bytes: Vec::new(),
                });
            }
            ".word" => {
                let seg = segment.as_mut().expect("pass 1 checked the mode");
                for j in 0..stmt.ops.len() {
                    let v = check_range(
                        &stmt,
                        ".word value",
                        stmt.int(j)?,
                        i32::MIN as i64,
                        u32::MAX as i64,
                    )?;
                    seg.bytes.extend_from_slice(&(v as u32).to_le_bytes());
                }
            }
            ".byte" => {
                let seg = segment.as_mut().expect("pass 1 checked the mode");
                for j in 0..stmt.ops.len() {
                    let v = check_range(&stmt, ".byte value", stmt.int(j)?, -128, 255)?;
                    seg.bytes.push(v as u8);
                }
            }
            _ => {
                let pc = text.len() as u32 * 4;
                assemble_stmt(&stmt, &labels, pc, &mut text)?;
            }
        }
    }
    if let Some(seg) = segment.take() {
        data.push(seg);
    }
    debug_assert_eq!(text.len() as u32, text_len, "pass 1 and pass 2 agree");
    Ok(RvProgram { text, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn assembles_labels_and_branches() {
        let p = assemble_rv(
            r#"
                li   t0, 5        # counter
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        // bnez expands to bne t0, x0, -4.
        assert_eq!(decode(p.text[2]).unwrap(), RvInst::b(RvOp::Bne, 5, 0, -4));
    }

    #[test]
    fn li_width_depends_on_the_constant() {
        let small = assemble_rv("li a0, 100\necall").unwrap();
        assert_eq!(small.len(), 2);
        let large = assemble_rv("li a0, 0x12345\necall").unwrap();
        assert_eq!(large.len(), 3);
        let negative = assemble_rv("li a0, -1\necall").unwrap();
        assert_eq!(negative.len(), 2);
    }

    #[test]
    fn la_resolves_data_labels() {
        let p = assemble_rv(
            r#"
                la   a0, table
                lw   a1, 0(a0)
                ecall
            .data 0x2000
            table:
                .word 7, 8, 9
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4); // la (2) + lw + ecall
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].base, 0x2000);
        assert_eq!(p.data[0].bytes.len(), 12);
        assert_eq!(&p.data[0].bytes[..4], &7u32.to_le_bytes());
        // la → lui a0, 0x2 ; addi a0, a0, 0.
        assert_eq!(decode(p.text[0]).unwrap(), RvInst::u(RvOp::Lui, 10, 0x2000));
        assert_eq!(decode(p.text[1]).unwrap(), RvInst::i(RvOp::Addi, 10, 10, 0));
    }

    #[test]
    fn abi_register_names_match_numbers() {
        let p = assemble_rv("add a0, sp, t3\necall").unwrap();
        assert_eq!(decode(p.text[0]).unwrap(), RvInst::r(RvOp::Add, 10, 2, 28));
        let q = assemble_rv("add x10, x2, x28\necall").unwrap();
        assert_eq!(p.text[0], q.text[0]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_rv("nop\nfrobnicate a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("frobnicate"));
        let e = assemble_rv("beq a0, a1, nowhere").unwrap_err();
        assert!(e.msg.contains("nowhere"));
        let e = assemble_rv("addi a0, a1, 5000").unwrap_err();
        assert!(e.msg.contains("out of range"));
        let e = assemble_rv("dup: nop\ndup: nop").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn pseudo_expansions_are_canonical() {
        let p = assemble_rv(
            r#"
                nop
                mv   a1, a2
                not  a1, a2
                neg  a1, a2
                seqz a1, a2
                snez a1, a2
                jr   ra
                ret
            "#,
        )
        .unwrap();
        let d: Vec<RvInst> = p.text.iter().map(|&w| decode(w).unwrap()).collect();
        assert_eq!(d[0], RvInst::i(RvOp::Addi, 0, 0, 0));
        assert_eq!(d[1], RvInst::i(RvOp::Addi, 11, 12, 0));
        assert_eq!(d[2], RvInst::i(RvOp::Xori, 11, 12, -1));
        assert_eq!(d[3], RvInst::r(RvOp::Sub, 11, 0, 12));
        assert_eq!(d[4], RvInst::i(RvOp::Sltiu, 11, 12, 1));
        assert_eq!(d[5], RvInst::r(RvOp::Sltu, 11, 0, 12));
        assert_eq!(d[6], RvInst::i(RvOp::Jalr, 0, 1, 0));
        assert_eq!(d[7], RvInst::i(RvOp::Jalr, 0, 1, 0));
    }

    #[test]
    fn call_links_and_jumps_forward() {
        let p = assemble_rv(
            r#"
                call fn
                ecall
            fn:
                ret
            "#,
        )
        .unwrap();
        assert_eq!(decode(p.text[0]).unwrap(), RvInst::jal(1, 8));
    }
}
