//! RV32 → SimRISC dynamic-stream translation.
//!
//! The timing models replay committed [`fgstp_isa::DynInst`] streams;
//! they consume instruction *classes*, register *names*, pcs, effective
//! addresses and branch outcomes — recorded values are replayed, never
//! re-evaluated (value re-verification via `fgstp::exec` is a test-only
//! oracle for SimRISC traces). Translation therefore maps each RV32IM
//! instruction onto the SimRISC op with the same class and dependence
//! shape, and records the RV32 machine's own (zero-extended) values:
//!
//! | RV32IM | SimRISC | note |
//! |---|---|---|
//! | `x0`–`x31` | `x0`–`x31` | identity; x0 stays the zero register |
//! | byte pc | instruction index | `pc / 4`; branch/`jal` immediates become absolute indices |
//! | `add sub and or xor sll srl sra slt sltu` (+`i` forms) | same name | `sltiu` → `slti` (same class) |
//! | `mul mulh mulhsu mulhu` | `mul` | one IntMul class |
//! | `div divu` / `rem remu` | `div` / `rem` | one IntDiv class |
//! | `lui` | `li value` | constant generation |
//! | `auipc` | `li pc+offset` | resolved at translation time |
//! | `lb lbu lh lhu lw` | same name | `lw` keeps 32-bit load width |
//! | `sb sh sw` | same name | |
//! | `beq bne blt bge bltu bgeu` | same name | target = absolute index |
//! | `jal` | `jal` | target = absolute index |
//! | `jalr` | `jalr` | immediate stays in byte space; `next_pc` carries the real target |
//! | `fence` | `nop` | single-thread stream: ordering is free |
//! | `ecall`/`ebreak` | halt | executed, never recorded (same as SimRISC `halt`) |
//!
//! Addresses and values are zero-extended from 32 to 64 bits. The
//! translated stream is *self-consistent* (every recorded value is what
//! the RV32 machine computed), but deliberately not re-executable under
//! 64-bit SimRISC semantics — RV32 wraparound has no 64-bit equivalent.
//! Functional correctness is guarded by the emulator differential tests
//! instead.

use fgstp_isa::{DynInst, Inst, Op, Reg, Trace};

use crate::emulate::{RvCommit, RvError, RvMachine};
use crate::inst::{RvInst, RvOp};
use crate::program::RvProgram;

/// Version of the RV→SimRISC translation scheme. Bump on any change to
/// the mapping above — the trace cache and the service dedup identity
/// incorporate it, so stale translated traces can never be replayed.
pub const TRANSLATION_VERSION: u32 = 1;

fn reg(n: u8) -> Reg {
    Reg::int(n)
}

/// Translates one decoded RV32 instruction at byte pc `pc` into its
/// SimRISC counterpart (see the [module docs](self) for the mapping).
/// `ecall`/`ebreak` translate to `halt`.
pub fn translate_inst(inst: &RvInst, pc: u32) -> Inst {
    use RvOp::*;
    let rd = reg(inst.rd);
    let rs1 = reg(inst.rs1);
    let rs2 = reg(inst.rs2);
    let imm = inst.imm as i64;
    // Branch and jal targets become absolute instruction indices.
    let target = || (pc.wrapping_add(inst.imm as u32) / 4) as i64;
    match inst.op {
        Add => Inst::rrr(Op::Add, rd, rs1, rs2),
        Sub => Inst::rrr(Op::Sub, rd, rs1, rs2),
        Sll => Inst::rrr(Op::Sll, rd, rs1, rs2),
        Slt => Inst::rrr(Op::Slt, rd, rs1, rs2),
        Sltu => Inst::rrr(Op::Sltu, rd, rs1, rs2),
        Xor => Inst::rrr(Op::Xor, rd, rs1, rs2),
        Srl => Inst::rrr(Op::Srl, rd, rs1, rs2),
        Sra => Inst::rrr(Op::Sra, rd, rs1, rs2),
        Or => Inst::rrr(Op::Or, rd, rs1, rs2),
        And => Inst::rrr(Op::And, rd, rs1, rs2),
        Mul | Mulh | Mulhsu | Mulhu => Inst::rrr(Op::Mul, rd, rs1, rs2),
        Div | Divu => Inst::rrr(Op::Div, rd, rs1, rs2),
        Rem | Remu => Inst::rrr(Op::Rem, rd, rs1, rs2),
        Addi => Inst::rri(Op::Addi, rd, rs1, imm),
        Slti | Sltiu => Inst::rri(Op::Slti, rd, rs1, imm),
        Xori => Inst::rri(Op::Xori, rd, rs1, imm),
        Ori => Inst::rri(Op::Ori, rd, rs1, imm),
        Andi => Inst::rri(Op::Andi, rd, rs1, imm),
        Slli => Inst::rri(Op::Slli, rd, rs1, imm),
        Srli => Inst::rri(Op::Srli, rd, rs1, imm),
        Srai => Inst::rri(Op::Srai, rd, rs1, imm),
        Lb => Inst::rri(Op::Lb, rd, rs1, imm),
        Lh => Inst::rri(Op::Lh, rd, rs1, imm),
        Lw => Inst::rri(Op::Lw, rd, rs1, imm),
        Lbu => Inst::rri(Op::Lbu, rd, rs1, imm),
        Lhu => Inst::rri(Op::Lhu, rd, rs1, imm),
        Sb => Inst::store(Op::Sb, rs2, rs1, imm),
        Sh => Inst::store(Op::Sh, rs2, rs1, imm),
        Sw => Inst::store(Op::Sw, rs2, rs1, imm),
        Beq => Inst::branch(Op::Beq, rs1, rs2, target()),
        Bne => Inst::branch(Op::Bne, rs1, rs2, target()),
        Blt => Inst::branch(Op::Blt, rs1, rs2, target()),
        Bge => Inst::branch(Op::Bge, rs1, rs2, target()),
        Bltu => Inst::branch(Op::Bltu, rs1, rs2, target()),
        Bgeu => Inst::branch(Op::Bgeu, rs1, rs2, target()),
        Lui => Inst::ri(Op::Li, rd, inst.imm as u32 as i64),
        Auipc => Inst::ri(Op::Li, rd, pc.wrapping_add(inst.imm as u32) as i64),
        Jal => Inst::jal(rd, target()),
        Jalr => Inst::jalr(rd, rs1, imm),
        Fence => Inst::nop(),
        Ecall | Ebreak => Inst::halt(),
    }
}

/// Turns one commit record into the SimRISC dynamic instruction with the
/// given sequence number.
fn dyn_inst(seq: u64, c: &RvCommit) -> DynInst {
    DynInst {
        seq,
        pc: (c.pc / 4) as u64,
        inst: translate_inst(&c.inst, c.pc),
        next_pc: (c.next_pc / 4) as u64,
        addr: c.addr.map(u64::from),
        taken: c.taken,
        rd_value: c.rd_value.map(u64::from),
        store_value: c.store_value.map(u64::from),
    }
}

/// Error from RV32 trace generation, mirroring
/// [`fgstp_isa::TraceError`]'s shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvTraceError {
    /// The functional execution faulted.
    Exec(RvError),
    /// The program did not halt within the instruction budget.
    Truncated {
        /// The exhausted budget.
        limit: u64,
    },
}

impl std::fmt::Display for RvTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RvTraceError::Exec(e) => write!(f, "RV32 execution failed: {e}"),
            RvTraceError::Truncated { limit } => write!(
                f,
                "program did not halt within the {limit}-instruction trace budget"
            ),
        }
    }
}

impl std::error::Error for RvTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RvTraceError::Exec(e) => Some(e),
            RvTraceError::Truncated { .. } => None,
        }
    }
}

/// Emulates `program` and returns its committed path translated into a
/// SimRISC [`Trace`], ready for any downstream timing model, trace file
/// or cache. The halting `ecall`/`ebreak` is executed but not recorded,
/// exactly like SimRISC `halt`.
///
/// # Errors
///
/// [`RvTraceError::Truncated`] if the program does not halt within
/// `limit` dynamic instructions, [`RvTraceError::Exec`] if it faults.
///
/// ```
/// use fgstp_rv::{assemble_rv, trace_rv};
///
/// let p = assemble_rv("li a0, 2\nadd a0, a0, a0\necall")?;
/// let t = trace_rv(&p, 100)?;
/// assert_eq!(t.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trace_rv(program: &RvProgram, limit: u64) -> Result<Trace, RvTraceError> {
    let mut m = RvMachine::new(program).map_err(RvTraceError::Exec)?;
    let mut insts = Vec::new();
    for _ in 0..limit {
        let c = m.step().map_err(RvTraceError::Exec)?;
        if c.halted {
            return Ok(Trace::from_insts(insts));
        }
        insts.push(dyn_inst(insts.len() as u64, &c));
    }
    Err(RvTraceError::Truncated { limit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_rv;
    use fgstp_isa::InstClass;

    #[test]
    fn trace_is_dense_and_classful() {
        let p = assemble_rv(
            r#"
                li  t0, 3
                li  t1, 0x2000
            loop:
                sw  t0, 0(t1)
                lw  t2, 0(t1)
                mul t3, t2, t0
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#,
        )
        .unwrap();
        let t = trace_rv(&p, 1000).unwrap();
        // 3 setup (the second li is lui+addi) + 3 iterations of 5.
        assert_eq!(t.len(), 18);
        for (i, d) in t.insts().iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
        assert_eq!(t.count_class(InstClass::Store), 3);
        assert_eq!(t.count_class(InstClass::Load), 3);
        assert_eq!(t.count_class(InstClass::IntMul), 3);
        let branches: Vec<_> = t.insts().iter().filter(|d| d.taken.is_some()).collect();
        assert_eq!(branches.len(), 3);
        assert_eq!(branches[2].taken, Some(false));
        assert!(t
            .insts()
            .iter()
            .filter(|d| d.class().is_mem())
            .all(|d| d.addr == Some(0x2000)));
    }

    #[test]
    fn pcs_and_branch_targets_are_instruction_indices() {
        let p = assemble_rv(
            r#"
                li  t0, 2
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ecall
            "#,
        )
        .unwrap();
        let t = trace_rv(&p, 100).unwrap();
        assert_eq!(t[0].pc, 0);
        assert_eq!(t[1].pc, 1);
        let b = &t[2];
        assert_eq!(b.pc, 2);
        assert_eq!(
            b.inst.imm, 1,
            "branch target is the absolute index of `loop`"
        );
        assert_eq!(b.next_pc, 1, "taken branch goes back to the loop head");
        assert_eq!(t[4].next_pc, 3, "fallthrough lands on the next index");
    }

    #[test]
    fn jumps_record_link_values_and_targets() {
        let p = assemble_rv(
            r#"
                li   sp, 0x8000
                call fn
                ecall
            fn:
                ret
            "#,
        )
        .unwrap();
        let t = trace_rv(&p, 100).unwrap();
        // li (lui+addi), call (jal), ret (jalr): the halt ecall is unrecorded.
        assert_eq!(t.len(), 4);
        let call = &t[2];
        assert_eq!(call.class(), InstClass::Jump);
        assert_eq!(call.next_pc, 4);
        assert_eq!(
            call.rd_value,
            Some(12),
            "link register holds the byte return address"
        );
        let ret = &t[3];
        assert_eq!(ret.next_pc, 3);
        assert_eq!(ret.rd_value, None, "x0-linked jalr writes nothing");
    }

    #[test]
    fn x0_destinations_record_no_value() {
        let p = assemble_rv("add x0, x0, x0\necall").unwrap();
        let t = trace_rv(&p, 10).unwrap();
        assert_eq!(t[0].rd_value, None);
        assert_eq!(t[0].inst.dest(), None);
    }

    #[test]
    fn truncation_is_reported() {
        let p = assemble_rv("loop: j loop").unwrap();
        assert_eq!(trace_rv(&p, 25), Err(RvTraceError::Truncated { limit: 25 }));
    }

    #[test]
    fn lui_and_auipc_become_constant_generation() {
        let p = assemble_rv("lui a0, 0x12\nauipc a1, 0x1\necall").unwrap();
        let t = trace_rv(&p, 10).unwrap();
        assert_eq!(t[0].inst.op, Op::Li);
        assert_eq!(t[0].rd_value, Some(0x12000));
        assert_eq!(t[1].inst.op, Op::Li);
        // auipc at byte pc 4: 4 + 0x1000.
        assert_eq!(t[1].rd_value, Some(0x1004));
        assert_eq!(t[1].inst.imm, 0x1004);
    }
}
