//! RV32IM functional emulator.
//!
//! A plain fetch–decode–execute interpreter over an [`RvProgram`]:
//! 32 × 32-bit integer registers, a byte-addressed sparse memory
//! (zero-filled 4 KiB pages on demand), and the M-extension edge
//! semantics mandated by the ISA spec (division by zero yields all-ones
//! / the dividend, `INT_MIN / -1` wraps). `fence` is a no-op; `ecall`
//! and `ebreak` halt cleanly — the in-tree programs use `ecall` as their
//! exit convention.
//!
//! Misaligned loads and stores are executed byte-wise (no trap), matching
//! a core with hardware misalignment support; the in-tree programs only
//! issue naturally aligned accesses.

use std::collections::HashMap;
use std::fmt;

use crate::decode::{decode, DecodeError};
use crate::inst::{RvInst, RvOp};
use crate::program::RvProgram;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Error from RV32 functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvError {
    /// The pc left the text segment (or lost 4-byte alignment).
    BadPc {
        /// The offending byte pc.
        pc: u32,
    },
    /// An instruction word did not decode.
    Illegal(DecodeError),
    /// The step budget ran out before `ecall`/`ebreak`.
    StepLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for RvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvError::BadPc { pc } => write!(f, "pc {pc:#x} outside the text segment"),
            RvError::Illegal(e) => write!(f, "{e}"),
            RvError::StepLimit { limit } => {
                write!(f, "program did not halt within {limit} steps")
            }
        }
    }
}

impl std::error::Error for RvError {}

impl From<DecodeError> for RvError {
    fn from(e: DecodeError) -> RvError {
        RvError::Illegal(e)
    }
}

/// One committed RV32 instruction with everything a trace needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvCommit {
    /// Byte pc of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: RvInst,
    /// Byte pc of the next instruction on the committed path.
    pub next_pc: u32,
    /// Effective byte address, for loads and stores.
    pub addr: Option<u32>,
    /// Outcome, for conditional branches.
    pub taken: Option<bool>,
    /// Value written to `rd` (absent for x0 and non-writing ops).
    pub rd_value: Option<u32>,
    /// Value stored, for stores.
    pub store_value: Option<u32>,
    /// Whether this instruction halted the machine (`ecall`/`ebreak`).
    pub halted: bool,
}

/// The RV32IM machine state.
pub struct RvMachine {
    regs: [u32; 32],
    pc: u32,
    /// Pre-decoded text segment (index = byte pc / 4).
    text: Vec<RvInst>,
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
    halted: bool,
}

impl RvMachine {
    /// Builds a machine: decodes the text segment and loads the data
    /// segments.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::Illegal`] if a text word is not valid RV32IM.
    pub fn new(program: &RvProgram) -> Result<RvMachine, RvError> {
        let text = program
            .text
            .iter()
            .map(|&w| decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        let mut m = RvMachine {
            regs: [0; 32],
            pc: 0,
            text,
            pages: HashMap::new(),
            halted: false,
        };
        for seg in &program.data {
            for (i, &b) in seg.bytes.iter().enumerate() {
                m.write_byte(seg.base.wrapping_add(i as u32), b);
            }
        }
        Ok(m)
    }

    /// Current register file (x0 is always zero).
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// Current byte pc.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the machine has executed `ecall`/`ebreak`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn page(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    fn write_byte(&mut self, addr: u32, b: u8) {
        self.page(addr)[(addr as usize) & (PAGE_SIZE - 1)] = b;
    }

    fn read_byte(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Reads `len` (≤ 8) little-endian bytes, zero-extended — the same
    /// shape as the SimRISC `Memory::read` accessor, so checksum checks
    /// look identical across frontends.
    pub fn read(&self, addr: u32, len: usize) -> u64 {
        debug_assert!(len <= 8);
        let mut v = 0u64;
        for i in (0..len).rev() {
            v = v << 8 | self.read_byte(addr.wrapping_add(i as u32)) as u64;
        }
        v
    }

    fn write(&mut self, addr: u32, len: usize, value: u32) {
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().take(len).enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }

    fn set_rd(&mut self, rd: u8, value: u32) -> Option<u32> {
        if rd == 0 {
            return None;
        }
        self.regs[rd as usize] = value;
        Some(value)
    }

    /// Executes one instruction, returning its commit record.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::BadPc`] when the pc leaves the text segment or
    /// loses alignment (e.g. a wild `jalr`). Calling `step` on a halted
    /// machine also reports the (now out-of-band) pc.
    pub fn step(&mut self) -> Result<RvCommit, RvError> {
        use RvOp::*;
        let pc = self.pc;
        if self.halted || !pc.is_multiple_of(4) || (pc / 4) as usize >= self.text.len() {
            return Err(RvError::BadPc { pc });
        }
        let inst = self.text[(pc / 4) as usize];
        let rs1 = self.regs[inst.rs1 as usize];
        let rs2 = self.regs[inst.rs2 as usize];
        let imm = inst.imm;
        let mut commit = RvCommit {
            pc,
            inst,
            next_pc: pc.wrapping_add(4),
            addr: None,
            taken: None,
            rd_value: None,
            store_value: None,
            halted: false,
        };
        match inst.op {
            Add => commit.rd_value = self.set_rd(inst.rd, rs1.wrapping_add(rs2)),
            Sub => commit.rd_value = self.set_rd(inst.rd, rs1.wrapping_sub(rs2)),
            Sll => commit.rd_value = self.set_rd(inst.rd, rs1 << (rs2 & 31)),
            Slt => commit.rd_value = self.set_rd(inst.rd, ((rs1 as i32) < rs2 as i32) as u32),
            Sltu => commit.rd_value = self.set_rd(inst.rd, (rs1 < rs2) as u32),
            Xor => commit.rd_value = self.set_rd(inst.rd, rs1 ^ rs2),
            Srl => commit.rd_value = self.set_rd(inst.rd, rs1 >> (rs2 & 31)),
            Sra => commit.rd_value = self.set_rd(inst.rd, ((rs1 as i32) >> (rs2 & 31)) as u32),
            Or => commit.rd_value = self.set_rd(inst.rd, rs1 | rs2),
            And => commit.rd_value = self.set_rd(inst.rd, rs1 & rs2),
            Mul => commit.rd_value = self.set_rd(inst.rd, rs1.wrapping_mul(rs2)),
            Mulh => {
                let p = (rs1 as i32 as i64).wrapping_mul(rs2 as i32 as i64);
                commit.rd_value = self.set_rd(inst.rd, (p >> 32) as u32);
            }
            Mulhsu => {
                let p = (rs1 as i32 as i64).wrapping_mul(rs2 as i64);
                commit.rd_value = self.set_rd(inst.rd, (p >> 32) as u32);
            }
            Mulhu => {
                let p = (rs1 as u64).wrapping_mul(rs2 as u64);
                commit.rd_value = self.set_rd(inst.rd, (p >> 32) as u32);
            }
            Div => {
                let v = match (rs1 as i32, rs2 as i32) {
                    (_, 0) => -1,
                    (i32::MIN, -1) => i32::MIN,
                    (a, b) => a / b,
                };
                commit.rd_value = self.set_rd(inst.rd, v as u32);
            }
            Divu => {
                let v = rs1.checked_div(rs2).unwrap_or(u32::MAX);
                commit.rd_value = self.set_rd(inst.rd, v);
            }
            Rem => {
                let v = match (rs1 as i32, rs2 as i32) {
                    (a, 0) => a,
                    (i32::MIN, -1) => 0,
                    (a, b) => a % b,
                };
                commit.rd_value = self.set_rd(inst.rd, v as u32);
            }
            Remu => {
                let v = rs1.checked_rem(rs2).unwrap_or(rs1);
                commit.rd_value = self.set_rd(inst.rd, v);
            }
            Addi => commit.rd_value = self.set_rd(inst.rd, rs1.wrapping_add(imm as u32)),
            Slti => commit.rd_value = self.set_rd(inst.rd, ((rs1 as i32) < imm) as u32),
            Sltiu => commit.rd_value = self.set_rd(inst.rd, (rs1 < imm as u32) as u32),
            Xori => commit.rd_value = self.set_rd(inst.rd, rs1 ^ imm as u32),
            Ori => commit.rd_value = self.set_rd(inst.rd, rs1 | imm as u32),
            Andi => commit.rd_value = self.set_rd(inst.rd, rs1 & imm as u32),
            Slli => commit.rd_value = self.set_rd(inst.rd, rs1 << imm),
            Srli => commit.rd_value = self.set_rd(inst.rd, rs1 >> imm),
            Srai => commit.rd_value = self.set_rd(inst.rd, ((rs1 as i32) >> imm) as u32),
            Lb | Lh | Lw | Lbu | Lhu => {
                let addr = rs1.wrapping_add(imm as u32);
                commit.addr = Some(addr);
                let v = match inst.op {
                    Lb => self.read(addr, 1) as u8 as i8 as i32 as u32,
                    Lbu => self.read(addr, 1) as u32,
                    Lh => self.read(addr, 2) as u16 as i16 as i32 as u32,
                    Lhu => self.read(addr, 2) as u32,
                    _ => self.read(addr, 4) as u32,
                };
                commit.rd_value = self.set_rd(inst.rd, v);
            }
            Sb | Sh | Sw => {
                let addr = rs1.wrapping_add(imm as u32);
                let len = match inst.op {
                    Sb => 1,
                    Sh => 2,
                    _ => 4,
                };
                commit.addr = Some(addr);
                commit.store_value = Some(rs2);
                self.write(addr, len, rs2);
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let taken = match inst.op {
                    Beq => rs1 == rs2,
                    Bne => rs1 != rs2,
                    Blt => (rs1 as i32) < rs2 as i32,
                    Bge => (rs1 as i32) >= rs2 as i32,
                    Bltu => rs1 < rs2,
                    _ => rs1 >= rs2,
                };
                commit.taken = Some(taken);
                if taken {
                    commit.next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Lui => commit.rd_value = self.set_rd(inst.rd, imm as u32),
            Auipc => commit.rd_value = self.set_rd(inst.rd, pc.wrapping_add(imm as u32)),
            Jal => {
                commit.rd_value = self.set_rd(inst.rd, pc.wrapping_add(4));
                commit.next_pc = pc.wrapping_add(imm as u32);
            }
            Jalr => {
                let target = rs1.wrapping_add(imm as u32) & !1;
                commit.rd_value = self.set_rd(inst.rd, pc.wrapping_add(4));
                commit.next_pc = target;
            }
            Fence => {}
            Ecall | Ebreak => {
                self.halted = true;
                commit.halted = true;
                commit.next_pc = pc;
            }
        }
        self.pc = commit.next_pc;
        Ok(commit)
    }

    /// Runs until `ecall`/`ebreak`, for at most `limit` instructions.
    ///
    /// # Errors
    ///
    /// [`RvError::StepLimit`] when the budget runs out,
    /// [`RvError::BadPc`] when control flow escapes the text segment.
    pub fn run(&mut self, limit: u64) -> Result<u64, RvError> {
        for n in 0..limit {
            if self.step()?.halted {
                return Ok(n + 1);
            }
        }
        Err(RvError::StepLimit { limit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_rv;

    fn run(src: &str) -> RvMachine {
        let p = assemble_rv(src).unwrap();
        let mut m = RvMachine::new(&p).unwrap();
        m.run(1_000_000).unwrap();
        m
    }

    #[test]
    fn computes_a_sum_loop() {
        let m = run(r#"
                li t0, 0        # sum
                li t1, 10       # i
            loop:
                add t0, t0, t1
                addi t1, t1, -1
                bnez t1, loop
                ecall
            "#);
        assert_eq!(m.regs()[5], 55);
    }

    #[test]
    fn m_extension_edge_semantics() {
        let m = run(r#"
                li  t0, 7
                li  t1, 0
                div  t2, t0, t1      # /0 -> -1
                divu t3, t0, t1      # /0 -> 2^32-1
                rem  t4, t0, t1      # %0 -> dividend
                li  t5, -2147483648
                li  t6, -1
                div  s2, t5, t6      # overflow -> INT_MIN
                rem  s3, t5, t6      # overflow -> 0
                mulh s4, t5, t6      # high half
                ecall
            "#);
        assert_eq!(m.regs()[7] as i32, -1);
        assert_eq!(m.regs()[28], u32::MAX);
        assert_eq!(m.regs()[29], 7);
        assert_eq!(m.regs()[18], i32::MIN as u32);
        assert_eq!(m.regs()[19], 0);
        // (-2^31) * (-1) = 2^31; high 32 bits are 0.
        assert_eq!(m.regs()[20], 0);
    }

    #[test]
    fn memory_subword_accesses_sign_extend() {
        let m = run(r#"
                li  t0, 0x3000
                li  t1, -2
                sb  t1, 0(t0)
                lb  t2, 0(t0)
                lbu t3, 0(t0)
                li  t4, -300
                sh  t4, 4(t0)
                lh  t5, 4(t0)
                lhu t6, 4(t0)
                ecall
            "#);
        assert_eq!(m.regs()[7] as i32, -2);
        assert_eq!(m.regs()[28], 0xfe);
        assert_eq!(m.regs()[30] as i32, -300);
        assert_eq!(m.regs()[31], 0x1_0000 - 300);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = run("li t0, 0x9000\nlw t1, 0(t0)\necall");
        assert_eq!(m.regs()[6], 0);
        assert_eq!(m.read(0x123456, 8), 0);
    }

    #[test]
    fn data_segments_are_loaded() {
        let p = assemble_rv(
            r#"
                la a0, tbl
                lw a1, 4(a0)
                ecall
            .data 0x2000
            tbl: .word 17, 42
            "#,
        )
        .unwrap();
        let mut m = RvMachine::new(&p).unwrap();
        m.run(100).unwrap();
        assert_eq!(m.regs()[11], 42);
        assert_eq!(m.read(0x2000, 4), 17);
    }

    #[test]
    fn x0_stays_zero_and_wild_jumps_fault() {
        let p = assemble_rv("li x0, 99\nli t0, 0x5000\njr t0\necall").unwrap();
        let mut m = RvMachine::new(&p).unwrap();
        let e = m.run(100).unwrap_err();
        assert_eq!(e, RvError::BadPc { pc: 0x5000 });
        assert_eq!(m.regs()[0], 0);
    }

    #[test]
    fn step_limit_is_reported() {
        let p = assemble_rv("loop: j loop").unwrap();
        let mut m = RvMachine::new(&p).unwrap();
        assert_eq!(m.run(50), Err(RvError::StepLimit { limit: 50 }));
    }

    #[test]
    fn function_calls_link_and_return() {
        let m = run(r#"
                li   sp, 0x8000
                li   a0, 5
                call square
                mv   s0, a0
                ecall
            square:
                mul  a0, a0, a0
                ret
            "#);
        assert_eq!(m.regs()[8], 25);
    }
}
