//! Property tests for the memory hierarchy: accounting identities, LRU
//! behaviour, MSHR timing and hierarchy latency bounds.

use proptest::prelude::*;

use fgstp_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, MshrFile};

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        line_bytes: 64,
        latency: 1,
        mshrs: 4,
    })
}

proptest! {
    /// hits + misses == accesses, and a just-accessed line is present.
    #[test]
    fn cache_accounting_identity(accesses in proptest::collection::vec((0u64..0x8000, any::<bool>()), 1..200)) {
        let mut c = small_cache();
        for (addr, is_write) in &accesses {
            c.access(*addr, *is_write);
            prop_assert!(c.probe(*addr), "line must be present after access");
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, accesses.len() as u64);
        prop_assert!(s.miss_rate() <= 1.0);
    }

    /// Repeating the same access stream twice at least doesn't *lower*
    /// the hit count of the second pass below the first (warm cache).
    #[test]
    fn warm_cache_never_hits_less(addrs in proptest::collection::vec(0u64..0x2000, 1..100)) {
        let mut c1 = small_cache();
        for a in &addrs {
            c1.access(*a, false);
        }
        let cold_hits = c1.stats().hits;
        for a in &addrs {
            c1.access(*a, false);
        }
        let warm_hits = c1.stats().hits - cold_hits;
        prop_assert!(warm_hits >= cold_hits);
    }

    /// MSHR: delivery time is at least request time plus fill latency and
    /// merges return the original completion.
    #[test]
    fn mshr_timing_bounds(reqs in proptest::collection::vec((0u64..16, 1u64..50), 1..60)) {
        let mut m = MshrFile::new(4);
        let mut now = 0u64;
        let mut inflight: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (line_sel, gap) in reqs {
            now += gap;
            let line = line_sel * 64;
            let done = m.request(line, now, 100);
            prop_assert!(done >= now + 100 || inflight.get(&line).is_some_and(|&d| d == done),
                "done {done} now {now}");
            prop_assert!(done >= now);
            inflight.retain(|_, d| *d > now);
            inflight.insert(line, done);
        }
    }

    /// Hierarchy latencies are bounded by the full DRAM path and below by
    /// the L1 hit latency.
    #[test]
    fn hierarchy_latency_bounds(accesses in proptest::collection::vec((0u64..0x10_0000, any::<bool>()), 1..100)) {
        let cfg = HierarchyConfig::small(1);
        let mut h = Hierarchy::new(&cfg);
        let worst = cfg.l1d.latency + cfg.l2.latency + cfg.dram_latency;
        let mut now = 0u64;
        for (addr, is_write) in accesses {
            let lat = h.access_data(0, addr, is_write, now);
            prop_assert!(lat >= cfg.l1d.latency, "lat {lat}");
            // With at most one outstanding request at a time, MSHR stalls
            // cannot inflate past the worst-case path.
            prop_assert!(lat <= worst, "lat {lat} > worst {worst}");
            now += lat + 1;
        }
    }
}
