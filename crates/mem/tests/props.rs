//! Property tests for the memory hierarchy: accounting identities, LRU
//! behaviour, MSHR timing and hierarchy latency bounds.
//!
//! Cases come from the workspace's deterministic [`Xorshift`] generator;
//! every assertion names its case seed so failures replay exactly.

use fgstp_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, MshrFile};
use fgstp_workloads::gen::Xorshift;

const CASES: u64 = 200;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        line_bytes: 64,
        latency: 1,
        mshrs: 4,
    })
}

/// hits + misses == accesses, and a just-accessed line is present.
#[test]
fn cache_accounting_identity() {
    for case in 0..CASES {
        let mut g = Xorshift::new(0x11_0001 + case);
        let accesses: Vec<(u64, bool)> = (0..g.range_usize(1, 200))
            .map(|_| (g.below(0x8000), g.flip()))
            .collect();
        let mut c = small_cache();
        for (addr, is_write) in &accesses {
            c.access(*addr, *is_write);
            assert!(c.probe(*addr), "case {case}: line present after access");
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses, "case {case}");
        assert_eq!(s.accesses, accesses.len() as u64, "case {case}");
        assert!(s.miss_rate() <= 1.0, "case {case}");
    }
}

/// Repeating the same access stream twice at least doesn't *lower* the
/// hit count of the second pass below the first (warm cache).
#[test]
fn warm_cache_never_hits_less() {
    for case in 0..CASES {
        let mut g = Xorshift::new(0x12_0001 + case);
        let addrs: Vec<u64> = (0..g.range_usize(1, 100))
            .map(|_| g.below(0x2000))
            .collect();
        let mut c1 = small_cache();
        for a in &addrs {
            c1.access(*a, false);
        }
        let cold_hits = c1.stats().hits;
        for a in &addrs {
            c1.access(*a, false);
        }
        let warm_hits = c1.stats().hits - cold_hits;
        assert!(warm_hits >= cold_hits, "case {case}");
    }
}

/// MSHR: delivery time is at least request time plus fill latency and
/// merges return the original completion.
#[test]
fn mshr_timing_bounds() {
    for case in 0..CASES {
        let mut g = Xorshift::new(0x13_0001 + case);
        let mut m = MshrFile::new(4);
        let mut now = 0u64;
        let mut inflight: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..g.range_usize(1, 60) {
            let line = g.below(16) * 64;
            now += g.range_u64(1, 50);
            let done = m.request(line, now, 100);
            assert!(
                done >= now + 100 || inflight.get(&line).is_some_and(|&d| d == done),
                "case {case}: done {done} now {now}"
            );
            assert!(done >= now, "case {case}");
            inflight.retain(|_, d| *d > now);
            inflight.insert(line, done);
        }
    }
}

/// Hierarchy latencies are bounded by the full DRAM path and below by the
/// L1 hit latency.
#[test]
fn hierarchy_latency_bounds() {
    for case in 0..CASES {
        let mut g = Xorshift::new(0x14_0001 + case);
        let cfg = HierarchyConfig::small(1);
        let mut h = Hierarchy::new(&cfg);
        let worst = cfg.l1d.latency + cfg.l2.latency + cfg.dram_latency;
        let mut now = 0u64;
        for _ in 0..g.range_usize(1, 100) {
            let addr = g.below(0x10_0000);
            let is_write = g.flip();
            let lat = h.access_data(0, addr, is_write, now);
            assert!(lat >= cfg.l1d.latency, "case {case}: lat {lat}");
            // With at most one outstanding request at a time, MSHR stalls
            // cannot inflate past the worst-case path.
            assert!(lat <= worst, "case {case}: lat {lat} > worst {worst}");
            now += lat + 1;
        }
    }
}
