//! Set-associative cache with true-LRU replacement.

use std::fmt;

use crate::codec::{put_u64, take_u64, take_u8};

/// Static cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Maximum outstanding misses (MSHR entries).
    pub mshrs: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `assoc * line_bytes`, or line size not a power of two).
    pub fn num_sets(&self) -> u64 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let per_way = self.size_bytes / u64::from(self.assoc);
        assert!(
            per_way.is_multiple_of(self.line_bytes) && per_way > 0,
            "cache geometry inconsistent: {self:?}"
        );
        per_way / self.line_bytes
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty lines evicted.
    pub writebacks: u64,
    /// Lines installed by a prefetcher.
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` (plain counter addition). Merging
    /// the disjoint per-requestor slices of a shared cache reconstructs
    /// the cache-wide counters; the co-run breakdown relies on this.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.prefetch_fills += other.prefetch_fills;
    }

    /// The counter increments between two snapshots of the same cache
    /// (`later` must be a later snapshot than `self`).
    pub fn delta(&self, later: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: later.accesses - self.accesses,
            hits: later.hits - self.hits,
            misses: later.misses - self.misses,
            writebacks: later.writebacks - self.writebacks,
            prefetch_fills: later.prefetch_fills - self.prefetch_fills,
        }
    }

    /// Miss rate over demand accesses (0 when there were none).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}% miss rate), {} writebacks",
            self.accesses,
            self.misses,
            self.miss_rate() * 100.0,
            self.writebacks
        )
    }
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement.
///
/// This models *presence* only; the containing [`crate::Hierarchy`] turns
/// presence into latency.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    use_counter: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.num_sets();
        Cache {
            config,
            sets: vec![vec![Line::default(); config.assoc as usize]; sets as usize],
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let num_sets = self.sets.len() as u64;
        ((line % num_sets) as usize, line / num_sets)
    }

    /// The address of the first byte of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Whether the line containing `addr` is present (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs a demand access, allocating on miss.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.use_counter += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let counter = self.use_counter;
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = counter;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        let writeback = self.fill_line(set, tag, is_write);
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Installs the line containing `addr` without counting a demand access
    /// (prefetch fill). Returns the writeback address, if any. A line that
    /// is already present is refreshed, not re-installed.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.use_counter += 1;
        let (set, tag) = self.set_and_tag(addr);
        let counter = self.use_counter;
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = counter;
            return None;
        }
        self.stats.prefetch_fills += 1;
        self.fill_line(set, tag, false)
    }

    /// Invalidates the line containing `addr` if present; returns whether a
    /// dirty copy was dropped (counted as a writeback).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.valid = false;
            let dirty = line.dirty;
            if dirty {
                self.stats.writebacks += 1;
            }
            dirty
        } else {
            false
        }
    }

    /// Appends the full cache state — geometry check header, LRU clock,
    /// statistics and every line's (tag, valid, dirty, last-use) — to
    /// `out`, for checkpointed-sampling snapshots.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.sets.len() as u64);
        put_u64(out, u64::from(self.config.assoc));
        put_u64(out, self.use_counter);
        put_u64(out, self.stats.accesses);
        put_u64(out, self.stats.hits);
        put_u64(out, self.stats.misses);
        put_u64(out, self.stats.writebacks);
        put_u64(out, self.stats.prefetch_fills);
        for set in &self.sets {
            for line in set {
                put_u64(out, line.tag);
                out.push(u8::from(line.valid) | (u8::from(line.dirty) << 1));
                put_u64(out, line.last_use);
            }
        }
    }

    /// Restores state written by [`Cache::save_state`] on a same-geometry
    /// cache, consuming it from the front of `bytes`. A geometry mismatch
    /// or truncation is an `Err` (the cache is then unspecified — discard
    /// it), never a panic.
    pub fn load_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        let sets = take_u64(bytes)? as usize;
        let assoc = take_u64(bytes)?;
        if sets != self.sets.len() || assoc != u64::from(self.config.assoc) {
            return Err(format!(
                "cache shape mismatch: {sets}x{assoc}, expected {}x{}",
                self.sets.len(),
                self.config.assoc
            ));
        }
        self.use_counter = take_u64(bytes)?;
        self.stats = CacheStats {
            accesses: take_u64(bytes)?,
            hits: take_u64(bytes)?,
            misses: take_u64(bytes)?,
            writebacks: take_u64(bytes)?,
            prefetch_fills: take_u64(bytes)?,
        };
        for set in &mut self.sets {
            for line in set {
                line.tag = take_u64(bytes)?;
                let flags = take_u8(bytes)?;
                if flags > 3 {
                    return Err(format!("bad cache line flags {flags}"));
                }
                line.valid = flags & 1 != 0;
                line.dirty = flags & 2 != 0;
                line.last_use = take_u64(bytes)?;
            }
        }
        Ok(())
    }

    fn fill_line(&mut self, set: usize, tag: u64, dirty: bool) -> Option<u64> {
        let num_sets = self.sets.len() as u64;
        let line_bytes = self.config.line_bytes;
        let counter = self.use_counter;
        let ways = &mut self.sets[set];
        let victim = match ways.iter_mut().find(|l| !l.valid) {
            Some(free) => free,
            None => ways
                .iter_mut()
                .min_by_key(|l| l.last_use)
                .expect("assoc > 0"),
        };
        let mut writeback = None;
        if victim.valid && victim.dirty {
            let victim_line = victim.tag * num_sets + set as u64;
            writeback = Some(victim_line * line_bytes);
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            last_use: counter,
        };
        writeback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            assoc: 2,
            line_bytes: 16,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn geometry_is_computed() {
        assert_eq!(tiny().config().num_sets(), 2);
    }

    #[test]
    #[should_panic(expected = "geometry inconsistent")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 100,
            assoc: 3,
            line_bytes: 16,
            latency: 1,
            mshrs: 4,
        }
        .num_sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x4f, false).hit, "same line");
        assert!(!c.access(0x50, false).hit, "next line");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines with (line_index % 2 == 0): addresses 0x00, 0x20, 0x40...
        c.access(0x00, false);
        c.access(0x20, false);
        c.access(0x00, false); // refresh 0x00; 0x20 is now LRU
        c.access(0x40, false); // evicts 0x20
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x00, true);
        c.access(0x20, false);
        let r = c.access(0x40, false); // evicts dirty 0x00
        assert_eq!(r.writeback, Some(0x00));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x00, false);
        c.access(0x20, false);
        let r = c.access(0x40, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = tiny();
        c.access(0x00, false);
        c.access(0x00, true); // dirty via hit
        c.access(0x20, false);
        let r = c.access(0x40, false);
        assert_eq!(r.writeback, Some(0x00));
    }

    #[test]
    fn fill_does_not_count_demand_access() {
        let mut c = tiny();
        c.fill(0x00);
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(0x00, false).hit);
        // Filling a present line is a no-op.
        c.fill(0x00);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn invalidate_drops_line_and_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x00, true);
        assert!(c.invalidate(0x00));
        assert!(!c.probe(0x00));
        assert!(!c.invalidate(0x00), "already gone");
        c.access(0x20, false);
        assert!(!c.invalidate(0x20), "clean line");
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0x00, false);
        c.access(0x20, false);
        // Probing 0x00 must not refresh it.
        assert!(c.probe(0x00));
        c.access(0x40, false); // should evict 0x00 (LRU), not 0x20
        assert!(!c.probe(0x00));
        assert!(c.probe(0x20));
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = tiny();
        assert_eq!(c.line_addr(0x4f), 0x40);
        assert_eq!(c.line_addr(0x40), 0x40);
    }
}
