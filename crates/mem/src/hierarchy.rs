//! Two-level cache hierarchy with per-core L1s and a shared L2.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1I and L1D).
    pub cores: usize,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub dram_latency: u64,
    /// Enable the L1D stride prefetcher.
    pub prefetch: bool,
}

impl HierarchyConfig {
    /// Hierarchy matching the paper-era *small* core: 16 KiB L1s, 1 MiB L2.
    pub fn small(cores: usize) -> HierarchyConfig {
        HierarchyConfig {
            cores,
            l1i: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 1,
                mshrs: 4,
            },
            l1d: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
                mshrs: 8,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                assoc: 8,
                line_bytes: 64,
                latency: 12,
                mshrs: 16,
            },
            dram_latency: 120,
            prefetch: false,
        }
    }

    /// Hierarchy matching the paper-era *medium* core: 32 KiB L1s, 2 MiB L2,
    /// stride prefetching enabled.
    pub fn medium(cores: usize) -> HierarchyConfig {
        HierarchyConfig {
            cores,
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
                mshrs: 8,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 3,
                mshrs: 16,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                assoc: 8,
                line_bytes: 64,
                latency: 14,
                mshrs: 32,
            },
            dram_latency: 140,
            prefetch: true,
        }
    }
}

/// Aggregated statistics over the hierarchy.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// Per-core L1I stats.
    pub l1i: Vec<CacheStats>,
    /// Per-core L1D stats.
    pub l1d: Vec<CacheStats>,
    /// Shared L2 stats.
    pub l2: CacheStats,
    /// Cross-core invalidations performed (Fg-STP mode).
    pub invalidations: u64,
}

/// The memory hierarchy timing model.
///
/// `access_*` methods return the number of cycles from issue (`now`) until
/// the data is available, updating cache and MSHR state. Instruction
/// addresses live in a separate address region so I- and D-streams never
/// alias.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    l1d_mshrs: Vec<MshrFile>,
    l2_mshr: MshrFile,
    prefetchers: Vec<StridePrefetcher>,
    invalidations: u64,
}

/// Byte offset of the instruction address region.
const INST_REGION: u64 = 1 << 40;
/// Nominal instruction size used to map instruction indices to addresses.
const INST_BYTES: u64 = 4;

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero or any cache geometry is invalid.
    pub fn new(config: &HierarchyConfig) -> Hierarchy {
        assert!(config.cores > 0, "hierarchy needs at least one core");
        Hierarchy {
            config: *config,
            l1i: (0..config.cores).map(|_| Cache::new(config.l1i)).collect(),
            l1d: (0..config.cores).map(|_| Cache::new(config.l1d)).collect(),
            l2: Cache::new(config.l2),
            l1d_mshrs: (0..config.cores)
                .map(|_| MshrFile::new(config.l1d.mshrs as usize))
                .collect(),
            l2_mshr: MshrFile::new(config.l2.mshrs as usize),
            prefetchers: (0..config.cores)
                .map(|_| StridePrefetcher::new(64, 2))
                .collect(),
            invalidations: 0,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Maps an instruction index to its address in the instruction region.
    pub fn inst_addr(pc: u64) -> u64 {
        INST_REGION + pc * INST_BYTES
    }

    /// Latency of filling a line into an L1 from L2/DRAM, starting at `now`.
    ///
    /// A line that is present in the L2 but whose own fill is still in
    /// flight (an earlier miss to the same line) is served when that fill
    /// completes, not at the L2 hit latency.
    fn fill_from_l2(&mut self, line: u64, now: u64) -> u64 {
        let l2_result = self.l2.access(line, false);
        if l2_result.hit {
            match self.l2_mshr.pending(line, now) {
                Some(done) => done - now,
                None => self.config.l2.latency,
            }
        } else {
            let done =
                self.l2_mshr
                    .request(line, now, self.config.l2.latency + self.config.dram_latency);
            done - now
        }
    }

    /// One L1D access with correct in-flight-fill semantics: a "hit" on a
    /// line whose miss is still outstanding waits for the fill (MSHR
    /// merge), not the hit latency.
    fn l1d_access(&mut self, core: usize, addr: u64, is_write: bool, now: u64) -> u64 {
        let line = self.l1d[core].line_addr(addr);
        let l1 = self.l1d[core].access(addr, is_write);
        if l1.hit {
            match self.l1d_mshrs[core].pending(line, now) {
                Some(done) => done - now,
                None => self.config.l1d.latency,
            }
        } else {
            let fill = self.fill_from_l2(line, now);
            let done = self.l1d_mshrs[core].request(line, now, self.config.l1d.latency + fill);
            done - now
        }
    }

    /// Data access by `core` at `addr` (`is_write` for stores) issued at
    /// cycle `now`; returns the latency until data is available.
    pub fn access_data(&mut self, core: usize, addr: u64, is_write: bool, now: u64) -> u64 {
        let latency = self.l1d_access(core, addr, is_write, now);
        if self.config.prefetch && !is_write {
            for pf_addr in self.prefetchers[core].observe(addr, addr) {
                self.prefetch_fill(core, pf_addr);
            }
        }
        latency
    }

    /// Data access steered by the load's PC (lets the stride prefetcher
    /// train per static load rather than per address stream).
    pub fn access_load_with_pc(&mut self, core: usize, pc: u64, addr: u64, now: u64) -> u64 {
        let latency = self.l1d_access(core, addr, false, now);
        if self.config.prefetch {
            for pf_addr in self.prefetchers[core].observe(pc, addr) {
                self.prefetch_fill(core, pf_addr);
            }
        }
        latency
    }

    fn prefetch_fill(&mut self, core: usize, addr: u64) {
        let line = self.l1d[core].line_addr(addr);
        self.l1d[core].fill(line);
        self.l2.fill(line);
    }

    /// Instruction fetch by `core` of the line containing instruction index
    /// `pc`; returns the latency until the fetch group is available.
    pub fn access_inst(&mut self, core: usize, pc: u64, now: u64) -> u64 {
        let addr = Self::inst_addr(pc);
        let line = self.l1i[core].line_addr(addr);
        let l1 = self.l1i[core].access(addr, false);
        if l1.hit {
            self.config.l1i.latency
        } else {
            let fill = self.fill_from_l2(line, now);
            self.config.l1i.latency + fill
        }
    }

    /// Functional-warming data reference (the sampling fast-forward mode).
    ///
    /// Installs the line in **every** core's L1D — the warming stream is
    /// not partitioned, steering is decided only inside a detailed window,
    /// so any core may own the line when one opens — and, when an L1
    /// missed, once in the shared L2, so the L2 observes the L1 *miss*
    /// stream exactly as on the timing path. Tags, LRU state and hit/miss
    /// counters update; MSHRs, prefetchers and latencies are untouched.
    pub fn warm_data(&mut self, addr: u64, is_write: bool) {
        let mut missed = false;
        for l1 in &mut self.l1d {
            missed |= !l1.access(addr, is_write).hit;
        }
        if missed {
            let line = self.l2.line_addr(addr);
            self.l2.access(line, false);
        }
    }

    /// Functional-warming instruction reference for the instruction at
    /// index `pc`; the I-side counterpart of [`Hierarchy::warm_data`].
    pub fn warm_inst(&mut self, pc: u64) {
        let addr = Self::inst_addr(pc);
        let mut missed = false;
        for l1 in &mut self.l1i {
            missed |= !l1.access(addr, false).hit;
        }
        if missed {
            let line = self.l2.line_addr(addr);
            self.l2.access(line, false);
        }
    }

    /// Invalidates the line containing `addr` in every L1D except
    /// `writer_core` (write-invalidate between collaborating cores).
    pub fn invalidate_others(&mut self, writer_core: usize, addr: u64) {
        for core in 0..self.config.cores {
            if core != writer_core {
                let line = self.l1d[core].line_addr(addr);
                if self.l1d[core].invalidate(line) {
                    // Dirty data migrates through the shared L2.
                    self.l2.fill(line);
                }
                self.invalidations += 1;
            }
        }
    }

    /// Whether the line containing `addr` is present in `core`'s L1D.
    pub fn l1d_has(&self, core: usize, addr: u64) -> bool {
        self.l1d[core].probe(addr)
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.iter().map(|c| *c.stats()).collect(),
            l1d: self.l1d.iter().map(|c| *c.stats()).collect(),
            l2: *self.l2.stats(),
            invalidations: self.invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(cores: usize) -> Hierarchy {
        Hierarchy::new(&HierarchyConfig::small(cores))
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits() {
        let mut h = h(1);
        let cfg = *h.config();
        let cold = h.access_data(0, 0x1000, false, 0);
        assert_eq!(cold, cfg.l1d.latency + cfg.l2.latency + cfg.dram_latency);
        let warm = h.access_data(0, 0x1000, false, cold);
        assert_eq!(warm, cfg.l1d.latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut h = h(1);
        let cfg = *h.config();
        // Touch enough distinct lines to evict 0x0 from a 16 KiB L1
        // (aliasing every 4 KiB per way * 4 ways).
        h.access_data(0, 0, false, 0);
        for i in 1..=8u64 {
            h.access_data(0, i * 16 * 1024, false, 0);
        }
        let lat = h.access_data(0, 0, false, 100_000);
        assert_eq!(lat, cfg.l1d.latency + cfg.l2.latency, "should hit in L2");
    }

    #[test]
    fn inst_and_data_streams_do_not_alias() {
        let mut h = h(1);
        h.access_data(0, 0, true, 0);
        let stats_before = h.stats().l1d[0].accesses;
        h.access_inst(0, 0, 0);
        assert_eq!(h.stats().l1d[0].accesses, stats_before);
        assert_eq!(h.stats().l1i[0].accesses, 1);
    }

    #[test]
    fn per_core_l1s_are_private_but_l2_is_shared() {
        let mut h = h(2);
        let cfg = *h.config();
        let a = h.access_data(0, 0x4000, false, 0);
        // Core 1 misses its own L1 but hits shared L2.
        let b = h.access_data(1, 0x4000, false, a);
        assert_eq!(b, cfg.l1d.latency + cfg.l2.latency);
    }

    #[test]
    fn invalidate_others_forces_remote_reload() {
        let mut h = h(2);
        let cfg = *h.config();
        let warmup = h.access_data(1, 0x8000, false, 0);
        h.access_data(1, 0x8000, false, warmup); // now hot in core 1
        h.access_data(0, 0x8000, true, warmup);
        h.invalidate_others(0, 0x8000);
        assert!(!h.l1d_has(1, 0x8000));
        let lat = h.access_data(1, 0x8000, false, 10_000);
        assert_eq!(
            lat,
            cfg.l1d.latency + cfg.l2.latency,
            "reload through shared L2"
        );
        assert_eq!(h.stats().invalidations, 1);
    }

    #[test]
    fn mshr_merging_bounds_latency_of_same_line_misses() {
        let mut h = h(1);
        let first = h.access_data(0, 0x2000, false, 0);
        // Second access to the same line 5 cycles later: even though the L1
        // re-misses (line not yet filled in this simple model, it *was*
        // installed), it should hit because access() installs the line.
        let second = h.access_data(0, 0x2008, false, 5);
        assert!(second <= first);
    }

    #[test]
    fn prefetcher_hides_streaming_misses() {
        let mut cfg = HierarchyConfig::small(1);
        cfg.prefetch = true;
        let mut with_pf = Hierarchy::new(&cfg);
        cfg.prefetch = false;
        let mut without_pf = Hierarchy::new(&cfg);
        let mut lat_with = 0;
        let mut lat_without = 0;
        let mut now = 0;
        for i in 0..64u64 {
            let addr = 0x10_0000 + i * 64; // one access per line, stride 64
            lat_with += with_pf.access_load_with_pc(0, 0x77, addr, now);
            lat_without += without_pf.access_load_with_pc(0, 0x77, addr, now);
            now += 200;
        }
        assert!(
            lat_with < lat_without,
            "prefetching should reduce total latency: {lat_with} vs {lat_without}"
        );
    }

    #[test]
    fn stats_cover_all_cores() {
        let mut h = h(2);
        h.access_data(0, 0, false, 0);
        h.access_data(1, 64, false, 0);
        let s = h.stats();
        assert_eq!(s.l1d.len(), 2);
        assert_eq!(s.l1d[0].accesses, 1);
        assert_eq!(s.l1d[1].accesses, 1);
        assert_eq!(s.l2.accesses, 2);
    }

    #[test]
    fn warming_makes_later_timed_accesses_hit() {
        let mut h = h(2);
        let cfg = *h.config();
        h.warm_data(0x9000, false);
        h.warm_inst(0x40);
        // Both cores hit their L1s after warming, no MSHR involvement.
        for core in 0..2 {
            assert_eq!(h.access_data(core, 0x9000, false, 0), cfg.l1d.latency);
            assert_eq!(h.access_inst(core, 0x40, 0), cfg.l1i.latency);
        }
    }

    #[test]
    fn warming_sends_only_the_miss_stream_to_l2() {
        let mut h = h(1);
        h.warm_data(0x6000, false);
        h.warm_data(0x6008, false); // same line: L1 hit, no L2 traffic
        let s = h.stats();
        assert_eq!(s.l1d[0].accesses, 2);
        assert_eq!(s.l2.accesses, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        Hierarchy::new(&HierarchyConfig {
            cores: 0,
            ..HierarchyConfig::small(1)
        });
    }
}
