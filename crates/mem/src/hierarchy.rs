//! Two-level cache hierarchy with per-core L1s and a shared L2.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1I and L1D).
    pub cores: usize,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub dram_latency: u64,
    /// Enable the L1D stride prefetcher.
    pub prefetch: bool,
}

impl HierarchyConfig {
    /// Hierarchy matching the paper-era *small* core: 16 KiB L1s, 1 MiB L2.
    pub fn small(cores: usize) -> HierarchyConfig {
        HierarchyConfig {
            cores,
            l1i: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 1,
                mshrs: 4,
            },
            l1d: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
                mshrs: 8,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                assoc: 8,
                line_bytes: 64,
                latency: 12,
                mshrs: 16,
            },
            dram_latency: 120,
            prefetch: false,
        }
    }

    /// Hierarchy matching the paper-era *medium* core: 32 KiB L1s, 2 MiB L2,
    /// stride prefetching enabled.
    pub fn medium(cores: usize) -> HierarchyConfig {
        HierarchyConfig {
            cores,
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
                mshrs: 8,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 3,
                mshrs: 16,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                assoc: 8,
                line_bytes: 64,
                latency: 14,
                mshrs: 32,
            },
            dram_latency: 140,
            prefetch: true,
        }
    }
}

/// Bandwidth model of the shared DRAM channel: a fixed number of
/// concurrent transaction slots, each held for `occupancy` cycles. A miss
/// that finds every slot busy queues for the earliest-freed one (ties
/// toward the lowest slot index), so arbitration is fixed-priority among
/// same-cycle requests and round-robin over slots as they free —
/// deterministic for any worker-pool size because requests arrive in the
/// co-run driver's fixed core-stepping order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramBandwidth {
    /// Concurrent DRAM transactions in flight.
    pub max_inflight: usize,
    /// Cycles one transaction occupies its slot.
    pub occupancy: u64,
}

impl Default for DramBandwidth {
    fn default() -> DramBandwidth {
        DramBandwidth {
            max_inflight: 2,
            occupancy: 24,
        }
    }
}

/// DRAM traffic counters (all zero unless a [`DramBandwidth`] model is
/// configured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Transactions issued to DRAM.
    pub transactions: u64,
    /// Cycles transactions spent waiting for a free channel slot.
    pub queue_cycles: u64,
}

impl DramStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &DramStats) {
        self.transactions += other.transactions;
        self.queue_cycles += other.queue_cycles;
    }
}

/// One requestor's (co-running program's) share of the shared resources.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestorStats {
    /// This requestor's slice of the shared-L2 traffic.
    pub l2: CacheStats,
    /// This requestor's slice of the DRAM traffic.
    pub dram: DramStats,
    /// Invalidations performed among this requestor's cores.
    pub invalidations: u64,
}

impl RequestorStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RequestorStats) {
        self.l2.merge(&other.l2);
        self.dram.merge(&other.dram);
        self.invalidations += other.invalidations;
    }
}

/// Aggregated statistics over the hierarchy.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// Per-core L1I stats.
    pub l1i: Vec<CacheStats>,
    /// Per-core L1D stats.
    pub l1d: Vec<CacheStats>,
    /// Shared L2 stats.
    pub l2: CacheStats,
    /// Cross-core invalidations performed (Fg-STP mode).
    pub invalidations: u64,
    /// DRAM traffic (all zero without a bandwidth model).
    pub dram: DramStats,
    /// Shared-resource traffic broken down per requestor. Empty unless the
    /// hierarchy was built with [`Hierarchy::new_shared`]; then the entries
    /// sum to the machine-wide counters for every access made through the
    /// timed per-core paths (functional warming is unattributed).
    pub by_requestor: Vec<RequestorStats>,
}

impl HierarchyStats {
    /// Merges another hierarchy's (or program slice's) statistics into
    /// `self`: the per-core L1 vectors are concatenated (cores are
    /// distinct), shared-level counters are added, and requestor
    /// breakdowns are concatenated. Merging the per-program views of a
    /// co-run reconstructs the machine-wide view; the co-run breakdown in
    /// the bench crate relies on this instead of ad-hoc summation.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1i.extend_from_slice(&other.l1i);
        self.l1d.extend_from_slice(&other.l1d);
        self.l2.merge(&other.l2);
        self.invalidations += other.invalidations;
        self.dram.merge(&other.dram);
        self.by_requestor.extend_from_slice(&other.by_requestor);
    }
}

/// The shared DRAM channel slots (see [`DramBandwidth`]).
#[derive(Debug)]
struct DramChannel {
    /// Busy-until cycle per slot.
    slots: Vec<u64>,
    occupancy: u64,
    stats: DramStats,
}

impl DramChannel {
    fn new(cfg: DramBandwidth) -> DramChannel {
        DramChannel {
            slots: vec![0; cfg.max_inflight.max(1)],
            occupancy: cfg.occupancy,
            stats: DramStats::default(),
        }
    }

    /// Claims the earliest-free slot for a transaction arriving at `at`;
    /// returns the cycle the transaction actually starts.
    fn acquire(&mut self, at: u64) -> u64 {
        let mut best = 0;
        for (i, &busy) in self.slots.iter().enumerate().skip(1) {
            if busy < self.slots[best] {
                best = i;
            }
        }
        let start = at.max(self.slots[best]);
        self.slots[best] = start + self.occupancy;
        self.stats.transactions += 1;
        self.stats.queue_cycles += start - at;
        start
    }
}

/// The memory hierarchy timing model.
///
/// `access_*` methods return the number of cycles from issue (`now`) until
/// the data is available, updating cache and MSHR state. Instruction
/// addresses live in a separate address region so I- and D-streams never
/// alias.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    l1d_mshrs: Vec<MshrFile>,
    l2_mshr: MshrFile,
    prefetchers: Vec<StridePrefetcher>,
    invalidations: u64,
    /// Requestor (co-running program) id per core. All zero in the
    /// single-program hierarchy.
    requestors: Vec<usize>,
    /// Address-space offset per core, derived from the requestor map so
    /// independent programs never alias in the shared levels.
    asid_bases: Vec<u64>,
    /// Per-requestor shared-resource breakdown; empty unless built with
    /// [`Hierarchy::new_shared`].
    req_stats: Vec<RequestorStats>,
    /// Finite-bandwidth DRAM channel, when configured.
    dram: Option<DramChannel>,
}

/// Byte offset of the instruction address region.
const INST_REGION: u64 = 1 << 40;
/// Nominal instruction size used to map instruction indices to addresses.
const INST_BYTES: u64 = 4;
/// Address-space stride between requestors: far above both the data
/// region and [`INST_REGION`], so co-running programs never alias.
const ASID_STRIDE: u64 = 1 << 45;

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero or any cache geometry is invalid.
    pub fn new(config: &HierarchyConfig) -> Hierarchy {
        assert!(config.cores > 0, "hierarchy needs at least one core");
        Hierarchy {
            config: *config,
            l1i: (0..config.cores).map(|_| Cache::new(config.l1i)).collect(),
            l1d: (0..config.cores).map(|_| Cache::new(config.l1d)).collect(),
            l2: Cache::new(config.l2),
            l1d_mshrs: (0..config.cores)
                .map(|_| MshrFile::new(config.l1d.mshrs as usize))
                .collect(),
            l2_mshr: MshrFile::new(config.l2.mshrs as usize),
            prefetchers: (0..config.cores)
                .map(|_| StridePrefetcher::new(64, 2))
                .collect(),
            invalidations: 0,
            requestors: vec![0; config.cores],
            asid_bases: vec![0; config.cores],
            req_stats: Vec::new(),
            dram: None,
        }
    }

    /// Creates a hierarchy whose shared levels are arbitrated between
    /// several requestors (co-running programs): `requestors[core]` names
    /// the program owning each core. Each requestor gets a disjoint
    /// address space, a [`RequestorStats`] slice of the shared-L2 and DRAM
    /// traffic, and write-invalidations stay within its own cores. With an
    /// all-zero requestor map and `dram = None` the timing is bit-identical
    /// to [`Hierarchy::new`] — only the breakdown is additionally recorded.
    ///
    /// # Panics
    ///
    /// Panics if `requestors.len() != config.cores`, if requestor ids are
    /// not dense from zero, or if the geometry is invalid.
    pub fn new_shared(
        config: &HierarchyConfig,
        requestors: &[usize],
        dram: Option<DramBandwidth>,
    ) -> Hierarchy {
        assert_eq!(requestors.len(), config.cores, "one requestor id per core");
        let num_req = requestors.iter().max().map_or(0, |m| m + 1);
        assert!(
            (0..num_req).all(|r| requestors.contains(&r)),
            "requestor ids must be dense from zero"
        );
        let mut h = Hierarchy::new(config);
        h.requestors = requestors.to_vec();
        h.asid_bases = requestors.iter().map(|&r| r as u64 * ASID_STRIDE).collect();
        h.req_stats = vec![RequestorStats::default(); num_req];
        h.dram = dram.map(DramChannel::new);
        h
    }

    /// Replaces one core's private L1 geometries (asymmetric machines).
    /// Only geometry and MSHR capacity vary per core; hit latencies come
    /// from the base config, and the line size must match it. Call before
    /// simulating — the replaced caches start empty.
    ///
    /// # Panics
    ///
    /// Panics if a line size differs from the base config or the geometry
    /// is invalid.
    pub fn set_core_l1(&mut self, core: usize, l1i: Option<CacheConfig>, l1d: Option<CacheConfig>) {
        if let Some(cfg) = l1i {
            assert_eq!(
                cfg.line_bytes, self.config.l1i.line_bytes,
                "per-core L1I line size must match the base config"
            );
            self.l1i[core] = Cache::new(cfg);
        }
        if let Some(cfg) = l1d {
            assert_eq!(
                cfg.line_bytes, self.config.l1d.line_bytes,
                "per-core L1D line size must match the base config"
            );
            self.l1d[core] = Cache::new(cfg);
            self.l1d_mshrs[core] = MshrFile::new(cfg.mshrs as usize);
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The core's effective address: private address spaces per requestor.
    fn eff(&self, core: usize, addr: u64) -> u64 {
        addr + self.asid_bases[core]
    }

    /// Attributes the L2 counter increments since `before` to `core`'s
    /// requestor (no-op in the single-program hierarchy).
    fn note_l2_delta(&mut self, core: usize, before: &CacheStats) {
        if !self.req_stats.is_empty() {
            let delta = before.delta(self.l2.stats());
            self.req_stats[self.requestors[core]].l2.merge(&delta);
        }
    }

    /// Maps an instruction index to its address in the instruction region.
    pub fn inst_addr(pc: u64) -> u64 {
        INST_REGION + pc * INST_BYTES
    }

    /// Latency of filling a line into an L1 from L2/DRAM, starting at `now`.
    ///
    /// A line that is present in the L2 but whose own fill is still in
    /// flight (an earlier miss to the same line) is served when that fill
    /// completes, not at the L2 hit latency. An L2 miss under a finite
    /// DRAM bandwidth model additionally queues for a channel slot.
    fn fill_from_l2(&mut self, core: usize, line: u64, now: u64) -> u64 {
        let before = *self.l2.stats();
        let l2_result = self.l2.access(line, false);
        self.note_l2_delta(core, &before);
        if l2_result.hit {
            match self.l2_mshr.pending(line, now) {
                Some(done) => done - now,
                None => self.config.l2.latency,
            }
        } else {
            let mut queue = 0;
            if let Some(ch) = &mut self.dram {
                // The request reaches the channel after the L2 lookup.
                let at = now + self.config.l2.latency;
                queue = ch.acquire(at) - at;
                if !self.req_stats.is_empty() {
                    let r = self.requestors[core];
                    self.req_stats[r].dram.transactions += 1;
                    self.req_stats[r].dram.queue_cycles += queue;
                }
            }
            let done = self.l2_mshr.request(
                line,
                now,
                self.config.l2.latency + queue + self.config.dram_latency,
            );
            done - now
        }
    }

    /// One L1D access with correct in-flight-fill semantics: a "hit" on a
    /// line whose miss is still outstanding waits for the fill (MSHR
    /// merge), not the hit latency.
    fn l1d_access(&mut self, core: usize, addr: u64, is_write: bool, now: u64) -> u64 {
        let line = self.l1d[core].line_addr(addr);
        let l1 = self.l1d[core].access(addr, is_write);
        if l1.hit {
            match self.l1d_mshrs[core].pending(line, now) {
                Some(done) => done - now,
                None => self.config.l1d.latency,
            }
        } else {
            let fill = self.fill_from_l2(core, line, now);
            let done = self.l1d_mshrs[core].request(line, now, self.config.l1d.latency + fill);
            done - now
        }
    }

    /// Data access by `core` at `addr` (`is_write` for stores) issued at
    /// cycle `now`; returns the latency until data is available.
    pub fn access_data(&mut self, core: usize, addr: u64, is_write: bool, now: u64) -> u64 {
        let addr = self.eff(core, addr);
        let latency = self.l1d_access(core, addr, is_write, now);
        if self.config.prefetch && !is_write {
            for pf_addr in self.prefetchers[core].observe(addr, addr) {
                self.prefetch_fill(core, pf_addr);
            }
        }
        latency
    }

    /// Data access steered by the load's PC (lets the stride prefetcher
    /// train per static load rather than per address stream).
    pub fn access_load_with_pc(&mut self, core: usize, pc: u64, addr: u64, now: u64) -> u64 {
        let addr = self.eff(core, addr);
        let latency = self.l1d_access(core, addr, false, now);
        if self.config.prefetch {
            for pf_addr in self.prefetchers[core].observe(pc, addr) {
                self.prefetch_fill(core, pf_addr);
            }
        }
        latency
    }

    fn prefetch_fill(&mut self, core: usize, addr: u64) {
        let line = self.l1d[core].line_addr(addr);
        self.l1d[core].fill(line);
        let before = *self.l2.stats();
        self.l2.fill(line);
        self.note_l2_delta(core, &before);
    }

    /// Instruction fetch by `core` of the line containing instruction index
    /// `pc`; returns the latency until the fetch group is available.
    pub fn access_inst(&mut self, core: usize, pc: u64, now: u64) -> u64 {
        let addr = self.eff(core, Self::inst_addr(pc));
        let line = self.l1i[core].line_addr(addr);
        let l1 = self.l1i[core].access(addr, false);
        if l1.hit {
            self.config.l1i.latency
        } else {
            let fill = self.fill_from_l2(core, line, now);
            self.config.l1i.latency + fill
        }
    }

    /// Functional-warming data reference (the sampling fast-forward mode).
    ///
    /// Installs the line in **every** core's L1D — the warming stream is
    /// not partitioned, steering is decided only inside a detailed window,
    /// so any core may own the line when one opens — and, when an L1
    /// missed, once in the shared L2, so the L2 observes the L1 *miss*
    /// stream exactly as on the timing path. Tags, LRU state and hit/miss
    /// counters update; MSHRs, prefetchers and latencies are untouched.
    pub fn warm_data(&mut self, addr: u64, is_write: bool) {
        let mut missed = false;
        for l1 in &mut self.l1d {
            missed |= !l1.access(addr, is_write).hit;
        }
        if missed {
            let line = self.l2.line_addr(addr);
            self.l2.access(line, false);
        }
    }

    /// Functional-warming instruction reference for the instruction at
    /// index `pc`; the I-side counterpart of [`Hierarchy::warm_data`].
    pub fn warm_inst(&mut self, pc: u64) {
        let addr = Self::inst_addr(pc);
        let mut missed = false;
        for l1 in &mut self.l1i {
            missed |= !l1.access(addr, false).hit;
        }
        if missed {
            let line = self.l2.line_addr(addr);
            self.l2.access(line, false);
        }
    }

    /// Invalidates the line containing `addr` in the L1D of every core
    /// *collaborating with* `writer_core` — same requestor, write-invalidate
    /// between the cores of one partitioned program. Co-running programs
    /// never invalidate each other (their address spaces are disjoint
    /// anyway).
    pub fn invalidate_others(&mut self, writer_core: usize, addr: u64) {
        let addr = self.eff(writer_core, addr);
        let req = self.requestors[writer_core];
        for core in 0..self.config.cores {
            if core != writer_core && self.requestors[core] == req {
                let line = self.l1d[core].line_addr(addr);
                if self.l1d[core].invalidate(line) {
                    // Dirty data migrates through the shared L2.
                    let before = *self.l2.stats();
                    self.l2.fill(line);
                    self.note_l2_delta(writer_core, &before);
                }
                self.invalidations += 1;
                if !self.req_stats.is_empty() {
                    self.req_stats[req].invalidations += 1;
                }
            }
        }
    }

    /// Whether the line containing `addr` is present in `core`'s L1D.
    pub fn l1d_has(&self, core: usize, addr: u64) -> bool {
        self.l1d[core].probe(self.eff(core, addr))
    }

    /// Appends the hierarchy's *warm* state — every cache's tags, LRU
    /// clocks and statistics — to `out`, for checkpointed-sampling
    /// snapshots. Functional warming ([`Hierarchy::warm_data`] /
    /// [`Hierarchy::warm_inst`]) only ever moves this state: MSHRs,
    /// prefetchers, the DRAM channel and invalidation counters stay at
    /// their initial values, so they are reconstructed from the config on
    /// load rather than serialized.
    pub fn save_warm_state(&self, out: &mut Vec<u8>) {
        crate::codec::put_u64(out, self.config.cores as u64);
        for c in self.l1i.iter().chain(&self.l1d) {
            c.save_state(out);
        }
        self.l2.save_state(out);
    }

    /// Restores state written by [`Hierarchy::save_warm_state`] on a
    /// same-geometry hierarchy, consuming it from the front of `bytes`.
    /// Any mismatch is an `Err` (the hierarchy is then unspecified —
    /// discard it), never a panic.
    pub fn load_warm_state(&mut self, bytes: &mut &[u8]) -> Result<(), String> {
        let cores = crate::codec::take_u64(bytes)? as usize;
        if cores != self.config.cores {
            return Err(format!(
                "hierarchy shape mismatch: {cores} cores, expected {}",
                self.config.cores
            ));
        }
        for c in self.l1i.iter_mut().chain(&mut self.l1d) {
            c.load_state(bytes)?;
        }
        self.l2.load_state(bytes)
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.iter().map(|c| *c.stats()).collect(),
            l1d: self.l1d.iter().map(|c| *c.stats()).collect(),
            l2: *self.l2.stats(),
            invalidations: self.invalidations,
            dram: self.dram.as_ref().map_or(DramStats::default(), |d| d.stats),
            by_requestor: self.req_stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(cores: usize) -> Hierarchy {
        Hierarchy::new(&HierarchyConfig::small(cores))
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits() {
        let mut h = h(1);
        let cfg = *h.config();
        let cold = h.access_data(0, 0x1000, false, 0);
        assert_eq!(cold, cfg.l1d.latency + cfg.l2.latency + cfg.dram_latency);
        let warm = h.access_data(0, 0x1000, false, cold);
        assert_eq!(warm, cfg.l1d.latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut h = h(1);
        let cfg = *h.config();
        // Touch enough distinct lines to evict 0x0 from a 16 KiB L1
        // (aliasing every 4 KiB per way * 4 ways).
        h.access_data(0, 0, false, 0);
        for i in 1..=8u64 {
            h.access_data(0, i * 16 * 1024, false, 0);
        }
        let lat = h.access_data(0, 0, false, 100_000);
        assert_eq!(lat, cfg.l1d.latency + cfg.l2.latency, "should hit in L2");
    }

    #[test]
    fn inst_and_data_streams_do_not_alias() {
        let mut h = h(1);
        h.access_data(0, 0, true, 0);
        let stats_before = h.stats().l1d[0].accesses;
        h.access_inst(0, 0, 0);
        assert_eq!(h.stats().l1d[0].accesses, stats_before);
        assert_eq!(h.stats().l1i[0].accesses, 1);
    }

    #[test]
    fn per_core_l1s_are_private_but_l2_is_shared() {
        let mut h = h(2);
        let cfg = *h.config();
        let a = h.access_data(0, 0x4000, false, 0);
        // Core 1 misses its own L1 but hits shared L2.
        let b = h.access_data(1, 0x4000, false, a);
        assert_eq!(b, cfg.l1d.latency + cfg.l2.latency);
    }

    #[test]
    fn invalidate_others_forces_remote_reload() {
        let mut h = h(2);
        let cfg = *h.config();
        let warmup = h.access_data(1, 0x8000, false, 0);
        h.access_data(1, 0x8000, false, warmup); // now hot in core 1
        h.access_data(0, 0x8000, true, warmup);
        h.invalidate_others(0, 0x8000);
        assert!(!h.l1d_has(1, 0x8000));
        let lat = h.access_data(1, 0x8000, false, 10_000);
        assert_eq!(
            lat,
            cfg.l1d.latency + cfg.l2.latency,
            "reload through shared L2"
        );
        assert_eq!(h.stats().invalidations, 1);
    }

    #[test]
    fn mshr_merging_bounds_latency_of_same_line_misses() {
        let mut h = h(1);
        let first = h.access_data(0, 0x2000, false, 0);
        // Second access to the same line 5 cycles later: even though the L1
        // re-misses (line not yet filled in this simple model, it *was*
        // installed), it should hit because access() installs the line.
        let second = h.access_data(0, 0x2008, false, 5);
        assert!(second <= first);
    }

    #[test]
    fn prefetcher_hides_streaming_misses() {
        let mut cfg = HierarchyConfig::small(1);
        cfg.prefetch = true;
        let mut with_pf = Hierarchy::new(&cfg);
        cfg.prefetch = false;
        let mut without_pf = Hierarchy::new(&cfg);
        let mut lat_with = 0;
        let mut lat_without = 0;
        let mut now = 0;
        for i in 0..64u64 {
            let addr = 0x10_0000 + i * 64; // one access per line, stride 64
            lat_with += with_pf.access_load_with_pc(0, 0x77, addr, now);
            lat_without += without_pf.access_load_with_pc(0, 0x77, addr, now);
            now += 200;
        }
        assert!(
            lat_with < lat_without,
            "prefetching should reduce total latency: {lat_with} vs {lat_without}"
        );
    }

    #[test]
    fn stats_cover_all_cores() {
        let mut h = h(2);
        h.access_data(0, 0, false, 0);
        h.access_data(1, 64, false, 0);
        let s = h.stats();
        assert_eq!(s.l1d.len(), 2);
        assert_eq!(s.l1d[0].accesses, 1);
        assert_eq!(s.l1d[1].accesses, 1);
        assert_eq!(s.l2.accesses, 2);
    }

    #[test]
    fn warming_makes_later_timed_accesses_hit() {
        let mut h = h(2);
        let cfg = *h.config();
        h.warm_data(0x9000, false);
        h.warm_inst(0x40);
        // Both cores hit their L1s after warming, no MSHR involvement.
        for core in 0..2 {
            assert_eq!(h.access_data(core, 0x9000, false, 0), cfg.l1d.latency);
            assert_eq!(h.access_inst(core, 0x40, 0), cfg.l1i.latency);
        }
    }

    #[test]
    fn warming_sends_only_the_miss_stream_to_l2() {
        let mut h = h(1);
        h.warm_data(0x6000, false);
        h.warm_data(0x6008, false); // same line: L1 hit, no L2 traffic
        let s = h.stats();
        assert_eq!(s.l1d[0].accesses, 2);
        assert_eq!(s.l2.accesses, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        Hierarchy::new(&HierarchyConfig {
            cores: 0,
            ..HierarchyConfig::small(1)
        });
    }

    #[test]
    fn shared_with_one_requestor_times_like_private() {
        let cfg = HierarchyConfig::small(2);
        let mut plain = Hierarchy::new(&cfg);
        let mut shared = Hierarchy::new_shared(&cfg, &[0, 0], None);
        let mut now = 0;
        for i in 0..200u64 {
            let addr = (i * 72) % 0x8000;
            let a = plain.access_data((i % 2) as usize, addr, i % 7 == 0, now);
            let b = shared.access_data((i % 2) as usize, addr, i % 7 == 0, now);
            assert_eq!(a, b, "access {i}");
            now += 3;
        }
        plain.invalidate_others(0, 0x40);
        shared.invalidate_others(0, 0x40);
        let (p, s) = (plain.stats(), shared.stats());
        assert_eq!(p.l2, s.l2);
        assert_eq!(p.invalidations, s.invalidations);
        // The shared build additionally records the breakdown.
        assert_eq!(s.by_requestor.len(), 1);
        assert_eq!(s.by_requestor[0].l2, s.l2);
    }

    #[test]
    fn requestor_slices_sum_to_shared_totals() {
        let cfg = HierarchyConfig::small(4);
        let mut h = Hierarchy::new_shared(&cfg, &[0, 0, 1, 1], Some(DramBandwidth::default()));
        let mut now = 0;
        for i in 0..400u64 {
            let core = (i % 4) as usize;
            h.access_data(core, (i * 264) % 0x40_0000, i % 5 == 0, now);
            h.access_inst(core, i % 900, now);
            now += 2;
        }
        h.invalidate_others(0, 0x100);
        h.invalidate_others(2, 0x100);
        let s = h.stats();
        assert_eq!(s.by_requestor.len(), 2);
        let mut sum = RequestorStats::default();
        for r in &s.by_requestor {
            sum.merge(r);
        }
        assert_eq!(sum.l2, s.l2);
        assert_eq!(sum.dram, s.dram);
        assert_eq!(sum.invalidations, s.invalidations);
        // Both programs actually produced traffic.
        assert!(s.by_requestor.iter().all(|r| r.l2.accesses > 0));
    }

    #[test]
    fn requestor_address_spaces_do_not_alias() {
        let cfg = HierarchyConfig::small(2);
        let mut h = Hierarchy::new_shared(&cfg, &[0, 1], None);
        // Program 0 writes 0x3000; program 1 must not see it anywhere.
        h.access_data(0, 0x3000, true, 0);
        assert!(h.l1d_has(0, 0x3000));
        assert!(!h.l1d_has(1, 0x3000));
        let miss = h.access_data(1, 0x3000, false, 1_000);
        assert_eq!(
            miss,
            cfg.l1d.latency + cfg.l2.latency + cfg.dram_latency,
            "same numeric address is a cold miss in the other program"
        );
    }

    #[test]
    fn invalidations_stay_within_a_requestor() {
        let mut h = Hierarchy::new_shared(&HierarchyConfig::small(3), &[0, 0, 1], None);
        for core in 0..3 {
            h.access_data(core, 0x5000, false, 0);
        }
        h.invalidate_others(0, 0x5000);
        assert!(!h.l1d_has(1, 0x5000), "partner core is invalidated");
        assert!(
            h.l1d_has(2, 0x5000),
            "the co-running program keeps its line"
        );
        assert_eq!(h.stats().invalidations, 1);
    }

    #[test]
    fn dram_bandwidth_queues_concurrent_misses() {
        let cfg = HierarchyConfig::small(2);
        let bw = DramBandwidth {
            max_inflight: 1,
            occupancy: 32,
        };
        let mut h = Hierarchy::new_shared(&cfg, &[0, 1], Some(bw));
        // Two cold misses in the same cycle: the second queues behind the
        // first for the single channel slot.
        let a = h.access_data(0, 0x1000, false, 0);
        let b = h.access_data(1, 0x1000, false, 0);
        assert_eq!(a, cfg.l1d.latency + cfg.l2.latency + cfg.dram_latency);
        assert_eq!(b, a + bw.occupancy, "second miss waits one occupancy");
        let s = h.stats();
        assert_eq!(s.dram.transactions, 2);
        assert_eq!(s.dram.queue_cycles, bw.occupancy);
        assert_eq!(s.by_requestor[1].dram.queue_cycles, bw.occupancy);
    }

    #[test]
    fn unlimited_dram_is_the_default_and_adds_no_queueing() {
        let cfg = HierarchyConfig::small(2);
        let mut h = Hierarchy::new_shared(&cfg, &[0, 1], None);
        let a = h.access_data(0, 0x1000, false, 0);
        let b = h.access_data(1, 0x1000, false, 0);
        assert_eq!(a, b, "no bandwidth model: concurrent misses do not queue");
        assert_eq!(h.stats().dram, DramStats::default());
    }

    #[test]
    fn per_core_l1_overrides_change_capacity_only() {
        let cfg = HierarchyConfig::small(2);
        let mut h = Hierarchy::new(&cfg);
        // Core 1 gets a quarter-size L1D.
        h.set_core_l1(
            1,
            None,
            Some(CacheConfig {
                size_bytes: 4 << 10,
                ..cfg.l1d
            }),
        );
        // Both cores stream 8 KiB; the small L1D thrashes where the big
        // one holds the working set.
        for round in 0..2u64 {
            for i in 0..128u64 {
                let addr = i * 64;
                h.access_data(0, addr, false, round * 10_000 + i * 10);
                h.access_data(1, addr, false, round * 10_000 + i * 10);
            }
        }
        let s = h.stats();
        assert!(
            s.l1d[1].misses > s.l1d[0].misses,
            "small L1D must miss more: {:?} vs {:?}",
            s.l1d[1],
            s.l1d[0]
        );
    }

    #[test]
    fn hierarchy_stats_merge_reconstructs_the_machine_view() {
        let cfg = HierarchyConfig::small(2);
        let mut h = Hierarchy::new_shared(&cfg, &[0, 1], None);
        for i in 0..100u64 {
            h.access_data((i % 2) as usize, i * 136, false, i);
        }
        let global = h.stats();
        // Build per-program views and merge them back together.
        let view = |p: usize| HierarchyStats {
            l1i: vec![global.l1i[p]],
            l1d: vec![global.l1d[p]],
            l2: global.by_requestor[p].l2,
            invalidations: global.by_requestor[p].invalidations,
            dram: global.by_requestor[p].dram,
            by_requestor: vec![global.by_requestor[p]],
        };
        let mut merged = view(0);
        merged.merge(&view(1));
        assert_eq!(merged.l2, global.l2);
        assert_eq!(merged.invalidations, global.invalidations);
        assert_eq!(merged.dram, global.dram);
        assert_eq!(merged.l1d.len(), 2);
        assert_eq!(merged.l1d[1], global.l1d[1]);
    }

    #[test]
    #[should_panic(expected = "dense from zero")]
    fn sparse_requestor_ids_are_rejected() {
        Hierarchy::new_shared(&HierarchyConfig::small(2), &[0, 2], None);
    }

    #[test]
    fn warm_state_round_trips_through_bytes() {
        let cfg = HierarchyConfig::small(2);
        let mut warmed = Hierarchy::new(&cfg);
        for i in 0..5_000u64 {
            warmed.warm_data(i * 72 % 0x2_0000, i % 9 == 0);
            warmed.warm_inst(i % 700);
        }
        let mut bytes = Vec::new();
        warmed.save_warm_state(&mut bytes);
        let mut restored = Hierarchy::new(&cfg);
        let mut r = bytes.as_slice();
        restored.load_warm_state(&mut r).unwrap();
        assert!(r.is_empty(), "load consumes exactly what save wrote");
        // Statistics and behaviour are identical from here on.
        assert_eq!(restored.stats().l2, warmed.stats().l2);
        assert_eq!(restored.stats().l1d, warmed.stats().l1d);
        for i in 0..500u64 {
            let addr = i * 104 % 0x2_0000;
            let a = warmed.access_data((i % 2) as usize, addr, false, i * 3);
            let b = restored.access_data((i % 2) as usize, addr, false, i * 3);
            assert_eq!(a, b, "post-restore timing diverged at access {i}");
        }
        assert_eq!(restored.stats().l2, warmed.stats().l2);
    }

    #[test]
    fn warm_state_load_rejects_mismatch_and_truncation() {
        let mut h = Hierarchy::new(&HierarchyConfig::small(2));
        h.warm_data(0x40, false);
        let mut bytes = Vec::new();
        h.save_warm_state(&mut bytes);
        let mut wrong_cores = Hierarchy::new(&HierarchyConfig::small(1));
        assert!(wrong_cores.load_warm_state(&mut bytes.as_slice()).is_err());
        let mut wrong_geometry = Hierarchy::new(&HierarchyConfig::medium(2));
        assert!(wrong_geometry
            .load_warm_state(&mut bytes.as_slice())
            .is_err());
        let mut truncated = &bytes[..bytes.len() / 2];
        assert!(Hierarchy::new(&HierarchyConfig::small(2))
            .load_warm_state(&mut truncated)
            .is_err());
    }
}
