//! # fgstp-mem
//!
//! Memory-hierarchy timing substrate for the Fg-STP reproduction: a generic
//! set-associative cache model ([`Cache`]), a miss-status-holding-register
//! file ([`MshrFile`]) bounding outstanding misses, a per-PC stride
//! prefetcher ([`StridePrefetcher`]) and a two-level hierarchy
//! ([`Hierarchy`]) with per-core L1 instruction/data caches, a shared L2 and
//! a fixed-latency DRAM — the configuration used by 2-core CMP studies of
//! the paper's era.
//!
//! The hierarchy is a *timing* model driven by the committed-path trace: an
//! access returns the number of cycles until its data is available, and
//! updates cache/MSHR state. Bandwidth is modeled through MSHR occupancy
//! (a full MSHR file delays new misses); bus contention is folded into the
//! fixed level latencies, as in the simulators of the period.
//!
//! ```
//! use fgstp_mem::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(&HierarchyConfig::small(1));
//! let cold = h.access_data(0, 0x1000, false, 0);
//! let warm = h.access_data(0, 0x1000, false, cold);
//! assert!(cold > warm);
//! ```

pub mod cache;
mod codec;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod wheel;

pub use cache::{AccessResult, Cache, CacheConfig, CacheStats};
pub use hierarchy::{
    DramBandwidth, DramStats, Hierarchy, HierarchyConfig, HierarchyStats, RequestorStats,
};
pub use mshr::MshrFile;
pub use prefetch::StridePrefetcher;
pub use wheel::EventWheel;
