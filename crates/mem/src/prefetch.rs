//! Per-PC stride prefetcher.
//!
//! Classic reference-prediction-table design: each load PC tracks its last
//! address and observed stride with a two-bit confidence counter. Once
//! confident, the prefetcher suggests the next `degree` strided lines.

/// One reference-prediction-table entry.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// A per-PC stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    degree: usize,
    issued: u64,
}

impl StridePrefetcher {
    /// Confidence threshold at which prefetches are issued.
    const CONFIDENT: u8 = 2;
    /// Saturation value of the confidence counter.
    const MAX_CONF: u8 = 3;

    /// Creates a prefetcher with `entries` table slots issuing `degree`
    /// prefetches per trigger.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize, degree: usize) -> StridePrefetcher {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "table size must be a power of two"
        );
        StridePrefetcher {
            table: vec![Entry::default(); entries],
            degree,
            issued: 0,
        }
    }

    /// Number of prefetch addresses suggested so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a load at `pc` accessing `addr`; returns the addresses to
    /// prefetch (empty while training).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let idx = (pc as usize) & (self.table.len() - 1);
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = Entry {
                pc,
                valid: true,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(Self::MAX_CONF);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = stride;
            }
        }
        e.last_addr = addr;
        if e.confidence >= Self::CONFIDENT && e.stride != 0 {
            let stride = e.stride;
            self.issued += self.degree as u64;
            (1..=self.degree as i64)
                .map(|i| addr.wrapping_add((stride * i) as u64))
                .collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_detected_after_training() {
        let mut p = StridePrefetcher::new(16, 2);
        assert!(p.observe(0x10, 1000).is_empty()); // allocate
        assert!(p.observe(0x10, 1064).is_empty()); // learn stride 64
        assert!(p.observe(0x10, 1128).is_empty()); // confidence 1
        let pf = p.observe(0x10, 1192); // confidence 2 -> issue
        assert_eq!(pf, vec![1256, 1320]);
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn irregular_access_never_prefetches() {
        let mut p = StridePrefetcher::new(16, 2);
        for addr in [100, 7000, 320, 99, 45000, 6, 800] {
            assert!(p.observe(0x20, addr).is_empty());
        }
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(16, 1);
        p.observe(0x30, 4096);
        p.observe(0x30, 4032);
        p.observe(0x30, 3968);
        let pf = p.observe(0x30, 3904);
        assert_eq!(pf, vec![3840]);
    }

    #[test]
    fn conflicting_pcs_evict_each_other() {
        let mut p = StridePrefetcher::new(1, 1);
        p.observe(0x1, 100);
        p.observe(0x2, 200); // evicts pc 0x1
        assert!(p.observe(0x1, 164).is_empty(), "entry was re-allocated");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(16, 1);
        p.observe(0x40, 0);
        for i in 1..=3 {
            p.observe(0x40, i * 8);
        }
        // Now confident at stride 8; break the pattern twice. The first
        // break may still prefetch at the stale stride, the second must not.
        let _ = p.observe(0x40, 1000);
        assert!(p.observe(0x40, 5000).is_empty());
    }
}
