//! Minimal little-endian byte codec helpers for the cache warm-state
//! snapshots (see [`crate::Cache::save_state`]).
//!
//! Deliberately dumb fixed-width scalars, mirroring the helpers in
//! `fgstp-bpred`: versioning, checksumming and corruption fallback belong
//! to the snapshot container in `fgstp-tracefile`. These only have to be
//! exact and to reject any shape mismatch with an `Err`, never a panic.

/// Appends `v` as 8 little-endian bytes.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads 8 little-endian bytes off the front of `r`.
pub(crate) fn take_u64(r: &mut &[u8]) -> Result<u64, String> {
    let Some((head, rest)) = r.split_first_chunk::<8>() else {
        return Err("snapshot payload truncated (u64)".to_owned());
    };
    *r = rest;
    Ok(u64::from_le_bytes(*head))
}

/// Reads one byte off the front of `r`.
pub(crate) fn take_u8(r: &mut &[u8]) -> Result<u8, String> {
    let Some((&head, rest)) = r.split_first() else {
        return Err("snapshot payload truncated (u8)".to_owned());
    };
    *r = rest;
    Ok(head)
}
