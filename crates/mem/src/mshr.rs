//! Miss-status holding registers: bound on outstanding misses.
//!
//! Each cache level owns an [`MshrFile`]. A miss to a line already in
//! flight *merges* (the requester simply waits for the existing fill); a
//! miss when all entries are busy must wait for the earliest entry to
//! retire before its own miss can even start. This is how limited memory-
//! level parallelism is modeled throughout the workspace.

/// A file of miss-status holding registers for one cache.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// (line address, cycle at which the fill completes)
    entries: Vec<(u64, u64)>,
    /// Cumulative cycles requests spent waiting for a free entry.
    stall_cycles: u64,
    /// Number of merged (secondary) misses.
    merges: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: Vec::new(),
            stall_cycles: 0,
            merges: 0,
        }
    }

    /// Number of entries still in flight at `now`.
    pub fn occupancy(&self, now: u64) -> usize {
        self.entries.iter().filter(|&&(_, done)| done > now).count()
    }

    /// Total cycles requests spent stalled on a full file.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Number of secondary misses merged into an in-flight entry.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    fn retire_done(&mut self, now: u64) {
        self.entries.retain(|&(_, done)| done > now);
    }

    /// Completion cycle of an in-flight fill of `line_addr`, if one is
    /// still outstanding at `now`. An access that hits in the cache while
    /// its line is still being filled must wait for the fill, not the hit
    /// latency.
    pub fn pending(&self, line_addr: u64, now: u64) -> Option<u64> {
        self.entries
            .iter()
            .find(|&&(l, done)| l == line_addr && done > now)
            .map(|&(_, done)| done)
    }

    /// Requests a fill of `line_addr` issued at `now` that takes
    /// `fill_latency` cycles once started. Returns the cycle at which the
    /// data is available, accounting for merging and for waiting on a free
    /// entry.
    pub fn request(&mut self, line_addr: u64, now: u64, fill_latency: u64) -> u64 {
        self.retire_done(now);
        if let Some(&(_, done)) = self.entries.iter().find(|&&(l, _)| l == line_addr) {
            self.merges += 1;
            return done;
        }
        let start = if self.entries.len() < self.capacity {
            now
        } else {
            // Wait for the earliest in-flight fill to retire.
            let earliest = self
                .entries
                .iter()
                .map(|&(_, done)| done)
                .min()
                .expect("file is full, so non-empty");
            self.entries.retain(|&(_, done)| done > earliest);
            self.stall_cycles += earliest - now;
            earliest
        };
        let done = start + fill_latency;
        self.entries.push((line_addr, done));
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_overlap() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.request(0x000, 0, 100), 100);
        assert_eq!(m.request(0x040, 0, 100), 100);
        assert_eq!(m.occupancy(50), 2);
        assert_eq!(m.occupancy(100), 0);
    }

    #[test]
    fn same_line_merges() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.request(0x40, 0, 100), 100);
        assert_eq!(
            m.request(0x40, 10, 100),
            100,
            "secondary miss waits for first"
        );
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_serializes_new_misses() {
        let mut m = MshrFile::new(2);
        m.request(0x000, 0, 100);
        m.request(0x040, 0, 100);
        // Third distinct miss at cycle 10 must wait until cycle 100.
        assert_eq!(m.request(0x080, 10, 100), 200);
        assert_eq!(m.stall_cycles(), 90);
    }

    #[test]
    fn retired_entries_free_slots() {
        let mut m = MshrFile::new(1);
        m.request(0x000, 0, 10);
        // At cycle 20 the entry has retired: no stall.
        assert_eq!(m.request(0x040, 20, 10), 30);
        assert_eq!(m.stall_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }
}
