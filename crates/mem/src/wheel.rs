//! A hierarchical event wheel for completion scheduling.
//!
//! The timing cores schedule every execution completion (ALU results,
//! cache hits, DRAM misses) for a known future cycle. A binary heap makes
//! every push and pop O(log n); this wheel makes them O(1) amortized: a
//! power-of-two ring of per-cycle buckets covers the near future (all
//! cache latencies land here), and the rare event beyond the window
//! (DRAM storms, violation penalties) parks in an overflow list that is
//! migrated into the ring every half-window.
//!
//! Draining preserves the heap's order exactly: events fire in
//! `(cycle, payload)` lexicographic order, which the cores rely on —
//! same-cycle completions must be processed in ascending global sequence
//! order because completion side effects (communication-fabric sends)
//! are bandwidth-contended and therefore order-sensitive.

/// Ring size in cycles. Must be a power of two and larger than the
/// longest common completion latency (DRAM round trips included) so the
/// overflow list stays cold.
const WINDOW: u64 = 512;

/// Future events indexed by due cycle, drained once per cycle.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// `buckets[c & mask]` holds the events due at cycle `c` for every
    /// `c` in the current window `(cur, cur + WINDOW)`.
    buckets: Vec<Vec<(u64, u64)>>,
    mask: u64,
    /// Events scheduled beyond the window, migrated in every half-window.
    overflow: Vec<(u64, u64)>,
    /// The last cycle that was drained.
    cur: u64,
    pending: usize,
}

impl Default for EventWheel {
    fn default() -> EventWheel {
        EventWheel::new()
    }
}

impl EventWheel {
    /// Creates an empty wheel starting at cycle 0.
    pub fn new() -> EventWheel {
        EventWheel {
            buckets: vec![Vec::new(); WINDOW as usize],
            mask: WINDOW - 1,
            overflow: Vec::new(),
            cur: 0,
            pending: 0,
        }
    }

    /// Number of scheduled events not yet drained.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedules `payload` to fire at `cycle`, which must be strictly in
    /// the future of the last drained cycle.
    pub fn push(&mut self, cycle: u64, payload: u64) {
        debug_assert!(
            cycle > self.cur,
            "event at {cycle} is not after {}",
            self.cur
        );
        self.pending += 1;
        if cycle - self.cur <= self.mask {
            self.buckets[(cycle & self.mask) as usize].push((cycle, payload));
        } else {
            self.overflow.push((cycle, payload));
        }
    }

    /// Appends every event due at or before `now` to `out`, in
    /// `(cycle, payload)` ascending order, and advances the wheel.
    pub fn drain_due_into(&mut self, now: u64, out: &mut Vec<(u64, u64)>) {
        if self.pending == 0 {
            self.cur = self.cur.max(now);
            return;
        }
        while self.cur < now {
            self.cur += 1;
            let c = self.cur;
            // Half-window migration: an event parked in the overflow is
            // always moved into the ring strictly before it falls due.
            if !self.overflow.is_empty() && c & (self.mask >> 1) == 0 {
                let mut i = 0;
                while i < self.overflow.len() {
                    let (t, p) = self.overflow[i];
                    debug_assert!(t > c, "overflow event {t} missed its migration");
                    if t - c <= self.mask {
                        self.buckets[(t & self.mask) as usize].push((t, p));
                        self.overflow.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            let bucket = &mut self.buckets[(c & self.mask) as usize];
            if !bucket.is_empty() {
                debug_assert!(bucket.iter().all(|&(t, _)| t == c));
                // Same-cycle events sort by payload: the lexicographic
                // order a `BinaryHeap<Reverse<(cycle, payload)>>` pops in.
                if bucket.len() > 1 {
                    bucket.sort_unstable();
                }
                self.pending -= bucket.len();
                out.append(bucket);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Drives a wheel and a reference heap through the same schedule,
    /// asserting identical drain order cycle by cycle.
    fn check_against_heap(events: &[(u64, u64, u64)], horizon: u64) {
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut out = Vec::new();
        let mut next = 0;
        for now in 0..horizon {
            out.clear();
            wheel.drain_due_into(now, &mut out);
            let mut expect = Vec::new();
            while let Some(&Reverse((c, p))) = heap.peek() {
                if c > now {
                    break;
                }
                heap.pop();
                expect.push((c, p));
            }
            assert_eq!(out, expect, "divergence at cycle {now}");
            while next < events.len() {
                let (at, cycle, payload) = events[next];
                if at != now {
                    break;
                }
                next += 1;
                wheel.push(cycle, payload);
                heap.push(Reverse((cycle, payload)));
            }
        }
        assert!(wheel.is_empty(), "{} events never fired", wheel.len());
        assert!(heap.is_empty());
    }

    #[test]
    fn drains_in_heap_order_with_random_schedule() {
        // Deterministic xorshift-style schedule mixing short latencies,
        // same-cycle collisions and far-future (overflow) events.
        let mut s: u64 = 0x9e3779b97f4a7c15;
        let mut events = Vec::new();
        let mut payload = 0;
        for at in 0..4000u64 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            for _ in 0..(s % 3) {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let delta = 1 + s % 700; // spills past the 512-cycle window
                events.push((at, at + delta, payload));
                payload += 1;
            }
        }
        check_against_heap(&events, 6000);
    }

    #[test]
    fn same_cycle_events_fire_in_payload_order() {
        // Pushed out of payload order, across different push cycles.
        let events = [(0, 10, 7), (0, 10, 3), (1, 10, 5), (2, 10, 1)];
        let mut wheel = EventWheel::new();
        let mut out = Vec::new();
        for now in 0..=10 {
            for &(at, cycle, payload) in &events {
                if at == now {
                    // Interleave pushes with drains like the core loop does.
                    wheel.push(cycle, payload);
                }
            }
            out.clear();
            wheel.drain_due_into(now, &mut out);
            if now < 10 {
                assert!(out.is_empty());
            }
        }
        assert_eq!(out, vec![(10, 1), (10, 3), (10, 5), (10, 7)]);
    }

    #[test]
    fn far_future_events_survive_the_overflow_path() {
        let mut wheel = EventWheel::new();
        wheel.push(5 * WINDOW + 3, 42);
        assert_eq!(wheel.len(), 1);
        let mut out = Vec::new();
        for now in 0..=5 * WINDOW + 3 {
            out.clear();
            wheel.drain_due_into(now, &mut out);
            if now == 5 * WINDOW + 3 {
                assert_eq!(out, vec![(5 * WINDOW + 3, 42)]);
            } else {
                assert!(out.is_empty(), "fired early at {now}");
            }
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn empty_wheel_fast_forwards() {
        let mut wheel = EventWheel::new();
        let mut out = Vec::new();
        wheel.drain_due_into(10_000, &mut out);
        assert!(out.is_empty());
        // Events after a fast-forward still land on the right cycle.
        wheel.push(10_001, 9);
        wheel.drain_due_into(10_001, &mut out);
        assert_eq!(out, vec![(10_001, 9)]);
    }
}
