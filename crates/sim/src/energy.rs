//! Activity-based energy accounting.
//!
//! The paper's opening motivation is power and complexity; this module
//! provides the corresponding accounting for the three machine models. It
//! is an *activity* model in the McPAT spirit: every pipeline and memory
//! event costs a fixed per-event energy, plus per-core static power per
//! cycle. The per-event weights ([`EnergyModel`]) are relative units
//! chosen to reflect typical published ratios (a DRAM access ~two orders
//! of magnitude above an ALU operation, rename ~twice a regfile read, …) —
//! they are documented modeling constants, not calibrated silicon numbers,
//! and every experiment reports *relative* energy only.
//!
//! What differentiates the machines:
//!
//! * **Core Fusion** pays the collective fetch and remote rename energy on
//!   *every* instruction and keeps two cores' structures active;
//! * **Fg-STP** pays queue transfers per communication, duplicated
//!   fetch/decode energy per replica, and two active cores;
//! * the **single core** leaves the partner core idle (static power only).

use fgstp_ooo::RunResult;

use crate::presets::MachineKind;
use crate::runner::MachineRun;

/// Per-event energy weights (relative units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Fetching one instruction (I-cache read amortized + buffers).
    pub fetch: f64,
    /// Decoding and renaming one instruction.
    pub rename: f64,
    /// Extra per-instruction cost of fused collective fetch/remote rename.
    pub fusion_frontend_extra: f64,
    /// Issue-queue wakeup/select per issued instruction.
    pub issue: f64,
    /// Executing one instruction (FU average).
    pub execute: f64,
    /// Register-file traffic per instruction (reads + write).
    pub regfile: f64,
    /// Committing one instruction.
    pub commit: f64,
    /// One L1 (I or D) access.
    pub l1_access: f64,
    /// One L2 access.
    pub l2_access: f64,
    /// One DRAM access.
    pub dram_access: f64,
    /// One branch-predictor access.
    pub bpred: f64,
    /// Transferring one value through an inter-core queue.
    pub queue_transfer: f64,
    /// Static energy per *active* core per cycle.
    pub static_active: f64,
    /// Static energy per *idle* (power-gated) core per cycle.
    pub static_idle: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            fetch: 1.0,
            rename: 1.2,
            fusion_frontend_extra: 1.5,
            issue: 1.5,
            execute: 2.0,
            regfile: 1.0,
            commit: 0.5,
            l1_access: 2.0,
            l2_access: 12.0,
            dram_access: 160.0,
            bpred: 0.4,
            queue_transfer: 2.5,
            static_active: 3.0,
            static_idle: 0.3,
        }
    }
}

/// Energy breakdown of one run (relative units).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Frontend: fetch + rename (+ fusion extras) + branch prediction.
    pub frontend: f64,
    /// Backend: issue + execute + regfile + commit.
    pub backend: f64,
    /// Memory hierarchy: L1 + L2 + DRAM.
    pub memory: f64,
    /// Inter-core communication queues.
    pub communication: f64,
    /// Static (leakage/clock) energy of active and idle cores.
    pub static_energy: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.frontend + self.backend + self.memory + self.communication + self.static_energy
    }

    /// Energy per committed instruction.
    pub fn per_instruction(&self, committed: u64) -> f64 {
        if committed == 0 {
            0.0
        } else {
            self.total() / committed as f64
        }
    }
}

fn dynamic_core_energy(m: &EnergyModel, result: &RunResult, fused_frontend: bool) -> (f64, f64) {
    let mut frontend = 0.0;
    let mut backend = 0.0;
    for c in &result.cores {
        let fetched = c.fetched as f64;
        let issued = c.issued as f64;
        let committed = (c.committed + c.replica_committed) as f64;
        frontend += fetched * (m.fetch + m.rename);
        if fused_frontend {
            frontend += fetched * m.fusion_frontend_extra;
        }
        backend += issued * (m.issue + m.execute + m.regfile) + committed * m.commit;
    }
    let (branches, _) = result.branches;
    frontend += branches as f64 * m.bpred;
    (frontend, backend)
}

fn memory_energy(m: &EnergyModel, result: &RunResult) -> f64 {
    let mem = &result.mem;
    let l1: u64 = mem
        .l1i
        .iter()
        .chain(mem.l1d.iter())
        .map(|c| c.accesses + c.prefetch_fills)
        .sum();
    let l2 = mem.l2.accesses + mem.l2.prefetch_fills;
    let dram = mem.l2.misses;
    l1 as f64 * m.l1_access + l2 as f64 * m.l2_access + dram as f64 * m.dram_access
}

/// Computes the energy breakdown of one machine run on the CMP (unused
/// partner cores of a single-core run idle, power-gated).
pub fn energy_of(m: &EnergyModel, run: &MachineRun) -> EnergyBreakdown {
    let result = &run.result;
    let fused = matches!(run.kind, MachineKind::FusedSmall | MachineKind::FusedMedium);
    let (frontend, backend) = dynamic_core_energy(m, result, fused);
    let memory = memory_energy(m, result);
    let communication = run
        .fgstp
        .as_ref()
        .map(|s| s.comm_total().sends as f64 * m.queue_transfer)
        .unwrap_or(0.0);
    // Active cores: two for fused (two merged cores), every partitioned
    // core for Fg-STP, one for the baselines; unused CMP cores idle
    // power-gated.
    let active_cores = if fused {
        2.0
    } else if run.fgstp.is_some() {
        result.cores.len() as f64
    } else {
        1.0
    };
    let idle_cores = (2.0 - active_cores).max(0.0);
    let static_energy =
        result.cycles as f64 * (active_cores * m.static_active + idle_cores * m.static_idle);
    EnergyBreakdown {
        frontend,
        backend,
        memory,
        communication,
        static_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_on, trace_workload};
    use fgstp_workloads::{by_name, Scale};

    fn runs(name: &str) -> (MachineRun, MachineRun, MachineRun) {
        let w = by_name(name, Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        (
            run_on(MachineKind::SingleSmall, t.insts()),
            run_on(MachineKind::FusedSmall, t.insts()),
            run_on(MachineKind::FgstpSmall, t.insts()),
        )
    }

    #[test]
    fn totals_are_positive_and_sum_components() {
        let (single, fused, fg) = runs("hmmer_dp");
        let m = EnergyModel::default();
        for run in [&single, &fused, &fg] {
            let e = energy_of(&m, run);
            assert!(e.total() > 0.0);
            let sum = e.frontend + e.backend + e.memory + e.communication + e.static_energy;
            assert!((e.total() - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn coupled_machines_spend_more_energy_than_one_core() {
        let (single, fused, fg) = runs("hmmer_dp");
        let m = EnergyModel::default();
        let e_single = energy_of(&m, &single).total();
        assert!(
            energy_of(&m, &fused).total() > e_single,
            "fusion is not free"
        );
        assert!(
            energy_of(&m, &fg).total() > e_single,
            "coupling is not free"
        );
    }

    #[test]
    fn only_fgstp_spends_communication_energy() {
        let (single, fused, fg) = runs("perl_hash");
        let m = EnergyModel::default();
        assert_eq!(energy_of(&m, &single).communication, 0.0);
        assert_eq!(energy_of(&m, &fused).communication, 0.0);
        assert!(energy_of(&m, &fg).communication > 0.0);
    }

    #[test]
    fn fusion_pays_frontend_extra_per_instruction() {
        let (single, fused, _) = runs("hmmer_dp");
        let m = EnergyModel::default();
        let f_single = energy_of(&m, &single).frontend / single.result.committed as f64;
        let f_fused = energy_of(&m, &fused).frontend / fused.result.committed as f64;
        assert!(
            f_fused > f_single * 1.3,
            "fused frontend EPI {f_fused} should clearly exceed single {f_single}"
        );
    }

    #[test]
    fn epi_is_total_over_committed() {
        let (single, _, _) = runs("hmmer_dp");
        let m = EnergyModel::default();
        let e = energy_of(&m, &single);
        let epi = e.per_instruction(single.result.committed);
        assert!((epi * single.result.committed as f64 - e.total()).abs() < 1e-6);
        assert_eq!(EnergyBreakdown::default().per_instruction(0), 0.0);
    }
}
