//! `fgstpsim` — command-line driver for the Fg-STP reproduction.
//!
//! ```sh
//! fgstpsim list
//! fgstpsim run mcf_pointer fgstp-small test
//! fgstpsim compare hmmer_dp
//! fgstpsim pipeview perl_hash 0..24
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fgstp_sim::cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
