//! # fgstp-sim
//!
//! Simulation driver for the Fg-STP reproduction: the paper's machine
//! presets ([`MachineKind`]), a run driver that takes a workload through
//! any machine model ([`run_on`], [`run_suite`]), and plain-text/CSV table
//! rendering for the experiment harness ([`report::Table`]).
//!
//! ```no_run
//! use fgstp_sim::{run_suite, MachineKind, Scale};
//!
//! let results = run_suite(
//!     Scale::Test,
//!     &[MachineKind::SingleSmall, MachineKind::FgstpSmall],
//! );
//! for bench in &results {
//!     println!("{}: {} runs", bench.name, bench.runs.len());
//! }
//! ```

pub mod cli;
pub mod energy;
pub mod presets;
pub mod profile;
pub mod report;
pub mod runner;

pub use fgstp_workloads::{Scale, SuiteClass, Workload};
pub use presets::MachineKind;
pub use report::Table;
pub use runner::{geomean, run_on, run_suite, BenchResult, MachineRun};
