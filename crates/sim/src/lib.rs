//! # fgstp-sim
//!
//! Simulation driver for the Fg-STP reproduction. The primary entry point
//! is the [`Session`] builder: it owns workload tracing, an on-disk trace
//! cache, and a fixed-size worker pool that runs the (workload, machine)
//! job matrix in parallel while keeping results in deterministic request
//! order.
//!
//! ```no_run
//! use fgstp_sim::{MachineKind, Scale, Session};
//!
//! let session = Session::new()
//!     .scale(Scale::Test)
//!     .machines([MachineKind::SingleSmall, MachineKind::FgstpSmall])
//!     .threads(4);
//! for bench in session.run_suite() {
//!     println!("{}: {} runs", bench.name, bench.runs.len());
//! }
//! let stats = session.cache_stats();
//! println!("trace cache: {} hits / {} misses", stats.hits, stats.misses);
//! ```
//!
//! Finer-grained plans restrict the matrix before executing:
//!
//! ```no_run
//! use fgstp_sim::{MachineKind, Session};
//!
//! let results = Session::new()
//!     .machines(MachineKind::SMALL_CMP)
//!     .plan()
//!     .workload_names(&["gcc_expr", "mcf_pointer"])
//!     .execute();
//! # let _ = results;
//! ```
//!
//! The [`ExperimentSpec`] type names a whole experiment (workloads ×
//! machines × scale × sampling × telemetry) as one validated,
//! JSON-serializable value, and converts to a configured session; it is
//! the shared currency of the experiment binaries, the `fgstpsim` CLI,
//! and the `fgstpd` batch daemon:
//!
//! ```no_run
//! use fgstp_sim::ExperimentSpec;
//!
//! let spec = ExperimentSpec::from_args(&[
//!     "test",
//!     "--workloads=perl_hash,hmmer_dp",
//!     "--machines=small-cmp",
//! ]).unwrap();
//! let results = spec.run().unwrap();
//! # let _ = results;
//! ```
//!
//! The per-trace primitives ([`run_on`], [`runner::trace_workload`]) and
//! the historical [`run_suite`] free function remain available; the latter
//! is a thin shim over a default `Session`. Table rendering for the
//! experiment harness lives in [`report`].

pub mod cli;
pub mod energy;
pub mod presets;
pub mod profile;
pub mod report;
pub mod runner;
pub mod session;
pub mod spec;

pub use fgstp_sampling::{geomean_estimate, Estimate, SampleConfig, SampledRun};
pub use fgstp_telemetry::{write_chrome_trace, CpiStack, Episode, StallCategory};
pub use fgstp_workloads::{Scale, SuiteClass, Workload};
pub use presets::MachineKind;
pub use report::{cpi_stack_table, speedup_table, SpeedupSummary, Table};
pub use runner::{
    geomean, run_on, run_on_corun, run_on_instrumented, run_on_instrumented_with_cores,
    run_on_sampled, run_on_sampled_stream, run_on_with_cores, run_suite, BenchResult, CoRunInfo,
    MachineRun, WindowPool,
};
pub use session::{CacheStats, RunPlan, Session, SnapshotStats, TraceStream, TraceStreamIter};
pub use spec::{CoRunProgramSpec, CoRunSpec, ExperimentSpec, SpecError, SpecErrorKind};
