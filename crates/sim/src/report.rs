//! Plain-text and CSV table rendering for the experiment harness.

use std::fmt;

/// A simple column-aligned table.
///
/// The first column is left-aligned (names), remaining columns are
/// right-aligned (numbers), matching the layout of the paper's tables.
///
/// ```
/// use fgstp_sim::Table;
///
/// let mut t = Table::new(["bench", "ipc"]);
/// t.row(["mcf", "0.41"]);
/// assert!(t.to_string().contains("mcf"));
/// assert_eq!(t.to_csv(), "bench,ipc\nmcf,0.41\n");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = widths[0])?;
                } else {
                    write!(f, "  {:>width$}", cell, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimal places (the house style for tables).
pub fn num(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x", "1"]).row(["y", "2"]);
        assert_eq!(t.to_csv(), "a,b\nx,1\ny,2\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(["bench", "cycles"]);
        t.row(["a_very_long_name", "10"]);
        t.row(["x", "123456"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
        // Numbers right-align: the short number ends at the same column.
        assert!(lines[2].ends_with("10"));
        assert!(lines[3].ends_with("123456"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
