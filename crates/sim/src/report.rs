//! Plain-text and CSV table rendering for the experiment harness.

use std::fmt;

use fgstp_telemetry::StallCategory;

use crate::presets::MachineKind;
use crate::runner::{geomean, BenchResult};

/// A simple column-aligned table.
///
/// The first column is left-aligned (names), remaining columns are
/// right-aligned (numbers), matching the layout of the paper's tables.
///
/// ```
/// use fgstp_sim::Table;
///
/// let mut t = Table::new(["bench", "ipc"]);
/// t.row(["mcf", "0.41"]);
/// assert!(t.to_string().contains("mcf"));
/// assert_eq!(t.to_csv(), "bench,ipc\nmcf,0.41\n");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = widths[0])?;
                } else {
                    write!(f, "  {:>width$}", cell, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// The headline speedup comparison rendered as a table: per-benchmark
/// speedups of the fused and Fg-STP machines over the single core, a
/// geomean row, and the Fg-STP-over-fusion ratio.
#[derive(Debug, Clone)]
pub struct SpeedupSummary {
    /// The rendered table (benchmark, insts, fused, fgstp, fgstp/fused).
    pub table: Table,
    /// Geomean speedup of the fused machine over the single core.
    pub fused_geomean: f64,
    /// Geomean speedup of the Fg-STP machine over the single core.
    pub fgstp_geomean: f64,
    /// Benchmarks skipped because a requested machine was missing from
    /// their result set.
    pub skipped: Vec<&'static str>,
    /// Benchmarks that produced no runs at all (their trace failed), with
    /// the reported reason.
    pub failed: Vec<(&'static str, String)>,
}

impl SpeedupSummary {
    /// Fg-STP speedup over Core Fusion, as a geomean ratio.
    pub fn fgstp_over_fused(&self) -> f64 {
        self.fgstp_geomean / self.fused_geomean
    }
}

/// Builds the E1/E2-style speedup table from suite results.
///
/// `kinds` is the `[single, fused, fgstp]` triple the results were run
/// on. Benchmarks whose result set is missing one of the three machines
/// are skipped (and recorded in [`SpeedupSummary::skipped`]) instead of
/// panicking, so partial machine sets degrade gracefully.
pub fn speedup_table(results: &[BenchResult], kinds: [MachineKind; 3]) -> SpeedupSummary {
    let [single, fused_kind, fgstp_kind] = kinds;
    let mut table = Table::new(["benchmark", "insts", "fused", "fgstp", "fgstp/fused"]);
    let mut fused = Vec::new();
    let mut fgstp = Vec::new();
    let mut skipped = Vec::new();
    let mut failed = Vec::new();
    for b in results {
        if let Some(e) = &b.error {
            failed.push((b.name, e.clone()));
            continue;
        }
        let (Some(s_fused), Some(s_fgstp)) = (
            b.try_speedup(fused_kind, single),
            b.try_speedup(fgstp_kind, single),
        ) else {
            skipped.push(b.name);
            continue;
        };
        fused.push(s_fused);
        fgstp.push(s_fgstp);
        table.row([
            b.name.to_owned(),
            b.committed.to_string(),
            format!("{s_fused:.3}"),
            format!("{s_fgstp:.3}"),
            format!("{:.3}", s_fgstp / s_fused),
        ]);
    }
    let (gf, gs) = (geomean(&fused), geomean(&fgstp));
    table.row([
        "GEOMEAN".to_owned(),
        String::new(),
        format!("{gf:.3}"),
        format!("{gs:.3}"),
        format!("{:.3}", gs / gf),
    ]);
    SpeedupSummary {
        table,
        fused_geomean: gf,
        fgstp_geomean: gs,
        skipped,
        failed,
    }
}

/// Builds a per-benchmark CPI-stack table for machine `kind` from
/// telemetry-enabled suite results (see [`crate::Session::telemetry`]).
///
/// Columns: benchmark, total CPI, the committing base component, then one
/// column per [`StallCategory`] — all in aggregate core-cycles per
/// committed instruction, so `base + Σ categories = cpi` on every row
/// (for the 2-core Fg-STP machine the aggregate counts both cores'
/// cycles). Results without an instrumented run of `kind` are omitted.
pub fn cpi_stack_table(results: &[BenchResult], kind: MachineKind) -> Table {
    let mut headers = vec!["benchmark", "cpi", "base"];
    headers.extend(StallCategory::ALL.iter().map(|c| c.label()));
    let mut table = Table::new(headers);
    for b in results {
        let Some(stack) = b.run_of(kind).and_then(|r| r.cpi.as_ref()) else {
            continue;
        };
        let base = if stack.committed == 0 {
            0.0
        } else {
            stack.base_cycles as f64 / stack.committed as f64
        };
        let mut row = vec![b.name.to_owned(), num(stack.cpi(), 3), num(base, 3)];
        row.extend(
            StallCategory::ALL
                .iter()
                .map(|&c| num(stack.category_cpi(c), 3)),
        );
        table.row(row);
    }
    table
}

/// Formats a float with `prec` decimal places (the house style for tables).
pub fn num(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x", "1"]).row(["y", "2"]);
        assert_eq!(t.to_csv(), "a,b\nx,1\ny,2\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(["bench", "cycles"]);
        t.row(["a_very_long_name", "10"]);
        t.row(["x", "123456"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
        // Numbers right-align: the short number ends at the same column.
        assert!(lines[2].ends_with("10"));
        assert!(lines[3].ends_with("123456"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn speedup_table_skips_partial_results_instead_of_panicking() {
        use crate::runner::{run_on, trace_workload};
        use fgstp_workloads::{by_name, Scale};

        let full = by_name("gcc_expr", Scale::Test).unwrap();
        let full_trace = trace_workload(&full, Scale::Test);
        let partial = by_name("mcf_pointer", Scale::Test).unwrap();
        let partial_trace = trace_workload(&partial, Scale::Test);
        let results = vec![
            BenchResult {
                name: full.name,
                committed: full_trace.len() as u64,
                runs: MachineKind::SMALL_CMP
                    .iter()
                    .map(|&k| run_on(k, full_trace.insts()))
                    .collect(),
                error: None,
            },
            BenchResult {
                name: partial.name,
                committed: partial_trace.len() as u64,
                runs: vec![run_on(MachineKind::SingleSmall, partial_trace.insts())],
                error: None,
            },
        ];
        let summary = speedup_table(&results, MachineKind::SMALL_CMP);
        assert_eq!(summary.skipped, vec!["mcf_pointer"]);
        // One data row plus the geomean row.
        assert_eq!(summary.table.len(), 2);
        assert!(summary.fused_geomean > 0.0);
        assert!(summary.fgstp_over_fused() > 0.0);
        assert!(summary.failed.is_empty());
    }

    #[test]
    fn speedup_table_reports_failed_workloads() {
        let results = vec![BenchResult {
            name: "broken",
            committed: 0,
            runs: Vec::new(),
            error: Some("workload broken failed to trace: budget".to_owned()),
        }];
        let summary = speedup_table(&results, MachineKind::SMALL_CMP);
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].0, "broken");
        assert!(summary.failed[0].1.contains("budget"));
        assert!(summary.skipped.is_empty(), "failed is not skipped");
        assert_eq!(summary.table.len(), 1, "only the geomean row");
    }

    #[test]
    fn cpi_stack_table_rows_reconcile_with_cpi() {
        use crate::runner::{run_on_instrumented, trace_workload};
        use fgstp_workloads::{by_name, Scale};

        let w = by_name("gcc_expr", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let results = vec![BenchResult {
            name: w.name,
            committed: t.len() as u64,
            runs: vec![run_on_instrumented(MachineKind::FgstpSmall, t.insts(), false).0],
            error: None,
        }];
        let table = cpi_stack_table(&results, MachineKind::FgstpSmall);
        assert_eq!(table.len(), 1);
        let csv = table.to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(header.len(), 2 + 1 + StallCategory::COUNT);
        let cells: Vec<&str> = lines.next().unwrap().split(',').collect();
        let cpi: f64 = cells[1].parse().unwrap();
        let component_sum: f64 = cells[2..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
        // base + every category ≈ cpi (up to the 3-decimal rendering).
        assert!(
            (cpi - component_sum).abs() < 0.01 * header.len() as f64,
            "cpi {cpi} vs sum {component_sum}"
        );
        // Uninstrumented results produce no rows.
        assert!(cpi_stack_table(&results, MachineKind::SingleSmall).is_empty());
    }
}
