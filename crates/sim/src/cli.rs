//! Command-line driver logic (the `fgstpsim` binary is a thin wrapper).
//!
//! Subcommands:
//!
//! * `list` — the workload suite;
//! * `run <workload> [machine] [scale] [--cores N] [--cpi-stack]
//!   [--chrome-trace <path>]` — one run with full statistics; `--cores`
//!   overrides the Fg-STP core count, `--cpi-stack` appends the cycle
//!   accounting breakdown and `--chrome-trace` writes a Chrome
//!   `trace_event` JSON timeline loadable in Perfetto / `chrome://tracing`;
//! * `compare <workload> [scale]` — the paper's six machines side by side;
//! * `pipeview <workload> [first..last]` — render the pipeline timeline of
//!   a range of instructions on the small core.
//!
//! All functions return the output as a `String` so the logic is testable
//! without capturing stdout (the only side effect is the `--chrome-trace`
//! output file).

use std::fmt::Write as _;

use fgstp_ooo::{run_single_recorded, PipeRecorder};
use fgstp_sampling::SampleConfig;
use fgstp_telemetry::{write_chrome_trace, StallCategory};
use fgstp_workloads::{by_name, suite, Scale};

use crate::presets::MachineKind;
use crate::report::Table;
use crate::runner::{run_on_instrumented_with_cores, run_on_with_cores};
use crate::session::Session;

/// Error for unknown CLI inputs, carrying a usage hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn parse_scale(s: Option<&str>) -> Result<Scale, CliError> {
    match s {
        None | Some("test") => Ok(Scale::Test),
        Some("small") => Ok(Scale::Small),
        Some("reference") => Ok(Scale::Reference),
        Some(other) => Err(CliError(format!(
            "unknown scale `{other}` (test|small|reference)"
        ))),
    }
}

fn parse_machine(s: Option<&str>) -> Result<MachineKind, CliError> {
    let Some(s) = s else {
        return Ok(MachineKind::FgstpSmall);
    };
    MachineKind::WITH_SCALING
        .into_iter()
        .find(|k| k.label() == s)
        .ok_or_else(|| {
            let labels: Vec<&str> = MachineKind::WITH_SCALING
                .iter()
                .map(|k| k.label())
                .collect();
            CliError(format!(
                "unknown machine `{s}` (one of: {})",
                labels.join(", ")
            ))
        })
}

fn find_workload(name: &str, scale: Scale) -> Result<fgstp_workloads::Workload, CliError> {
    by_name(name, scale).ok_or_else(|| {
        CliError(format!(
            "unknown workload `{name}` (one of: {})",
            fgstp_workloads::all_names().join(", ")
        ))
    })
}

/// `list`: one line per workload — the synthetic suite, then the RV32
/// real-program suite.
pub fn list() -> String {
    let mut t = Table::new(["name", "models", "class", "description"]);
    for w in suite(Scale::Test)
        .into_iter()
        .chain(fgstp_workloads::rv_suite(Scale::Test))
    {
        t.row([w.name, w.models, &w.suite.to_string(), w.description]);
    }
    t.to_string()
}

/// `run <workload> [machine] [scale]`. A scale word in the machine
/// position is accepted too (`run hmmer_dp test`), since users naturally
/// drop the machine.
pub fn run(workload: &str, machine: Option<&str>, scale: Option<&str>) -> Result<String, CliError> {
    run_instrumented(workload, machine, scale, None, false, None, None, true)
}

/// `run` with the overrides and observability flags: `cores` overrides the
/// Fg-STP core count, `cpi_stack` appends the CPI-stack breakdown,
/// `chrome_trace` writes the per-core stall timeline as Chrome
/// `trace_event` JSON to the given path, and `sample` switches to
/// SMARTS-style sampled simulation (projected totals plus the interval
/// summary; incompatible with `--cores` and `--chrome-trace`). Sampled
/// runs use live-point snapshots when `snapshot` is set (the default):
/// a re-run of the same configuration skips functional warming by
/// replaying the stored warm states, bit-identically.
#[allow(clippy::too_many_arguments)]
pub fn run_instrumented(
    workload: &str,
    machine: Option<&str>,
    scale: Option<&str>,
    cores: Option<usize>,
    cpi_stack: bool,
    chrome_trace: Option<&str>,
    sample: Option<SampleConfig>,
    snapshot: bool,
) -> Result<String, CliError> {
    let (machine, scale) = match (machine, scale) {
        (Some(m), None) if parse_machine(Some(m)).is_err() && parse_scale(Some(m)).is_ok() => {
            (None, Some(m))
        }
        other => other,
    };
    let scale = parse_scale(scale)?;
    let kind = parse_machine(machine)?;
    if cores.is_some() && !kind.is_fgstp() {
        return Err(CliError(format!(
            "--cores only applies to Fg-STP machines, not {kind}"
        )));
    }
    if cores == Some(0) {
        return Err(CliError("--cores needs at least one core".to_owned()));
    }
    if let Some(s) = &sample {
        if cores.is_some() {
            return Err(CliError(
                "--cores cannot be combined with --sample".to_owned(),
            ));
        }
        if chrome_trace.is_some() {
            return Err(CliError(
                "--chrome-trace is not available under --sample (no episode timeline)".to_owned(),
            ));
        }
        if s.detail == 0 {
            return Err(CliError(
                "--sample-detail needs at least one instruction".to_owned(),
            ));
        }
        if s.warmup + s.detail > s.interval {
            return Err(CliError(format!(
                "sample warmup ({}) + detail ({}) must fit in the interval ({})",
                s.warmup, s.detail, s.interval
            )));
        }
    }
    let w = find_workload(workload, scale)?;
    let session = Session::new().scale(scale);
    let trace = session.trace(&w);
    let instrumented = cpi_stack || chrome_trace.is_some();
    let (r, episodes, snap_stats) = if let Some(scfg) = &sample {
        // The session path gives sampled runs the full live-point
        // machinery: snapshot load/store and parallel window dispatch.
        let session = session
            .clone()
            .machines([kind])
            .sample(*scfg)
            .telemetry(cpi_stack)
            .snapshots(snapshot);
        let mut bench = session.run_workload(&w);
        let r = bench.runs.pop().expect("one machine yields one run");
        (r, Vec::new(), Some(session.snapshot_stats()))
    } else if instrumented {
        let (r, ep) =
            run_on_instrumented_with_cores(kind, trace.insts(), chrome_trace.is_some(), cores);
        (r, ep, None)
    } else {
        (
            run_on_with_cores(kind, trace.insts(), cores),
            Vec::new(),
            None,
        )
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload:  {} ({} dynamic instructions)",
        w.name,
        trace.len()
    );
    let _ = writeln!(out, "machine:   {kind}");
    let _ = writeln!(out, "cycles:    {}", r.result.cycles);
    let _ = writeln!(out, "ipc:       {:.3}", r.ipc());
    let (branches, mispredicts) = r.result.branches;
    let _ = writeln!(out, "branches:  {branches} ({mispredicts} mispredicted)");
    if let Some(s) = &r.sampled {
        let _ = writeln!(
            out,
            "sampling:  interval {} / warmup {} / detail {} ({} intervals)",
            s.config.interval,
            s.config.warmup,
            s.config.detail,
            s.intervals.len()
        );
        if s.cpi.ci_defined() {
            let _ = writeln!(
                out,
                "estimate:  {:.0} ± {:.0} cycles (95% CI), cpi {:.3} (cov {:.3})",
                s.est_cycles(),
                s.est_cycles_ci95_half(),
                s.cpi.mean,
                s.cpi.cov
            );
        } else {
            // A single interval carries no dispersion information; an
            // exact "± 0" would be misleading.
            let _ = writeln!(
                out,
                "estimate:  {:.0} cycles (CI unavailable: single interval), cpi {:.3}",
                s.est_cycles(),
                s.cpi.mean
            );
        }
        let _ = writeln!(
            out,
            "detail:    {} of {} insts in detail ({:.1}x reduction)",
            s.detailed_insts,
            s.total_insts,
            s.detail_reduction()
        );
        if let Some(st) = &snap_stats {
            let source = if st.hits > 0 { "replayed" } else { "stored" };
            let _ = writeln!(
                out,
                "live-points: {} hit / {} miss ({source}), {} insts warmed",
                st.hits, st.misses, st.warmed_insts
            );
        }
    }
    for (i, c) in r.result.cores.iter().enumerate() {
        let _ = writeln!(
            out,
            "core {i}:    fetched {} issued {} committed {} (+{} replicas), {} fwd, {} viol",
            c.fetched,
            c.issued,
            c.committed,
            c.replica_committed,
            c.store_forwards,
            c.load_violations + c.cross_violations,
        );
    }
    for (i, l1d) in r.result.mem.l1d.iter().enumerate() {
        let _ = writeln!(out, "l1d {i}:     {l1d}");
    }
    let _ = writeln!(out, "l2:        {}", r.result.mem.l2);
    if let Some(s) = &r.fgstp {
        let per_core: Vec<String> = s.partition.insts.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "partition: {} insts, {} replicated, {} comms ({:.2}/100 insts)",
            per_core.join("/"),
            s.partition.replicated,
            s.partition.cross_reg_deps,
            100.0 * s.partition.comms_per_inst(),
        );
    }
    if cpi_stack {
        let stack = r.cpi.as_ref().expect("instrumented run has a stack");
        let _ = writeln!(out, "\ncpi stack (aggregate core-cycles/inst):");
        let mut t = Table::new(["component", "cpi", "share"]);
        let total = stack.total_cycles().max(1);
        t.row([
            "base (committing)".to_owned(),
            format!(
                "{:.3}",
                stack.base_cycles as f64 / stack.committed.max(1) as f64
            ),
            format!("{:.1}%", 100.0 * stack.base_cycles as f64 / total as f64),
        ]);
        for c in StallCategory::ALL {
            if stack.stall(c) == 0 {
                continue;
            }
            t.row([
                format!("{} ({})", c.label(), c.describe()),
                format!("{:.3}", stack.category_cpi(c)),
                format!("{:.1}%", 100.0 * stack.fraction(c)),
            ]);
        }
        t.row([
            "TOTAL".to_owned(),
            format!("{:.3}", stack.cpi()),
            "100.0%".to_owned(),
        ]);
        let _ = write!(out, "{t}");
    }
    if let Some(path) = chrome_trace {
        let json = write_chrome_trace(kind.label(), &episodes);
        std::fs::write(path, &json)
            .map_err(|e| CliError(format!("cannot write chrome trace to {path}: {e}")))?;
        let _ = writeln!(
            out,
            "\nchrome trace: {path} ({} events, load in Perfetto or chrome://tracing)",
            episodes.len()
        );
    }
    Ok(out)
}

/// `compare <workload> [scale]`: all machines side by side (run in
/// parallel by the session's worker pool).
pub fn compare(workload: &str, scale: Option<&str>) -> Result<String, CliError> {
    let scale = parse_scale(scale)?;
    let w = find_workload(workload, scale)?;
    let session = Session::new().scale(scale).machines(MachineKind::ALL);
    let bench = session.run_workload(&w);
    let base = &bench
        .run_of(MachineKind::SingleSmall)
        .expect("ALL includes single-small")
        .result;
    let mut t = Table::new(["machine", "cycles", "ipc", "vs single-small"]);
    for r in &bench.runs {
        t.row([
            r.kind.label().to_owned(),
            r.result.cycles.to_string(),
            format!("{:.3}", r.ipc()),
            format!("{:.3}x", r.result.speedup_over(base)),
        ]);
    }
    Ok(format!(
        "{} ({} instructions)\n{t}",
        w.name, bench.committed
    ))
}

/// `pipeview <workload> [first..last]`: timeline on the small core.
pub fn pipeview(workload: &str, range: Option<&str>) -> Result<String, CliError> {
    let (from, to) = parse_range(range)?;
    let w = find_workload(workload, Scale::Test)?;
    let trace = Session::new().scale(Scale::Test).trace(&w);
    let (_, rec) = run_single_recorded(
        trace.insts(),
        &fgstp_ooo::CoreConfig::small(),
        &fgstp_mem::HierarchyConfig::small(1),
        Some(PipeRecorder::with_limit(to)),
    );
    Ok(rec.expect("recorder attached").render(from, to))
}

/// `pipeview2 <workload> [first..last]`: side-by-side per-core timeline of
/// the Fg-STP machine, showing the partitioned execution (replica rows
/// appear on every core holding a copy).
pub fn pipeview2(workload: &str, range: Option<&str>) -> Result<String, CliError> {
    let (from, to) = parse_range(range)?;
    let w = find_workload(workload, Scale::Test)?;
    let trace = Session::new().scale(Scale::Test).trace(&w);
    let cfg = fgstp::FgstpConfig::small();
    let recorders = (0..cfg.num_cores)
        .map(|_| PipeRecorder::with_limit(to))
        .collect();
    let (_, stats, recs) = fgstp::run_fgstp_recorded(
        trace.insts(),
        &cfg,
        &fgstp_mem::HierarchyConfig::small(cfg.num_cores),
        Some(recorders),
    );
    let per_core: Vec<String> = stats.partition.insts.iter().map(u64::to_string).collect();
    let mut out = format!(
        "partition: {} instructions, {} replicated, {} communications\n",
        per_core.join("/"),
        stats.partition.replicated,
        stats.partition.cross_reg_deps,
    );
    for (i, rec) in recs.expect("recorders attached").iter().enumerate() {
        let _ = write!(out, "\n--- core {i} ---\n{}", rec.render(from, to));
    }
    Ok(out)
}

/// Pulls the value of a `--sample-*` count flag off the argument stream.
fn parse_count_flag(it: &mut std::slice::Iter<'_, &str>, flag: &str) -> Result<u64, CliError> {
    let v = it
        .next()
        .copied()
        .ok_or_else(|| CliError(format!("{flag} needs an instruction count")))?;
    v.parse()
        .map_err(|_| CliError(format!("bad {flag} value `{v}`")))
}

fn parse_range(range: Option<&str>) -> Result<(u64, u64), CliError> {
    match range {
        None => Ok((0, 32)),
        Some(r) => {
            let (a, b) = r
                .split_once("..")
                .ok_or_else(|| CliError(format!("malformed range `{r}` (want first..last)")))?;
            let a = a
                .parse()
                .map_err(|_| CliError(format!("bad range start `{a}`")))?;
            let b = b
                .parse()
                .map_err(|_| CliError(format!("bad range end `{b}`")))?;
            if a >= b {
                return Err(CliError(format!("empty range `{r}`")));
            }
            Ok((a, b))
        }
    }
}

/// Dispatches a full argument vector (excluding argv\[0\]).
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["list"] => Ok(list()),
        ["run", w, rest @ ..] => {
            let mut cpi_stack = false;
            let mut chrome_trace: Option<&str> = None;
            let mut cores: Option<usize> = None;
            let mut sample = false;
            let mut snapshot = true;
            let mut scfg = SampleConfig::default();
            let mut positional: Vec<&str> = Vec::new();
            let mut it = rest.iter();
            while let Some(&a) = it.next() {
                match a {
                    "--cpi-stack" => cpi_stack = true,
                    "--snapshot" => snapshot = true,
                    "--no-snapshot" => snapshot = false,
                    "--chrome-trace" => {
                        chrome_trace = Some(it.next().copied().ok_or_else(|| {
                            CliError("--chrome-trace needs an output path".to_owned())
                        })?);
                    }
                    "--cores" => {
                        let n = it
                            .next()
                            .copied()
                            .ok_or_else(|| CliError("--cores needs a count".to_owned()))?;
                        cores = Some(
                            n.parse()
                                .map_err(|_| CliError(format!("bad core count `{n}`")))?,
                        );
                    }
                    "--sample" => sample = true,
                    "--sample-interval" => {
                        scfg.interval = parse_count_flag(&mut it, a)?;
                        sample = true;
                    }
                    "--sample-warmup" => {
                        scfg.warmup = parse_count_flag(&mut it, a)?;
                        sample = true;
                    }
                    "--sample-detail" => {
                        scfg.detail = parse_count_flag(&mut it, a)?;
                        sample = true;
                    }
                    _ => positional.push(a),
                }
            }
            run_instrumented(
                w,
                positional.first().copied(),
                positional.get(1).copied(),
                cores,
                cpi_stack,
                chrome_trace,
                sample.then_some(scfg),
                snapshot,
            )
        }
        ["compare", w, rest @ ..] => compare(w, rest.first().copied()),
        ["pipeview", w, rest @ ..] => pipeview(w, rest.first().copied()),
        ["pipeview2", w, rest @ ..] => pipeview2(w, rest.first().copied()),
        _ => Err(CliError(
            "usage: fgstpsim <list | run <workload> [machine] [scale] [--cores N] [--cpi-stack] [--chrome-trace <path>] [--sample] [--sample-interval N] [--sample-warmup N] [--sample-detail N] [--snapshot|--no-snapshot] | compare <workload> [scale] | pipeview <workload> [first..last] | pipeview2 <workload> [first..last]>"
                .to_owned(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_names_every_workload() {
        let out = list();
        for w in suite(Scale::Test) {
            assert!(out.contains(w.name), "{}", w.name);
        }
    }

    #[test]
    fn run_prints_core_stats() {
        let out = run("perl_hash", Some("fgstp-small"), Some("test")).unwrap();
        assert!(out.contains("core 0:"));
        assert!(out.contains("core 1:"));
        assert!(out.contains("partition:"));
    }

    #[test]
    fn run_rejects_unknown_inputs() {
        assert!(run("nope", None, None).is_err());
        assert!(run("perl_hash", Some("nope"), None).is_err());
        assert!(run("perl_hash", None, Some("nope")).is_err());
    }

    #[test]
    fn run_accepts_scale_in_the_machine_position() {
        // `fgstpsim run <workload> test` — users naturally drop the machine.
        let out = run("perl_hash", Some("test"), None).unwrap();
        assert!(out.contains("fgstp-small"), "default machine used: {out}");
    }

    #[test]
    fn compare_lists_all_machines() {
        let out = compare("hmmer_dp", Some("test")).unwrap();
        for k in MachineKind::ALL {
            assert!(out.contains(k.label()), "{}", k.label());
        }
    }

    #[test]
    fn pipeview_renders_a_timeline() {
        let out = pipeview("perl_hash", Some("0..8")).unwrap();
        assert!(out.contains("cycles"));
        assert!(out.lines().count() >= 9, "{out}");
    }

    #[test]
    fn pipeview_rejects_bad_ranges() {
        assert!(pipeview("perl_hash", Some("8..8")).is_err());
        assert!(pipeview("perl_hash", Some("abc")).is_err());
    }

    #[test]
    fn dispatch_routes_subcommands() {
        assert!(dispatch(&["list".into()]).is_ok());
        assert!(dispatch(&["bogus".into()]).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn run_cpi_stack_flag_appends_the_breakdown() {
        let out = dispatch(&[
            "run".into(),
            "perl_hash".into(),
            "fgstp-small".into(),
            "test".into(),
            "--cpi-stack".into(),
        ])
        .unwrap();
        assert!(out.contains("cpi stack"), "{out}");
        assert!(out.contains("base (committing)"), "{out}");
        assert!(out.contains("TOTAL"), "{out}");
    }

    #[test]
    fn run_chrome_trace_flag_writes_a_json_file() {
        let path =
            std::env::temp_dir().join(format!("fgstp-cli-chrome-{}.json", std::process::id()));
        let out = dispatch(&[
            "run".into(),
            "perl_hash".into(),
            "--chrome-trace".into(),
            path.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(out.contains("chrome trace:"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chrome_trace_flag_requires_a_path() {
        let e = dispatch(&["run".into(), "perl_hash".into(), "--chrome-trace".into()]);
        assert!(e.is_err());
    }

    #[test]
    fn pipeview2_shows_both_cores_and_the_partition() {
        let out = pipeview2("hmmer_dp", Some("0..24")).unwrap();
        assert!(out.contains("--- core 0 ---"));
        assert!(out.contains("--- core 1 ---"));
        assert!(out.contains("partition:"));
    }

    #[test]
    fn cores_flag_overrides_the_fgstp_core_count() {
        let out = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "fgstp-small".into(),
            "test".into(),
            "--cores".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(out.contains("core 2:"), "{out}");
        assert!(!out.contains("core 3:"), "{out}");
    }

    #[test]
    fn cores_flag_rejects_bad_inputs() {
        assert!(run_instrumented(
            "hmmer_dp",
            Some("single-small"),
            None,
            Some(2),
            false,
            None,
            None,
            true
        )
        .is_err());
        assert!(
            run_instrumented("hmmer_dp", None, None, Some(0), false, None, None, true).is_err()
        );
        let e = dispatch(&["run".into(), "hmmer_dp".into(), "--cores".into()]);
        assert!(e.is_err());
        let e = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--cores".into(),
            "many".into(),
        ]);
        assert!(e.is_err());
    }

    #[test]
    fn sample_flag_switches_to_projected_totals() {
        let out = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "fgstp-small".into(),
            "test".into(),
            "--sample".into(),
            "--sample-interval".into(),
            "2000".into(),
            "--sample-warmup".into(),
            "300".into(),
            "--sample-detail".into(),
            "150".into(),
        ])
        .unwrap();
        assert!(
            out.contains("sampling:  interval 2000 / warmup 300 / detail 150"),
            "{out}"
        );
        assert!(out.contains("estimate:"), "{out}");
        assert!(out.contains("x reduction"), "{out}");
    }

    #[test]
    fn sample_value_flags_imply_sampling() {
        let out = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample-interval".into(),
            "3000".into(),
        ])
        .unwrap();
        assert!(out.contains("sampling:  interval 3000"), "{out}");
    }

    #[test]
    fn sample_flag_composes_with_cpi_stack() {
        let out = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample".into(),
            "--cpi-stack".into(),
        ])
        .unwrap();
        assert!(out.contains("sampling:"), "{out}");
        assert!(out.contains("cpi stack"), "{out}");
    }

    #[test]
    fn sample_flag_rejects_bad_combinations() {
        let chrome = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample".into(),
            "--chrome-trace".into(),
            "/tmp/x.json".into(),
        ]);
        assert!(chrome.is_err());
        let cores = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample".into(),
            "--cores".into(),
            "2".into(),
        ]);
        assert!(cores.is_err());
        let oversized = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample-interval".into(),
            "100".into(),
        ]);
        assert!(oversized.is_err(), "default window no longer fits");
        let missing = dispatch(&["run".into(), "hmmer_dp".into(), "--sample-detail".into()]);
        assert!(missing.is_err());
        let bad = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample-detail".into(),
            "lots".into(),
        ]);
        assert!(bad.is_err());
    }

    /// Validation matrix: every combination of `--sample` with the flags
    /// it excludes is rejected, in either flag order, and the error names
    /// the offending flag. A combination that merely *implies* sampling
    /// (`--sample-interval`) conflicts exactly like the explicit flag.
    #[test]
    fn sample_exclusion_matrix() {
        let sample_forms: [&[&str]; 2] = [&["--sample"], &["--sample-interval", "2000"]];
        let excluded: [(&[&str], &str); 2] = [
            (&["--cores", "2"], "--cores"),
            (
                &["--chrome-trace", "/tmp/fgstp-matrix.json"],
                "--chrome-trace",
            ),
        ];
        for sample in sample_forms {
            for (conflict, flag) in excluded {
                for order in 0..2 {
                    let mut args = vec!["run".to_owned(), "hmmer_dp".to_owned()];
                    let (first, second) = if order == 0 {
                        (sample, conflict)
                    } else {
                        (conflict, sample)
                    };
                    args.extend(first.iter().map(|s| s.to_string()));
                    args.extend(second.iter().map(|s| s.to_string()));
                    let e = dispatch(&args).expect_err(&format!("{args:?} must be rejected"));
                    assert!(
                        e.0.contains(flag),
                        "error for {args:?} names {flag}: {}",
                        e.0
                    );
                }
            }
        }
        // Both conflicts at once still fail (whichever is reported first).
        let e = dispatch(&[
            "run".into(),
            "hmmer_dp".into(),
            "--sample".into(),
            "--cores".into(),
            "2".into(),
            "--chrome-trace".into(),
            "/tmp/fgstp-matrix.json".into(),
        ]);
        assert!(e.is_err());
    }

    /// `--sample-*` parsing edges: exact-fit windows are accepted, the
    /// first over-budget instruction is rejected, zero detail is rejected,
    /// and every value flag needs a numeric argument.
    #[test]
    fn sample_value_parsing_edges() {
        let run_with = |interval: &str, warmup: &str, detail: &str| {
            dispatch(&[
                "run".into(),
                "hmmer_dp".into(),
                "--sample-interval".into(),
                interval.into(),
                "--sample-warmup".into(),
                warmup.into(),
                "--sample-detail".into(),
                detail.into(),
            ])
        };
        // warmup + detail == interval is the largest window that fits.
        assert!(run_with("1000", "500", "500").is_ok());
        // One instruction over the interval fails with the budget message.
        let e = run_with("1000", "500", "501").unwrap_err();
        assert!(e.0.contains("must fit in the interval"), "{}", e.0);
        // Zero-instruction detail windows measure nothing.
        let e = run_with("1000", "100", "0").unwrap_err();
        assert!(e.0.contains("--sample-detail"), "{}", e.0);
        // Each value flag demands an argument...
        for flag in ["--sample-interval", "--sample-warmup", "--sample-detail"] {
            let e = dispatch(&["run".into(), "hmmer_dp".into(), flag.into()]).unwrap_err();
            assert!(e.0.contains(flag), "{}", e.0);
            // ...and a numeric one: negatives and words don't parse as u64.
            for bad in ["many", "-5", "1e6"] {
                let e = dispatch(&["run".into(), "hmmer_dp".into(), flag.into(), bad.into()])
                    .unwrap_err();
                assert!(e.0.contains(flag) && e.0.contains(bad), "{}", e.0);
            }
        }
    }

    /// `--cores` validation composes with machine selection: valid on any
    /// Fg-STP preset, rejected on every non-Fg-STP preset and for zero.
    #[test]
    fn cores_machine_matrix() {
        for kind in MachineKind::ALL {
            let r = run_instrumented(
                "hmmer_dp",
                Some(kind.label()),
                Some("test"),
                Some(2),
                false,
                None,
                None,
                true,
            );
            if kind.is_fgstp() {
                assert!(r.is_ok(), "{}: {r:?}", kind.label());
            } else {
                let e = r.expect_err(kind.label());
                assert!(e.0.contains("--cores"), "{}", e.0);
            }
        }
        let e =
            run_instrumented("hmmer_dp", None, None, Some(0), false, None, None, true).unwrap_err();
        assert!(e.0.contains("at least one core"), "{}", e.0);
    }

    #[test]
    fn scaling_presets_are_reachable_by_label() {
        let out = run("hmmer_dp", Some("fgstp-small-4"), Some("test")).unwrap();
        assert!(out.contains("core 3:"), "{out}");
        assert!(out.contains("fgstp-small-4"), "{out}");
    }
}
