//! The paper's machine presets.
//!
//! The evaluation compares, on the same 2-core silicon budget:
//!
//! * one **baseline core** running the thread alone (small or medium),
//! * **Core Fusion** of the two cores (fused wide core with front-end
//!   overheads), and
//! * **Fg-STP** (both cores collaborating at instruction granularity).

use fgstp::FgstpConfig;
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::CoreConfig;

/// A machine model the experiments can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// One small core (baseline of the small CMP).
    SingleSmall,
    /// One medium core (baseline of the medium CMP).
    SingleMedium,
    /// Core Fusion of two small cores.
    FusedSmall,
    /// Core Fusion of two medium cores.
    FusedMedium,
    /// Fg-STP on two small cores.
    FgstpSmall,
    /// Fg-STP on two medium cores.
    FgstpMedium,
    /// Fg-STP on four small cores (scaling study, E13).
    FgstpSmall4,
    /// Fg-STP on four medium cores (scaling study, E13).
    FgstpMedium4,
}

impl MachineKind {
    /// The paper's presets, small CMP first (the scaling extensions are in
    /// [`MachineKind::WITH_SCALING`]).
    pub const ALL: [MachineKind; 6] = [
        MachineKind::SingleSmall,
        MachineKind::FusedSmall,
        MachineKind::FgstpSmall,
        MachineKind::SingleMedium,
        MachineKind::FusedMedium,
        MachineKind::FgstpMedium,
    ];

    /// Every preset, including the 4-core scaling extensions.
    pub const WITH_SCALING: [MachineKind; 8] = [
        MachineKind::SingleSmall,
        MachineKind::FusedSmall,
        MachineKind::FgstpSmall,
        MachineKind::FgstpSmall4,
        MachineKind::SingleMedium,
        MachineKind::FusedMedium,
        MachineKind::FgstpMedium,
        MachineKind::FgstpMedium4,
    ];

    /// The three machines of the small 2-core CMP comparison (E1).
    pub const SMALL_CMP: [MachineKind; 3] = [
        MachineKind::SingleSmall,
        MachineKind::FusedSmall,
        MachineKind::FgstpSmall,
    ];

    /// The three machines of the medium 2-core CMP comparison (E2).
    pub const MEDIUM_CMP: [MachineKind; 3] = [
        MachineKind::SingleMedium,
        MachineKind::FusedMedium,
        MachineKind::FgstpMedium,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::SingleSmall => "single-small",
            MachineKind::SingleMedium => "single-medium",
            MachineKind::FusedSmall => "fused-small",
            MachineKind::FusedMedium => "fused-medium",
            MachineKind::FgstpSmall => "fgstp-small",
            MachineKind::FgstpMedium => "fgstp-medium",
            MachineKind::FgstpSmall4 => "fgstp-small-4",
            MachineKind::FgstpMedium4 => "fgstp-medium-4",
        }
    }

    /// Whether this machine is an Fg-STP configuration.
    pub fn is_fgstp(self) -> bool {
        matches!(
            self,
            MachineKind::FgstpSmall
                | MachineKind::FgstpMedium
                | MachineKind::FgstpSmall4
                | MachineKind::FgstpMedium4
        )
    }

    /// Whether the preset is built from the small base core.
    pub fn is_small_base(self) -> bool {
        matches!(
            self,
            MachineKind::SingleSmall
                | MachineKind::FusedSmall
                | MachineKind::FgstpSmall
                | MachineKind::FgstpSmall4
        )
    }

    /// Core configuration for the non-Fg-STP presets, or `None` for the
    /// Fg-STP presets (which are driven by an [`FgstpConfig`]).
    pub fn try_core_config(self) -> Option<CoreConfig> {
        match self {
            MachineKind::SingleSmall => Some(CoreConfig::small()),
            MachineKind::SingleMedium => Some(CoreConfig::medium()),
            MachineKind::FusedSmall => Some(CoreConfig::fused(&CoreConfig::small())),
            MachineKind::FusedMedium => Some(CoreConfig::fused(&CoreConfig::medium())),
            MachineKind::FgstpSmall
            | MachineKind::FgstpMedium
            | MachineKind::FgstpSmall4
            | MachineKind::FgstpMedium4 => None,
        }
    }

    /// Fg-STP configuration for the Fg-STP presets, or `None` for the
    /// presets driven by a plain [`CoreConfig`].
    pub fn try_fgstp_config(self) -> Option<FgstpConfig> {
        match self {
            MachineKind::FgstpSmall => Some(FgstpConfig::small()),
            MachineKind::FgstpMedium => Some(FgstpConfig::medium()),
            MachineKind::FgstpSmall4 => Some(FgstpConfig::small().with_cores(4)),
            MachineKind::FgstpMedium4 => Some(FgstpConfig::medium().with_cores(4)),
            _ => None,
        }
    }

    /// Number of cores the preset's timing machine drives (1 for the
    /// single-core and fused presets, `num_cores` for Fg-STP).
    pub fn cores(self) -> usize {
        self.try_fgstp_config().map(|c| c.num_cores).unwrap_or(1)
    }

    /// Core configuration for the non-Fg-STP presets.
    ///
    /// # Panics
    ///
    /// Panics for Fg-STP presets — use [`MachineKind::try_core_config`] (or
    /// [`MachineKind::fgstp_config`]) when the kind is not statically known.
    pub fn core_config(self) -> CoreConfig {
        self.try_core_config()
            .unwrap_or_else(|| panic!("{} is driven by an FgstpConfig", self.label()))
    }

    /// Fg-STP configuration for the Fg-STP presets.
    ///
    /// # Panics
    ///
    /// Panics for non-Fg-STP presets — use [`MachineKind::try_fgstp_config`]
    /// (or [`MachineKind::core_config`]) when the kind is not statically
    /// known.
    pub fn fgstp_config(self) -> FgstpConfig {
        self.try_fgstp_config()
            .unwrap_or_else(|| panic!("{} is driven by a CoreConfig", self.label()))
    }

    /// Memory-hierarchy configuration for this preset.
    ///
    /// The single-core baselines still get the CMP's shared L2 (partner
    /// cores idle); per-core L1s are private in every preset.
    pub fn hierarchy_config(self) -> HierarchyConfig {
        self.hierarchy_for(self.cores())
    }

    /// The preset's memory hierarchy resized to `cores` cores (used by the
    /// `--cores` override and the E13 scaling sweep).
    pub fn hierarchy_for(self, cores: usize) -> HierarchyConfig {
        if self.is_small_base() {
            HierarchyConfig::small(cores)
        } else {
            HierarchyConfig::medium(cores)
        }
    }
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = MachineKind::WITH_SCALING
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(labels.len(), MachineKind::WITH_SCALING.len());
    }

    #[test]
    fn scaling_set_contains_the_paper_set() {
        for k in MachineKind::ALL {
            assert!(MachineKind::WITH_SCALING.contains(&k), "{k}");
        }
    }

    #[test]
    fn configs_build_for_every_kind() {
        for k in MachineKind::WITH_SCALING {
            let _ = k.hierarchy_config();
            if k.is_fgstp() {
                let cfg = k.fgstp_config();
                cfg.core.validate();
            } else {
                k.core_config().validate();
            }
        }
    }

    #[test]
    fn hierarchy_core_counts_match_the_machine() {
        assert_eq!(MachineKind::FgstpSmall.hierarchy_config().cores, 2);
        assert_eq!(MachineKind::FgstpSmall4.hierarchy_config().cores, 4);
        assert_eq!(MachineKind::FgstpMedium4.cores(), 4);
        assert_eq!(MachineKind::SingleSmall.hierarchy_config().cores, 1);
        assert_eq!(MachineKind::FusedSmall.cores(), 1, "fused is one wide core");
        assert_eq!(MachineKind::FgstpSmall.hierarchy_for(3).cores, 3);
    }

    #[test]
    #[should_panic(expected = "FgstpConfig")]
    fn core_config_rejects_fgstp_kinds() {
        MachineKind::FgstpSmall.core_config();
    }

    #[test]
    fn try_accessors_partition_the_kinds() {
        for k in MachineKind::WITH_SCALING {
            assert_eq!(k.try_core_config().is_some(), !k.is_fgstp(), "{k}");
            assert_eq!(k.try_fgstp_config().is_some(), k.is_fgstp(), "{k}");
        }
    }
}
