//! The paper's machine presets.
//!
//! The evaluation compares, on the same 2-core silicon budget:
//!
//! * one **baseline core** running the thread alone (small or medium),
//! * **Core Fusion** of the two cores (fused wide core with front-end
//!   overheads), and
//! * **Fg-STP** (both cores collaborating at instruction granularity).

use fgstp::FgstpConfig;
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::CoreConfig;

/// A machine model the experiments can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// One small core (baseline of the small CMP).
    SingleSmall,
    /// One medium core (baseline of the medium CMP).
    SingleMedium,
    /// Core Fusion of two small cores.
    FusedSmall,
    /// Core Fusion of two medium cores.
    FusedMedium,
    /// Fg-STP on two small cores.
    FgstpSmall,
    /// Fg-STP on two medium cores.
    FgstpMedium,
}

impl MachineKind {
    /// All presets, small CMP first.
    pub const ALL: [MachineKind; 6] = [
        MachineKind::SingleSmall,
        MachineKind::FusedSmall,
        MachineKind::FgstpSmall,
        MachineKind::SingleMedium,
        MachineKind::FusedMedium,
        MachineKind::FgstpMedium,
    ];

    /// The three machines of the small 2-core CMP comparison (E1).
    pub const SMALL_CMP: [MachineKind; 3] = [
        MachineKind::SingleSmall,
        MachineKind::FusedSmall,
        MachineKind::FgstpSmall,
    ];

    /// The three machines of the medium 2-core CMP comparison (E2).
    pub const MEDIUM_CMP: [MachineKind; 3] = [
        MachineKind::SingleMedium,
        MachineKind::FusedMedium,
        MachineKind::FgstpMedium,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::SingleSmall => "single-small",
            MachineKind::SingleMedium => "single-medium",
            MachineKind::FusedSmall => "fused-small",
            MachineKind::FusedMedium => "fused-medium",
            MachineKind::FgstpSmall => "fgstp-small",
            MachineKind::FgstpMedium => "fgstp-medium",
        }
    }

    /// Whether this machine is the Fg-STP dual-core configuration.
    pub fn is_fgstp(self) -> bool {
        matches!(self, MachineKind::FgstpSmall | MachineKind::FgstpMedium)
    }

    /// Whether the preset is built from the small base core.
    pub fn is_small_base(self) -> bool {
        matches!(
            self,
            MachineKind::SingleSmall | MachineKind::FusedSmall | MachineKind::FgstpSmall
        )
    }

    /// Core configuration for the non-Fg-STP presets, or `None` for the
    /// Fg-STP presets (which are driven by an [`FgstpConfig`]).
    pub fn try_core_config(self) -> Option<CoreConfig> {
        match self {
            MachineKind::SingleSmall => Some(CoreConfig::small()),
            MachineKind::SingleMedium => Some(CoreConfig::medium()),
            MachineKind::FusedSmall => Some(CoreConfig::fused(&CoreConfig::small())),
            MachineKind::FusedMedium => Some(CoreConfig::fused(&CoreConfig::medium())),
            MachineKind::FgstpSmall | MachineKind::FgstpMedium => None,
        }
    }

    /// Fg-STP configuration for the Fg-STP presets, or `None` for the
    /// presets driven by a plain [`CoreConfig`].
    pub fn try_fgstp_config(self) -> Option<FgstpConfig> {
        match self {
            MachineKind::FgstpSmall => Some(FgstpConfig::small()),
            MachineKind::FgstpMedium => Some(FgstpConfig::medium()),
            _ => None,
        }
    }

    /// Core configuration for the non-Fg-STP presets.
    ///
    /// # Panics
    ///
    /// Panics for Fg-STP presets — use [`MachineKind::try_core_config`] (or
    /// [`MachineKind::fgstp_config`]) when the kind is not statically known.
    pub fn core_config(self) -> CoreConfig {
        self.try_core_config()
            .unwrap_or_else(|| panic!("{} is driven by an FgstpConfig", self.label()))
    }

    /// Fg-STP configuration for the Fg-STP presets.
    ///
    /// # Panics
    ///
    /// Panics for non-Fg-STP presets — use [`MachineKind::try_fgstp_config`]
    /// (or [`MachineKind::core_config`]) when the kind is not statically
    /// known.
    pub fn fgstp_config(self) -> FgstpConfig {
        self.try_fgstp_config()
            .unwrap_or_else(|| panic!("{} is driven by a CoreConfig", self.label()))
    }

    /// Memory-hierarchy configuration for this preset.
    ///
    /// The single-core baselines still get the 2-core CMP's shared L2 (one
    /// core idles); per-core L1s are private in every preset.
    pub fn hierarchy_config(self) -> HierarchyConfig {
        let cores = if self.is_fgstp() { 2 } else { 1 };
        if self.is_small_base() {
            HierarchyConfig::small(cores)
        } else {
            HierarchyConfig::medium(cores)
        }
    }
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            MachineKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), MachineKind::ALL.len());
    }

    #[test]
    fn configs_build_for_every_kind() {
        for k in MachineKind::ALL {
            let _ = k.hierarchy_config();
            if k.is_fgstp() {
                let cfg = k.fgstp_config();
                cfg.core.validate();
            } else {
                k.core_config().validate();
            }
        }
    }

    #[test]
    fn fgstp_presets_use_two_cores() {
        assert_eq!(MachineKind::FgstpSmall.hierarchy_config().cores, 2);
        assert_eq!(MachineKind::SingleSmall.hierarchy_config().cores, 1);
    }

    #[test]
    #[should_panic(expected = "FgstpConfig")]
    fn core_config_rejects_fgstp_kinds() {
        MachineKind::FgstpSmall.core_config();
    }

    #[test]
    fn try_accessors_partition_the_kinds() {
        for k in MachineKind::ALL {
            assert_eq!(k.try_core_config().is_some(), !k.is_fgstp(), "{k}");
            assert_eq!(k.try_fgstp_config().is_some(), k.is_fgstp(), "{k}");
        }
    }
}
