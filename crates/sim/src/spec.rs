//! The unified experiment specification.
//!
//! An [`ExperimentSpec`] names everything one experiment run needs —
//! workload subset, machine set, scale, optional Fg-STP core-count
//! override, sampling regime, telemetry, and execution knobs — in one
//! validated, JSON-serializable value. The same spec drives every
//! frontend:
//!
//! * the experiment binaries (`crates/bench`) parse their shared flags
//!   into a spec via [`ExperimentSpec::apply_arg`];
//! * the `fgstp` CLI client parses the identical flags and either runs
//!   the spec locally ([`ExperimentSpec::run`]) or submits it to a
//!   daemon;
//! * the `fgstpd` batch-simulation daemon receives specs as JSON
//!   ([`ExperimentSpec::from_json`]), dedups them on
//!   [`ExperimentSpec::dedup_key`], and executes them on a [`Session`].
//!
//! Conversion to the driver layer is [`ExperimentSpec::session`]: the
//! returned [`Session`] carries the spec's workload filter, machine set
//! and knobs, so `spec.session().plan()` *is* the spec-to-[`RunPlan`]
//! conversion and `spec.run()` executes it.
//!
//! Validation is structural and total: [`ExperimentSpec::validate`]
//! rejects unknown workload or machine names, zero core/thread counts,
//! and unsatisfiable combinations (`--cores` on a non-Fg-STP machine,
//! `--cores` × `--sample`, sample windows that do not fit the interval)
//! with a typed [`SpecError`] instead of panicking downstream — the
//! error's [`SpecErrorKind`] crosses the daemon protocol as a stable
//! string.

use fgstp_sampling::SampleConfig;
use fgstp_telemetry::json::Json;
use fgstp_workloads::{by_name, suite, Scale};

use crate::presets::MachineKind;
use crate::runner::BenchResult;
#[allow(unused_imports)] // doc link
use crate::session::RunPlan;
use crate::session::Session;

/// What made a spec invalid; [`SpecErrorKind::label`] is the stable
/// protocol string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// Malformed JSON, or a JSON document of the wrong shape.
    Json,
    /// A workload name not in the suite.
    UnknownWorkload,
    /// A machine label or machine-set name no preset matches.
    UnknownMachine,
    /// A scale word other than `test`/`small`/`reference`.
    UnknownScale,
    /// A flag that is not part of the spec vocabulary.
    UnknownFlag,
    /// A value that does not parse or is out of range.
    Value,
    /// Two options that cannot be combined.
    Conflict,
}

impl SpecErrorKind {
    /// Stable kebab-case identifier, used on the wire by `fgstpd`.
    pub fn label(self) -> &'static str {
        match self {
            SpecErrorKind::Json => "bad-json",
            SpecErrorKind::UnknownWorkload => "unknown-workload",
            SpecErrorKind::UnknownMachine => "unknown-machine",
            SpecErrorKind::UnknownScale => "unknown-scale",
            SpecErrorKind::UnknownFlag => "unknown-flag",
            SpecErrorKind::Value => "bad-value",
            SpecErrorKind::Conflict => "conflict",
        }
    }
}

/// A structured spec rejection: a machine-readable kind plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What class of problem this is.
    pub kind: SpecErrorKind,
    /// The specifics, naming the offending input.
    pub message: String,
}

impl SpecError {
    /// A new error of `kind`.
    pub fn new(kind: SpecErrorKind, message: impl Into<String>) -> SpecError {
        SpecError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for SpecError {}

/// The filename- and protocol-safe word for a scale.
pub fn scale_word(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Reference => "reference",
    }
}

/// Parses a scale word.
pub fn parse_scale(word: &str) -> Result<Scale, SpecError> {
    match word {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "reference" => Ok(Scale::Reference),
        other => Err(SpecError::new(
            SpecErrorKind::UnknownScale,
            format!("unknown scale `{other}` (test|small|reference)"),
        )),
    }
}

/// Parses one machine label.
pub fn parse_machine(label: &str) -> Result<MachineKind, SpecError> {
    MachineKind::WITH_SCALING
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let labels: Vec<&str> = MachineKind::WITH_SCALING
                .iter()
                .map(|k| k.label())
                .collect();
            SpecError::new(
                SpecErrorKind::UnknownMachine,
                format!("unknown machine `{label}` (one of: {})", labels.join(", ")),
            )
        })
}

/// Parses a machine *set*: a named set (`small-cmp`, `medium-cmp`,
/// `all`, `scaling`) or a comma-separated list of preset labels.
pub fn parse_machine_set(s: &str) -> Result<Vec<MachineKind>, SpecError> {
    match s {
        "small-cmp" => Ok(MachineKind::SMALL_CMP.to_vec()),
        "medium-cmp" => Ok(MachineKind::MEDIUM_CMP.to_vec()),
        "all" => Ok(MachineKind::ALL.to_vec()),
        "scaling" => Ok(MachineKind::WITH_SCALING.to_vec()),
        labels => labels.split(',').map(parse_machine).collect(),
    }
}

/// One co-running program inside a [`CoRunSpec`]: a workload and the
/// number of cores its Fg-STP machine instance owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoRunProgramSpec {
    /// Workload name (must be in the suite).
    pub workload: String,
    /// Cores the program's machine owns (≥ 1).
    pub cores: usize,
}

/// A multi-program co-run request: independent workloads on disjoint core
/// sets of one machine, coupled through the shared L2 (and, unless
/// `isolated`, a finite-bandwidth DRAM channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoRunSpec {
    /// The co-running programs, in chip core order.
    pub programs: Vec<CoRunProgramSpec>,
    /// Give every program a private hierarchy instead (contention off);
    /// each program then reproduces its solo cycle count exactly.
    pub isolated: bool,
}

impl CoRunSpec {
    /// Total chip cores across all programs.
    pub fn total_cores(&self) -> usize {
        self.programs.iter().map(|p| p.cores).sum()
    }

    /// Parses the `--corun=` value: comma-separated `workload[:cores]`
    /// entries, cores defaulting to 1. The cores suffix is the *last*
    /// `:`-separated field and only when it is numeric, so prefixed
    /// workload names (`rv:quicksort`, `rv:quicksort:2`) parse correctly.
    pub fn parse(value: &str) -> Result<CoRunSpec, SpecError> {
        let mut programs = Vec::new();
        for entry in value.split(',') {
            let (workload, cores) = match entry.rsplit_once(':') {
                Some((w, c)) if c.chars().all(|ch| ch.is_ascii_digit()) && !c.is_empty() => {
                    let n = c.parse::<usize>().map_err(|_| {
                        SpecError::new(
                            SpecErrorKind::Value,
                            format!("bad core count `{c}` in --corun entry `{entry}`"),
                        )
                    })?;
                    (w, n)
                }
                _ => (entry, 1),
            };
            programs.push(CoRunProgramSpec {
                workload: workload.to_owned(),
                cores,
            });
        }
        Ok(CoRunSpec {
            programs,
            isolated: false,
        })
    }
}

/// One experiment, fully specified. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Workload scale.
    pub scale: Scale,
    /// Machine set, in request order.
    pub machines: Vec<MachineKind>,
    /// Workload subset by name; empty means the whole suite.
    pub workloads: Vec<String>,
    /// Fg-STP core-count override (requires an all-Fg-STP machine set).
    pub cores: Option<usize>,
    /// Worker-pool size override (execution knob; not part of the
    /// result identity).
    pub threads: Option<usize>,
    /// Disable the on-disk trace cache (execution knob).
    pub no_cache: bool,
    /// Use live-point snapshots for sampled runs (execution knob, on by
    /// default): a sampled re-run then replays stored warm states
    /// instead of re-warming. Results are bit-identical either way, so
    /// the flag — like `threads` and `no_cache` — is not part of the
    /// result identity.
    pub snapshot: bool,
    /// Collect CPI stacks alongside timing.
    pub telemetry: bool,
    /// SMARTS-style sampling regime, off by default.
    pub sample: Option<SampleConfig>,
    /// Multi-program co-run scenario, off by default. Requires a machine
    /// set of exactly one Fg-STP preset (which supplies the core and
    /// cache shapes) and conflicts with `--cores`, `--sample` and
    /// `--telemetry`.
    pub corun: Option<CoRunSpec>,
}

impl Default for ExperimentSpec {
    /// The experiment-harness default: the full suite at [`Scale::Small`]
    /// on the small 2-core CMP machine set.
    fn default() -> ExperimentSpec {
        ExperimentSpec {
            scale: Scale::Small,
            machines: MachineKind::SMALL_CMP.to_vec(),
            workloads: Vec::new(),
            cores: None,
            threads: None,
            no_cache: false,
            snapshot: true,
            telemetry: false,
            sample: None,
            corun: None,
        }
    }
}

/// The flag vocabulary accepted by [`ExperimentSpec::apply_arg`], for
/// usage messages.
pub const SPEC_USAGE: &str = "[test|small|reference] [--workloads=a,b,..] \
[--machines=small-cmp|medium-cmp|all|scaling|<label,..>] [--cores=N] \
[--threads=N] [--no-cache] [--telemetry] [--sample] [--sample-interval=N] \
[--sample-warmup=N] [--sample-detail=N] [--snapshot] [--no-snapshot] \
[--corun=wl[:cores],..] [--corun-isolated]";

impl ExperimentSpec {
    /// Applies one CLI argument to the spec. Returns `Ok(true)` when the
    /// argument was consumed, `Ok(false)` when it is not part of the
    /// spec vocabulary (so callers can layer their own flags, e.g.
    /// `--csv`), and an error when it *is* a spec flag with a bad value.
    pub fn apply_arg(&mut self, arg: &str) -> Result<bool, SpecError> {
        match arg {
            "test" | "small" | "reference" => {
                self.scale = parse_scale(arg)?;
                return Ok(true);
            }
            "--no-cache" => {
                self.no_cache = true;
                return Ok(true);
            }
            "--snapshot" => {
                self.snapshot = true;
                return Ok(true);
            }
            "--no-snapshot" => {
                self.snapshot = false;
                return Ok(true);
            }
            "--telemetry" => {
                self.telemetry = true;
                return Ok(true);
            }
            "--sample" => {
                self.sample.get_or_insert_with(SampleConfig::default);
                return Ok(true);
            }
            "--corun-isolated" => {
                self.corun
                    .get_or_insert_with(|| CoRunSpec {
                        programs: Vec::new(),
                        isolated: false,
                    })
                    .isolated = true;
                return Ok(true);
            }
            _ => {}
        }
        let Some((flag, value)) = arg.split_once('=') else {
            return Ok(false);
        };
        let count = |what: &str| -> Result<u64, SpecError> {
            value.parse::<u64>().map_err(|_| {
                SpecError::new(SpecErrorKind::Value, format!("bad {what} value `{value}`"))
            })
        };
        match flag {
            "--workloads" => {
                self.workloads = value.split(',').map(str::to_owned).collect();
            }
            "--machines" => self.machines = parse_machine_set(value)?,
            "--cores" => self.cores = Some(count(flag)? as usize),
            "--threads" => self.threads = Some(count(flag)? as usize),
            "--sample-interval" => {
                self.sample
                    .get_or_insert_with(SampleConfig::default)
                    .interval = count(flag)?;
            }
            "--sample-warmup" => {
                self.sample.get_or_insert_with(SampleConfig::default).warmup = count(flag)?;
            }
            "--sample-detail" => {
                self.sample.get_or_insert_with(SampleConfig::default).detail = count(flag)?;
            }
            "--corun" => {
                let parsed = CoRunSpec::parse(value)?;
                match &mut self.corun {
                    // --corun-isolated may have arrived first.
                    Some(c) => c.programs = parsed.programs,
                    None => self.corun = Some(parsed),
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Parses a full argument list into a validated spec. Every argument
    /// must be part of the spec vocabulary — unknown flags are an
    /// [`SpecErrorKind::UnknownFlag`] error naming [`SPEC_USAGE`].
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Result<ExperimentSpec, SpecError> {
        let mut spec = ExperimentSpec::default();
        for a in args {
            if !spec.apply_arg(a.as_ref())? {
                return Err(SpecError::new(
                    SpecErrorKind::UnknownFlag,
                    format!("unknown flag `{}` (usage: {SPEC_USAGE})", a.as_ref()),
                ));
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec is satisfiable; see the [module docs](self) for
    /// the full rule list. All frontends call this before executing or
    /// enqueueing, so an invalid spec can never reach a worker pool.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.machines.is_empty() {
            return Err(SpecError::new(
                SpecErrorKind::UnknownMachine,
                "machine set is empty",
            ));
        }
        for name in &self.workloads {
            if by_name(name, Scale::Test).is_none() {
                return Err(SpecError::new(
                    SpecErrorKind::UnknownWorkload,
                    format!(
                        "unknown workload `{name}` (one of: {})",
                        fgstp_workloads::all_names().join(", ")
                    ),
                ));
            }
        }
        if let Some(n) = self.cores {
            if n == 0 {
                return Err(SpecError::new(
                    SpecErrorKind::Value,
                    "--cores needs at least one core",
                ));
            }
            if let Some(k) = self.machines.iter().find(|k| !k.is_fgstp()) {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    format!("--cores only applies to Fg-STP machines, not {k}"),
                ));
            }
            if self.sample.is_some() {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    "--cores cannot be combined with --sample",
                ));
            }
        }
        if let Some(n) = self.threads {
            if n == 0 {
                return Err(SpecError::new(
                    SpecErrorKind::Value,
                    "--threads needs at least one worker",
                ));
            }
        }
        if let Some(s) = &self.sample {
            if s.detail == 0 {
                return Err(SpecError::new(
                    SpecErrorKind::Value,
                    "--sample-detail needs at least one instruction",
                ));
            }
            if s.warmup + s.detail > s.interval {
                return Err(SpecError::new(
                    SpecErrorKind::Value,
                    format!(
                        "sample warmup ({}) + detail ({}) must fit in the interval ({})",
                        s.warmup, s.detail, s.interval
                    ),
                ));
            }
        }
        if let Some(c) = &self.corun {
            if c.programs.is_empty() {
                return Err(SpecError::new(
                    SpecErrorKind::Value,
                    "--corun needs at least one workload[:cores] entry",
                ));
            }
            if self.machines.len() != 1 || !self.machines[0].is_fgstp() {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    "--corun needs exactly one Fg-STP machine (it supplies the core \
                     and cache shapes); pass e.g. --machines=fgstp-small",
                ));
            }
            if self.cores.is_some() {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    "--corun sets per-program core counts; --cores does not apply",
                ));
            }
            if self.sample.is_some() && !c.isolated {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    "--corun with --sample needs --corun-isolated: only private-hierarchy \
                     programs sample independently (shared-hierarchy contention couples \
                     their timing)",
                ));
            }
            if self.telemetry {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    "--corun does not collect CPI stacks; drop --telemetry",
                ));
            }
            if !self.workloads.is_empty() {
                return Err(SpecError::new(
                    SpecErrorKind::Conflict,
                    "--corun names its own workloads; --workloads does not apply",
                ));
            }
            for p in &c.programs {
                if by_name(&p.workload, Scale::Test).is_none() {
                    return Err(SpecError::new(
                        SpecErrorKind::UnknownWorkload,
                        format!(
                            "unknown co-run workload `{}` (one of: {})",
                            p.workload,
                            fgstp_workloads::all_names().join(", ")
                        ),
                    ));
                }
                if p.cores == 0 {
                    return Err(SpecError::new(
                        SpecErrorKind::Value,
                        format!("co-run program `{}` needs at least one core", p.workload),
                    ));
                }
            }
            if c.total_cores() > 64 {
                return Err(SpecError::new(
                    SpecErrorKind::Value,
                    format!("co-run asks for {} cores (max 64)", c.total_cores()),
                ));
            }
        }
        Ok(())
    }

    /// The workload names this spec runs — one per co-run program (in
    /// plan order, duplicates kept: each program produces its own result
    /// row), else the explicit subset, else the whole suite, both in
    /// suite order.
    pub fn workload_names(&self) -> Vec<String> {
        if let Some(c) = &self.corun {
            return c.programs.iter().map(|p| p.workload.clone()).collect();
        }
        if self.workloads.is_empty() {
            suite(Scale::Test)
                .iter()
                .map(|w| w.name.to_owned())
                .collect()
        } else {
            self.workloads.clone()
        }
    }

    /// A [`Session`] configured from this spec: scale, machine set,
    /// workload filter, core override, threads, caching, telemetry and
    /// sampling. `spec.session().plan()` is the spec-to-[`RunPlan`]
    /// conversion.
    pub fn session(&self) -> Session {
        let mut s = Session::new()
            .scale(self.scale)
            .machines(self.machines.iter().copied())
            .telemetry(self.telemetry);
        if !self.workloads.is_empty() {
            s = s.workloads(self.workloads.iter().cloned());
        }
        if let Some(n) = self.cores {
            s = s.cores(n);
        }
        if let Some(n) = self.threads {
            s = s.threads(n);
        }
        if self.no_cache {
            s = s.no_cache();
        }
        s = s.snapshots(self.snapshot);
        if let Some(scfg) = self.sample {
            s = s.sample(scfg);
        }
        if let Some(c) = &self.corun {
            s = s.corun(c.clone());
        }
        s
    }

    /// Validates and runs the spec to completion on a fresh session.
    pub fn run(&self) -> Result<Vec<BenchResult>, SpecError> {
        self.validate()?;
        Ok(self.session().run_suite())
    }

    /// Serializes to the canonical JSON shape ([`ExperimentSpec::from_json`]
    /// round-trips it).
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<usize>| match v {
            Some(n) => Json::Num(n as f64),
            None => Json::Null,
        };
        let sample = match &self.sample {
            Some(s) => Json::Obj(vec![
                ("interval".to_owned(), Json::Num(s.interval as f64)),
                ("warmup".to_owned(), Json::Num(s.warmup as f64)),
                ("detail".to_owned(), Json::Num(s.detail as f64)),
            ]),
            None => Json::Null,
        };
        let corun = match &self.corun {
            Some(c) => Json::Obj(vec![
                (
                    "programs".to_owned(),
                    Json::Arr(
                        c.programs
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("workload".to_owned(), Json::Str(p.workload.clone())),
                                    ("cores".to_owned(), Json::Num(p.cores as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("isolated".to_owned(), Json::Bool(c.isolated)),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            (
                "scale".to_owned(),
                Json::Str(scale_word(self.scale).to_owned()),
            ),
            (
                "machines".to_owned(),
                Json::Arr(
                    self.machines
                        .iter()
                        .map(|k| Json::Str(k.label().to_owned()))
                        .collect(),
                ),
            ),
            (
                "workloads".to_owned(),
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| Json::Str(w.clone()))
                        .collect(),
                ),
            ),
            ("cores".to_owned(), opt_num(self.cores)),
            ("threads".to_owned(), opt_num(self.threads)),
            ("no_cache".to_owned(), Json::Bool(self.no_cache)),
            ("snapshot".to_owned(), Json::Bool(self.snapshot)),
            ("telemetry".to_owned(), Json::Bool(self.telemetry)),
            ("sample".to_owned(), sample),
            ("corun".to_owned(), corun),
        ])
    }

    /// Deserializes and validates a spec from its JSON shape. Missing
    /// fields take their defaults; unknown fields are an error (a
    /// misspelled knob silently ignored would run the wrong experiment).
    pub fn from_json(v: &Json) -> Result<ExperimentSpec, SpecError> {
        let bad = |msg: String| SpecError::new(SpecErrorKind::Json, msg);
        let Json::Obj(members) = v else {
            return Err(bad("spec must be a JSON object".to_owned()));
        };
        let mut spec = ExperimentSpec::default();
        let as_count = |v: &Json, what: &str| -> Result<u64, SpecError> {
            match v.as_f64() {
                Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
                _ => Err(bad(format!("spec field `{what}` must be a whole number"))),
            }
        };
        for (key, value) in members {
            match key.as_str() {
                "scale" => {
                    let w = value
                        .as_str()
                        .ok_or_else(|| bad("spec field `scale` must be a string".to_owned()))?;
                    spec.scale = parse_scale(w)?;
                }
                "machines" => {
                    let arr = value
                        .as_arr()
                        .ok_or_else(|| bad("spec field `machines` must be an array".to_owned()))?;
                    spec.machines = arr
                        .iter()
                        .map(|m| {
                            m.as_str()
                                .ok_or_else(|| bad("machine labels must be strings".to_owned()))
                                .and_then(parse_machine)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "workloads" => {
                    let arr = value
                        .as_arr()
                        .ok_or_else(|| bad("spec field `workloads` must be an array".to_owned()))?;
                    spec.workloads = arr
                        .iter()
                        .map(|w| {
                            w.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| bad("workload names must be strings".to_owned()))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "cores" => {
                    spec.cores = match value {
                        Json::Null => None,
                        v => Some(as_count(v, "cores")? as usize),
                    };
                }
                "threads" => {
                    spec.threads = match value {
                        Json::Null => None,
                        v => Some(as_count(v, "threads")? as usize),
                    };
                }
                "no_cache" => {
                    spec.no_cache = match value {
                        Json::Bool(b) => *b,
                        _ => return Err(bad("spec field `no_cache` must be a bool".to_owned())),
                    };
                }
                "snapshot" => {
                    spec.snapshot = match value {
                        Json::Bool(b) => *b,
                        _ => return Err(bad("spec field `snapshot` must be a bool".to_owned())),
                    };
                }
                "telemetry" => {
                    spec.telemetry = match value {
                        Json::Bool(b) => *b,
                        _ => return Err(bad("spec field `telemetry` must be a bool".to_owned())),
                    };
                }
                "sample" => {
                    spec.sample = match value {
                        Json::Null => None,
                        v => Some(SampleConfig {
                            interval: as_count(
                                v.get("interval").unwrap_or(&Json::Null),
                                "sample.interval",
                            )?,
                            warmup: as_count(
                                v.get("warmup").unwrap_or(&Json::Null),
                                "sample.warmup",
                            )?,
                            detail: as_count(
                                v.get("detail").unwrap_or(&Json::Null),
                                "sample.detail",
                            )?,
                        }),
                    };
                }
                "corun" => {
                    spec.corun = match value {
                        Json::Null => None,
                        v => {
                            let progs =
                                v.get("programs").and_then(Json::as_arr).ok_or_else(|| {
                                    bad("spec field `corun.programs` must be an array".to_owned())
                                })?;
                            let programs = progs
                                .iter()
                                .map(|p| {
                                    let workload = p
                                        .get("workload")
                                        .and_then(Json::as_str)
                                        .ok_or_else(|| {
                                            bad("co-run programs need a `workload` string"
                                                .to_owned())
                                        })?
                                        .to_owned();
                                    let cores = as_count(
                                        p.get("cores").unwrap_or(&Json::Null),
                                        "corun.programs[].cores",
                                    )? as usize;
                                    Ok(CoRunProgramSpec { workload, cores })
                                })
                                .collect::<Result<_, SpecError>>()?;
                            let isolated = match v.get("isolated") {
                                None | Some(Json::Null) => false,
                                Some(Json::Bool(b)) => *b,
                                _ => {
                                    return Err(bad(
                                        "spec field `corun.isolated` must be a bool".to_owned()
                                    ))
                                }
                            };
                            Some(CoRunSpec { programs, isolated })
                        }
                    };
                }
                other => {
                    return Err(bad(format!("unknown spec field `{other}`")));
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text (see [`ExperimentSpec::from_json`]).
    pub fn parse_json(text: &str) -> Result<ExperimentSpec, SpecError> {
        let v = Json::parse(text)
            .map_err(|e| SpecError::new(SpecErrorKind::Json, format!("malformed JSON: {e}")))?;
        ExperimentSpec::from_json(&v)
    }

    /// The job-deduplication identity of this spec: two specs with equal
    /// keys produce bit-identical result rows, so a batch service can
    /// serve one from the other's cached results.
    ///
    /// The key normalizes away pure execution knobs (`threads`,
    /// `no_cache`, `snapshot` — the worker pool, trace cache and
    /// live-point snapshots never change a figure), resolves an empty
    /// workload list to the concrete suite, and is versioned by the
    /// trace-file format ([`fgstp_tracefile::VERSION`]), the live-point
    /// snapshot format ([`fgstp_tracefile::SNAPSHOT_VERSION`]) and the
    /// RV32 translation scheme ([`fgstp_rv::TRANSLATION_VERSION`]):
    /// bumping any of them re-keys every job, exactly like it re-keys
    /// the on-disk caches — so jobs resolved under different frontend or
    /// warm-state semantics can never dedup against each other.
    pub fn dedup_key(&self) -> String {
        let mut normalized = self.clone();
        normalized.threads = None;
        normalized.no_cache = false;
        normalized.snapshot = true;
        if self.corun.is_none() {
            normalized.workloads = self.workload_names();
        }
        let mut body = normalized.to_json();
        if let Json::Obj(members) = &mut body {
            members.retain(|(k, _)| k != "threads" && k != "no_cache" && k != "snapshot");
        }
        let mut key = format!(
            "fgtr-v{}-ss{}-rv{}:",
            fgstp_tracefile::VERSION,
            fgstp_tracefile::SNAPSHOT_VERSION,
            fgstp_rv::TRANSLATION_VERSION
        );
        // Render on one line: the key is a map key, not a document.
        key.push_str(
            &body
                .render()
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(""),
        );
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid_and_round_trips() {
        let spec = ExperimentSpec::default();
        spec.validate().unwrap();
        let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn full_spec_round_trips_through_json_text() {
        let spec = ExperimentSpec {
            scale: Scale::Test,
            machines: vec![MachineKind::FgstpSmall4, MachineKind::FgstpSmall],
            workloads: vec!["perl_hash".to_owned(), "hmmer_dp".to_owned()],
            cores: Some(3),
            threads: Some(2),
            no_cache: true,
            snapshot: true,
            telemetry: true,
            sample: None,
            corun: None,
        };
        spec.validate().unwrap();
        let text = spec.to_json().render();
        assert_eq!(ExperimentSpec::parse_json(&text).unwrap(), spec);

        let sampled = ExperimentSpec {
            cores: None,
            sample: Some(SampleConfig {
                interval: 2_000,
                warmup: 300,
                detail: 150,
            }),
            ..spec
        };
        let text = sampled.to_json().render();
        assert_eq!(ExperimentSpec::parse_json(&text).unwrap(), sampled);
    }

    #[test]
    fn args_build_the_same_spec_as_json() {
        let spec = ExperimentSpec::from_args(&[
            "test",
            "--workloads=perl_hash,hmmer_dp",
            "--machines=fgstp-small,fgstp-medium",
            "--cores=3",
            "--threads=2",
            "--no-cache",
            "--telemetry",
            "--no-snapshot",
        ])
        .unwrap();
        assert_eq!(spec.scale, Scale::Test);
        assert_eq!(spec.workloads, ["perl_hash", "hmmer_dp"]);
        assert_eq!(
            spec.machines,
            [MachineKind::FgstpSmall, MachineKind::FgstpMedium]
        );
        assert_eq!(spec.cores, Some(3));
        assert_eq!(spec.threads, Some(2));
        assert!(spec.no_cache && spec.telemetry);
        assert!(!spec.snapshot, "--no-snapshot turns live-points off");
        assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);
        // --snapshot restores the default explicitly.
        let mut back = spec.clone();
        back.apply_arg("--snapshot").unwrap();
        assert!(back.snapshot);
    }

    #[test]
    fn machine_sets_resolve_by_name() {
        assert_eq!(
            parse_machine_set("small-cmp").unwrap(),
            MachineKind::SMALL_CMP.to_vec()
        );
        assert_eq!(
            parse_machine_set("medium-cmp").unwrap(),
            MachineKind::MEDIUM_CMP.to_vec()
        );
        assert_eq!(parse_machine_set("all").unwrap(), MachineKind::ALL.to_vec());
        assert_eq!(
            parse_machine_set("scaling").unwrap(),
            MachineKind::WITH_SCALING.to_vec()
        );
        assert_eq!(
            parse_machine_set("single-small,fgstp-small-4").unwrap(),
            vec![MachineKind::SingleSmall, MachineKind::FgstpSmall4]
        );
        assert_eq!(
            parse_machine_set("nope").unwrap_err().kind,
            SpecErrorKind::UnknownMachine
        );
    }

    #[test]
    fn validation_rejects_each_unsatisfiable_shape() {
        let base = ExperimentSpec {
            scale: Scale::Test,
            ..ExperimentSpec::default()
        };

        let mut s = base.clone();
        s.workloads = vec!["nope".to_owned()];
        assert_eq!(
            s.validate().unwrap_err().kind,
            SpecErrorKind::UnknownWorkload
        );

        let mut s = base.clone();
        s.machines.clear();
        assert_eq!(
            s.validate().unwrap_err().kind,
            SpecErrorKind::UnknownMachine
        );

        let mut s = base.clone();
        s.cores = Some(2); // SMALL_CMP includes non-Fg-STP machines.
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        let mut s = base.clone();
        s.machines = vec![MachineKind::FgstpSmall];
        s.cores = Some(0);
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);

        let mut s = base.clone();
        s.machines = vec![MachineKind::FgstpSmall];
        s.cores = Some(2);
        s.sample = Some(SampleConfig::default());
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        let mut s = base.clone();
        s.threads = Some(0);
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);

        let mut s = base.clone();
        s.sample = Some(SampleConfig {
            interval: 100,
            warmup: 80,
            detail: 30,
        });
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);

        let mut s = base;
        s.sample = Some(SampleConfig {
            interval: 100,
            warmup: 50,
            detail: 0,
        });
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);
    }

    #[test]
    fn from_json_rejects_unknown_fields_and_bad_shapes() {
        let e = ExperimentSpec::parse_json(r#"{"scael": "test"}"#).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Json);
        assert!(e.message.contains("scael"), "{e}");

        let e = ExperimentSpec::parse_json(r#"{"scale": 4}"#).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Json);

        let e = ExperimentSpec::parse_json(r#"{"cores": 1.5}"#).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Json);

        let e = ExperimentSpec::parse_json("{not json").unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Json);

        // Validation runs on the parsed document too.
        let e = ExperimentSpec::parse_json(r#"{"workloads": ["nope"]}"#).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::UnknownWorkload);
    }

    #[test]
    fn from_args_rejects_unknown_flags_with_usage() {
        let e = ExperimentSpec::from_args(&["--bogus"]).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::UnknownFlag);
        assert!(e.message.contains("--workloads="), "{e}");
        let e = ExperimentSpec::from_args(&["--threads=lots"]).unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Value);
    }

    #[test]
    fn dedup_key_ignores_execution_knobs_but_not_figures() {
        let a = ExperimentSpec {
            scale: Scale::Test,
            ..ExperimentSpec::default()
        };
        let mut b = a.clone();
        b.threads = Some(7);
        b.no_cache = true;
        b.snapshot = false;
        assert_eq!(
            a.dedup_key(),
            b.dedup_key(),
            "execution knobs (threads, caching, snapshots) normalize away"
        );

        // An explicit full-suite workload list equals the implicit one.
        let mut c = a.clone();
        c.workloads = a.workload_names();
        assert_eq!(a.dedup_key(), c.dedup_key());

        let mut d = a.clone();
        d.telemetry = true;
        assert_ne!(
            a.dedup_key(),
            d.dedup_key(),
            "telemetry changes row content"
        );

        let mut e = a.clone();
        e.scale = Scale::Small;
        assert_ne!(a.dedup_key(), e.dedup_key());

        let mut f = a.clone();
        f.workloads = vec!["perl_hash".to_owned()];
        assert_ne!(a.dedup_key(), f.dedup_key());

        assert!(
            a.dedup_key().starts_with(&format!(
                "fgtr-v{}-ss{}-rv{}:",
                fgstp_tracefile::VERSION,
                fgstp_tracefile::SNAPSHOT_VERSION,
                fgstp_rv::TRANSLATION_VERSION
            )),
            "key is versioned by the trace format, the snapshot format \
             and the RV translation"
        );
    }

    #[test]
    fn corun_flags_build_a_validated_spec_that_round_trips() {
        let spec = ExperimentSpec::from_args(&[
            "test",
            "--machines=fgstp-small",
            "--corun=perl_hash:2,hmmer_dp:2",
        ])
        .unwrap();
        let c = spec.corun.as_ref().unwrap();
        assert_eq!(c.programs.len(), 2);
        assert_eq!(c.programs[0].workload, "perl_hash");
        assert_eq!(c.programs[0].cores, 2);
        assert!(!c.isolated);
        assert_eq!(c.total_cores(), 4);
        assert_eq!(spec.workload_names(), ["perl_hash", "hmmer_dp"]);
        assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);

        // Flag order does not matter; cores default to 1.
        let iso = ExperimentSpec::from_args(&[
            "test",
            "--corun-isolated",
            "--machines=fgstp-small",
            "--corun=perl_hash,hmmer_dp:3",
        ])
        .unwrap();
        let c = iso.corun.as_ref().unwrap();
        assert!(c.isolated);
        assert_eq!(c.programs[0].cores, 1);
        assert_eq!(c.programs[1].cores, 3);
        assert_eq!(ExperimentSpec::from_json(&iso.to_json()).unwrap(), iso);
        assert_ne!(spec.dedup_key(), iso.dedup_key());
    }

    #[test]
    fn corun_validation_rejects_each_conflict() {
        let base = || {
            let mut s = ExperimentSpec {
                scale: Scale::Test,
                machines: vec![MachineKind::FgstpSmall],
                ..ExperimentSpec::default()
            };
            s.corun = Some(CoRunSpec::parse("perl_hash:2,hmmer_dp").unwrap());
            s
        };
        base().validate().unwrap();

        let mut s = base();
        s.machines = MachineKind::SMALL_CMP.to_vec();
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        let mut s = base();
        s.machines = vec![MachineKind::SingleSmall];
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        let mut s = base();
        s.cores = Some(2);
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        // A shared-hierarchy co-run cannot be sampled; an isolated one can.
        let mut s = base();
        s.sample = Some(SampleConfig::default());
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);
        s.corun.as_mut().unwrap().isolated = true;
        s.validate().unwrap();

        let mut s = base();
        s.telemetry = true;
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        let mut s = base();
        s.workloads = vec!["perl_hash".to_owned()];
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Conflict);

        let mut s = base();
        s.corun.as_mut().unwrap().programs.clear();
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);

        let mut s = base();
        s.corun.as_mut().unwrap().programs[0].workload = "nope".to_owned();
        assert_eq!(
            s.validate().unwrap_err().kind,
            SpecErrorKind::UnknownWorkload
        );

        let mut s = base();
        s.corun.as_mut().unwrap().programs[0].cores = 0;
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);

        let mut s = base();
        s.corun.as_mut().unwrap().programs[0].cores = 100;
        assert_eq!(s.validate().unwrap_err().kind, SpecErrorKind::Value);

        // A non-numeric suffix is part of the workload name (it may be a
        // prefixed name like `rv:quicksort`), so the mistake surfaces at
        // validation as an unknown workload, not at parse time.
        let mut s = base();
        s.corun = Some(CoRunSpec::parse("perl_hash:lots").unwrap());
        assert_eq!(
            s.validate().unwrap_err().kind,
            SpecErrorKind::UnknownWorkload
        );
    }

    #[test]
    fn corun_parse_keeps_prefixed_workload_names_intact() {
        let c = CoRunSpec::parse("rv:quicksort,rv:crc32:2,perl_hash:3").unwrap();
        assert_eq!(
            c.programs,
            vec![
                CoRunProgramSpec {
                    workload: "rv:quicksort".to_owned(),
                    cores: 1,
                },
                CoRunProgramSpec {
                    workload: "rv:crc32".to_owned(),
                    cores: 2,
                },
                CoRunProgramSpec {
                    workload: "perl_hash".to_owned(),
                    cores: 3,
                },
            ]
        );
        let spec = ExperimentSpec {
            machines: vec![MachineKind::FgstpSmall4],
            corun: Some(c),
            ..ExperimentSpec::default()
        };
        spec.validate().unwrap();
    }

    #[test]
    fn spec_session_runs_the_filtered_matrix() {
        let spec = ExperimentSpec::from_args(&[
            "test",
            "--workloads=perl_hash,hmmer_dp",
            "--machines=single-small,fgstp-small",
            "--threads=2",
            "--no-cache",
        ])
        .unwrap();
        let results = spec.run().unwrap();
        assert_eq!(results.len(), 2);
        for b in &results {
            assert_eq!(b.runs.len(), 2);
            assert_eq!(b.runs[0].kind, MachineKind::SingleSmall);
            assert_eq!(b.runs[1].kind, MachineKind::FgstpSmall);
        }
    }

    #[test]
    fn cores_override_flows_through_the_session() {
        let spec = ExperimentSpec::from_args(&[
            "test",
            "--workloads=hmmer_dp",
            "--machines=fgstp-small",
            "--cores=3",
            "--no-cache",
        ])
        .unwrap();
        let results = spec.run().unwrap();
        assert_eq!(results[0].runs[0].result.cores.len(), 3);
    }
}
