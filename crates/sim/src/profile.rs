//! Phase profiling: per-interval IPC from recorded commit timestamps.
//!
//! Programs execute in phases; reconfiguration controllers (see
//! `fgstp::adaptive`) and partitioning policies care where those phases
//! are. This module derives an IPC time series from one recorded run: the
//! trace is split into fixed-size instruction intervals and each
//! interval's IPC is computed from the commit cycles of its first and last
//! instructions.

use fgstp_isa::DynInst;
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::{run_single_recorded, CoreConfig, PipeRecorder};

/// IPC time series over fixed instruction intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Instructions per interval.
    pub interval: usize,
    /// IPC of each interval, in execution order.
    pub ipc: Vec<f64>,
}

impl PhaseProfile {
    /// Mean of the interval IPCs (0 for an empty profile).
    pub fn mean_ipc(&self) -> f64 {
        if self.ipc.is_empty() {
            0.0
        } else {
            self.ipc.iter().sum::<f64>() / self.ipc.len() as f64
        }
    }

    /// Ratio of the fastest to the slowest interval (1.0 when uniform;
    /// large values indicate strong phase behaviour).
    pub fn phase_contrast(&self) -> f64 {
        let min = self.ipc.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.ipc.iter().copied().fold(0.0f64, f64::max);
        if !min.is_finite() || min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }

    /// Renders the series as a one-line unicode sparkline.
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.ipc.iter().copied().fold(0.0f64, f64::max).max(1e-9);
        self.ipc
            .iter()
            .map(|&v| BARS[((v / max * 7.0).round() as usize).min(7)])
            .collect()
    }
}

/// Profiles `trace` on a single core described by `cfg`, with `interval`
/// instructions per sample.
///
/// # Panics
///
/// Panics if `interval` is zero.
pub fn profile_single(
    trace: &[DynInst],
    cfg: &CoreConfig,
    hcfg: &HierarchyConfig,
    interval: usize,
) -> PhaseProfile {
    assert!(interval > 0, "interval must be positive");
    let (_, rec) = run_single_recorded(trace, cfg, hcfg, Some(PipeRecorder::new()));
    let rec = rec.expect("recorder attached");
    let commits: Vec<u64> = rec.iter().filter_map(|(_, _, ev)| ev.commit).collect();
    profile_from_commits(&commits, interval)
}

/// Builds the profile from an ordered list of per-instruction commit
/// cycles.
pub fn profile_from_commits(commits: &[u64], interval: usize) -> PhaseProfile {
    assert!(interval > 0, "interval must be positive");
    let mut ipc = Vec::new();
    for chunk in commits.chunks(interval) {
        if chunk.len() < 2 {
            break;
        }
        let span = chunk[chunk.len() - 1].saturating_sub(chunk[0]).max(1);
        ipc.push((chunk.len() - 1) as f64 / span as f64);
    }
    PhaseProfile { interval, ipc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::trace_workload;
    use fgstp_workloads::{by_name, Scale};

    #[test]
    fn profile_from_commits_computes_interval_ipc() {
        // 1 instruction per cycle for 10, then 1 per 4 cycles for 10.
        let mut commits: Vec<u64> = (0..10).collect();
        commits.extend((0..10).map(|i| 9 + (i + 1) * 4));
        let p = profile_from_commits(&commits, 10);
        assert_eq!(p.ipc.len(), 2);
        assert!(p.ipc[0] > 0.9, "{:?}", p.ipc);
        assert!(p.ipc[1] < 0.3, "{:?}", p.ipc);
        assert!(p.phase_contrast() > 3.0);
    }

    #[test]
    fn real_workload_profile_is_sane() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let p = profile_single(
            t.insts(),
            &CoreConfig::small(),
            &HierarchyConfig::small(1),
            1000,
        );
        assert!(!p.ipc.is_empty());
        assert!(
            p.mean_ipc() > 0.1 && p.mean_ipc() <= 2.0,
            "{}",
            p.mean_ipc()
        );
        assert_eq!(p.sparkline().chars().count(), p.ipc.len());
    }

    #[test]
    fn uniform_series_has_unit_contrast() {
        let commits: Vec<u64> = (0..100).map(|i| i * 2).collect();
        let p = profile_from_commits(&commits, 20);
        assert!((p.phase_contrast() - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        profile_from_commits(&[1, 2, 3], 0);
    }
}
