//! Low-level run primitives: one trace through one machine model.
//!
//! The primary driver API is [`crate::Session`] — it owns tracing, the
//! on-disk trace cache and the worker pool. This module keeps the
//! per-trace primitives the session is built from ([`run_on`],
//! [`trace_workload`]) plus the result types, and retains the historical
//! free functions ([`run_suite`]) as thin compatibility shims over a
//! default session.

use fgstp::{
    run_corun, run_fgstp, run_fgstp_with_sink, CoRunContention, CoRunPlan, CoRunProgram, FgstpStats,
};
use fgstp_isa::{DynInst, Trace};
use fgstp_mem::HierarchyConfig;
use fgstp_ooo::CoreConfig;
use fgstp_ooo::{run_single, run_single_with_sink, RunResult, WarmRun};
use fgstp_sampling::{
    run_plan_fgstp_instrumented, run_plan_fgstp_with, run_plan_single_instrumented,
    run_plan_single_with, sample_fgstp, sample_fgstp_instrumented, sample_fgstp_stream,
    sample_single, sample_single_instrumented, sample_single_stream, SampleConfig, SamplePlan,
    SampledRun, WindowExec, WindowJob,
};
use fgstp_telemetry::{CpiSink, CpiStack, Episode};
use fgstp_workloads::{Scale, Workload};

use crate::presets::MachineKind;
use crate::session::Session;

/// A window-dispatch hook for sampled runs: executes each pure
/// [`WindowJob`] through the provided [`WindowExec`] — possibly
/// concurrently — and returns the results in job order. The session
/// passes its worker pool here; `None` runs the windows serially.
pub type WindowPool<'a> = &'a (dyn Fn(&[WindowJob], WindowExec) -> Vec<WarmRun> + Sync);

/// Where one program sat inside a co-run (see [`run_on_corun`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoRunInfo {
    /// Index of the program in the co-run plan.
    pub program: usize,
    /// First chip core the program owned.
    pub first_core: usize,
    /// Cores the program's machine instance owned.
    pub cores: usize,
    /// Global cycle the program started.
    pub start_cycle: u64,
    /// Global cycle the program finished.
    pub finish_cycle: u64,
    /// Global cycles until the whole co-run drained.
    pub total_cycles: u64,
    /// Whether the co-run ran with private hierarchies (contention off).
    pub isolated: bool,
}

/// Outcome of one (workload, machine) run.
#[derive(Debug, Clone)]
pub struct MachineRun {
    /// Machine model that ran.
    pub kind: MachineKind,
    /// Timing result.
    pub result: RunResult,
    /// Fg-STP-specific statistics, when `kind` is an Fg-STP preset.
    pub fgstp: Option<FgstpStats>,
    /// Aggregate CPI stack (all cores merged), when the run was
    /// instrumented (see [`run_on_instrumented`] and
    /// [`Session::telemetry`]).
    pub cpi: Option<CpiStack>,
    /// The sampled-simulation record, when the run came from
    /// [`run_on_sampled`] (or [`Session::sample`]): interval schedule, CPI
    /// estimate with its 95% confidence interval, and detail-reduction
    /// accounting. `result` then carries *projected* totals.
    pub sampled: Option<SampledRun>,
    /// The program's placement and window inside a co-run, when the run
    /// came from [`run_on_corun`] (or a `--corun` spec). `result.cycles`
    /// then counts from the program's arrival to its own completion, and
    /// `result.mem` is the program's slice of the shared hierarchy.
    pub corun: Option<CoRunInfo>,
}

impl MachineRun {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.result.ipc()
    }
}

/// Results of one workload across the requested machines.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name.
    pub name: &'static str,
    /// Dynamic instructions executed.
    pub committed: u64,
    /// One entry per requested machine, in request order. Empty when the
    /// workload failed to trace (see [`BenchResult::error`]).
    pub runs: Vec<MachineRun>,
    /// Why the workload produced no runs (e.g. its trace exceeded the
    /// budget), or `None` on success.
    pub error: Option<String>,
}

impl BenchResult {
    /// The run of machine `kind`, if it was part of the run set.
    pub fn run_of(&self, kind: MachineKind) -> Option<&MachineRun> {
        self.runs.iter().find(|r| r.kind == kind)
    }

    /// Speedup of machine `of` over machine `over` on this workload, or
    /// `None` if either machine was not part of the run set.
    pub fn try_speedup(&self, of: MachineKind, over: MachineKind) -> Option<f64> {
        Some(
            self.run_of(of)?
                .result
                .speedup_over(&self.run_of(over)?.result),
        )
    }

    /// Speedup of machine `of` over machine `over` on this workload.
    ///
    /// # Panics
    ///
    /// Panics if either machine was not part of the run set — use
    /// [`BenchResult::try_speedup`] when the machine set is not static.
    pub fn speedup(&self, of: MachineKind, over: MachineKind) -> f64 {
        self.try_speedup(of, over).unwrap_or_else(|| {
            let missing = if self.run_of(of).is_none() { of } else { over };
            panic!("machine {missing} not in result set for {}", self.name)
        })
    }
}

/// Runs one trace through one machine preset.
pub fn run_on(kind: MachineKind, trace: &[DynInst]) -> MachineRun {
    run_on_with_cores(kind, trace, None)
}

/// Like [`run_on`], but overrides the Fg-STP core count when `cores` is
/// set (the CLI `--cores` flag and the E13 scaling sweep).
///
/// # Panics
///
/// Panics if `cores` is set for a non-Fg-STP preset (those machines have a
/// fixed shape).
pub fn run_on_with_cores(kind: MachineKind, trace: &[DynInst], cores: Option<usize>) -> MachineRun {
    if let Some(mut cfg) = kind.try_fgstp_config() {
        if let Some(n) = cores {
            cfg = cfg.with_cores(n);
        }
        let hcfg = kind.hierarchy_for(cfg.num_cores);
        let (result, stats) = run_fgstp(trace, &cfg, &hcfg);
        MachineRun {
            kind,
            result,
            fgstp: Some(stats),
            cpi: None,
            sampled: None,
            corun: None,
        }
    } else {
        assert!(
            cores.is_none(),
            "--cores only applies to Fg-STP machines, not {kind}"
        );
        let result = run_single(trace, &kind.core_config(), &kind.hierarchy_config());
        MachineRun {
            kind,
            result,
            fgstp: None,
            cpi: None,
            sampled: None,
            corun: None,
        }
    }
}

/// Runs a multi-program co-run on one Fg-STP machine preset: program `i`
/// is `workloads[i]`/`traces[i]` on `cores[i]` consecutive chip cores (see
/// [`fgstp::run_corun`] for the arbitration and determinism contracts).
/// With `isolated` every program instead gets a private hierarchy and
/// reproduces its solo cycle count exactly.
///
/// Returns one [`BenchResult`] per program, in plan order, each holding a
/// single [`MachineRun`] whose [`MachineRun::corun`] records the
/// placement; `result.mem` is the program's slice of the shared hierarchy
/// (its L1s plus its requestor share of L2/DRAM traffic).
///
/// # Panics
///
/// Panics if `kind` is not an Fg-STP preset or the slice lengths disagree
/// — `--corun` specs are validated upstream by
/// [`crate::ExperimentSpec::validate`].
pub fn run_on_corun(
    kind: MachineKind,
    workloads: &[Workload],
    traces: &[Trace],
    cores: &[usize],
    isolated: bool,
) -> Vec<BenchResult> {
    assert!(
        workloads.len() == traces.len() && traces.len() == cores.len(),
        "one workload, trace and core count per co-running program"
    );
    let base = kind
        .try_fgstp_config()
        .unwrap_or_else(|| panic!("--corun needs an Fg-STP machine, not {kind}"));
    let plan = CoRunPlan {
        programs: cores
            .iter()
            .map(|&n| CoRunProgram::new(base.clone().with_cores(n)))
            .collect(),
        contention: if isolated {
            CoRunContention::isolated()
        } else {
            CoRunContention::shared()
        },
    };
    let hcfg = kind.hierarchy_for(plan.total_cores());
    let insts: Vec<&[DynInst]> = traces.iter().map(|t| t.insts()).collect();
    let co = run_corun(&insts, &plan, &hcfg);
    workloads
        .iter()
        .zip(traces)
        .zip(co.programs)
        .enumerate()
        .map(|(i, ((w, t), p))| BenchResult {
            name: w.name,
            committed: t.len() as u64,
            runs: vec![MachineRun {
                kind,
                fgstp: Some(p.stats),
                cpi: None,
                sampled: None,
                corun: Some(CoRunInfo {
                    program: i,
                    first_core: p.first_core,
                    cores: cores[i],
                    start_cycle: p.start_cycle,
                    finish_cycle: p.finish_cycle,
                    total_cycles: co.total_cycles,
                    isolated,
                }),
                result: p.result,
            }],
            error: None,
        })
        .collect()
}

/// Runs one trace through one machine preset under SMARTS-style systematic
/// sampling (see [`fgstp_sampling`]): most of the trace retires through
/// functional warming, and only periodic windows run on the detailed
/// machine. The returned [`MachineRun::result`] carries *projected* totals
/// — `cycles` is the rounded CPI-estimate projection, `committed` the full
/// trace length — while [`MachineRun::sampled`] holds the interval record
/// and confidence interval. With `telemetry` the merged CPI stack over the
/// detailed windows lands in [`MachineRun::cpi`].
pub fn run_on_sampled(
    kind: MachineKind,
    trace: &[DynInst],
    scfg: &SampleConfig,
    telemetry: bool,
) -> MachineRun {
    let sampled = if let Some(cfg) = kind.try_fgstp_config() {
        let hcfg = kind.hierarchy_for(cfg.num_cores);
        if telemetry {
            sample_fgstp_instrumented(trace, &cfg, &hcfg, scfg)
        } else {
            sample_fgstp(trace, &cfg, &hcfg, scfg)
        }
    } else {
        let ccfg = kind.core_config();
        let hcfg = kind.hierarchy_config();
        if telemetry {
            sample_single_instrumented(trace, &ccfg, &hcfg, scfg)
        } else {
            sample_single(trace, &ccfg, &hcfg, scfg)
        }
    };
    sampled_machine_run(kind, sampled)
}

/// The functional-warming machine shape a preset samples with: the core
/// configuration (an Fg-STP preset warms with its per-core config) and
/// the hierarchy built for the preset's core count. Live-point snapshots
/// are keyed on a fingerprint of this shape, so a preset change orphans
/// its stored snapshots instead of replaying them on the wrong machine.
pub fn warm_shape(kind: MachineKind) -> (CoreConfig, HierarchyConfig) {
    if let Some(cfg) = kind.try_fgstp_config() {
        let hcfg = kind.hierarchy_for(cfg.num_cores);
        (cfg.core, hcfg)
    } else {
        (kind.core_config(), kind.hierarchy_config())
    }
}

/// Plans a sampled run of `kind` over a streamed trace: one pass of
/// continuous functional warming that captures a live-point per detailed
/// window (see [`fgstp_sampling::SamplePlan::plan_stream`]).
pub fn plan_on_sampled(
    kind: MachineKind,
    trace: impl IntoIterator<Item = DynInst>,
    scfg: &SampleConfig,
) -> SamplePlan {
    let (ccfg, hcfg) = warm_shape(kind);
    SamplePlan::plan_stream(trace, &ccfg, &hcfg, scfg)
}

/// Executes a prepared [`SamplePlan`] on machine `kind`. With `telemetry`
/// the detailed windows run serially through a shared CPI sink (cycle
/// results still match the uninstrumented path exactly); otherwise the
/// caller-supplied `exec` hook dispatches the pure window jobs — the
/// session passes its worker pool here, making sampled runs
/// embarrassingly parallel. Results are merged in systematic-interval
/// order, so every pool size produces bit-identical estimates.
pub fn run_on_sampled_plan(
    kind: MachineKind,
    plan: &SamplePlan,
    telemetry: bool,
    exec: Option<WindowPool>,
) -> MachineRun {
    let serial = |jobs: &[WindowJob], run: WindowExec| jobs.iter().map(run).collect();
    let sampled = if let Some(cfg) = kind.try_fgstp_config() {
        let hcfg = kind.hierarchy_for(cfg.num_cores);
        if telemetry {
            run_plan_fgstp_instrumented(plan, &cfg, &hcfg)
        } else if let Some(exec) = exec {
            run_plan_fgstp_with(plan, &cfg, &hcfg, |jobs, run| exec(jobs, run))
        } else {
            run_plan_fgstp_with(plan, &cfg, &hcfg, serial)
        }
    } else {
        let ccfg = kind.core_config();
        let hcfg = kind.hierarchy_config();
        if telemetry {
            run_plan_single_instrumented(plan, &ccfg, &hcfg)
        } else if let Some(exec) = exec {
            run_plan_single_with(plan, &ccfg, &hcfg, |jobs, run| exec(jobs, run))
        } else {
            run_plan_single_with(plan, &ccfg, &hcfg, serial)
        }
    };
    sampled_machine_run(kind, sampled)
}

/// Wraps a [`SampledRun`] in the standard [`MachineRun`] projection:
/// `result.cycles` is the rounded CPI-estimate projection, `committed`
/// the full trace length.
fn sampled_machine_run(kind: MachineKind, mut sampled: SampledRun) -> MachineRun {
    let result = RunResult {
        cycles: sampled.est_cycles().round() as u64,
        committed: sampled.total_insts,
        cores: Vec::new(),
        branches: sampled.branches,
        mem: sampled.mem.clone(),
    };
    MachineRun {
        kind,
        result,
        fgstp: None,
        cpi: sampled.cpi_stack.take(),
        sampled: Some(sampled),
        corun: None,
    }
}

/// Runs an *isolated* multi-program co-run under sampling: each program
/// is sampled independently on its own core slice (`cores[i]`-core
/// machine, private hierarchy), which is exactly what an isolated co-run
/// computes in full detail. Shared-hierarchy co-runs cannot be sampled —
/// contention couples the programs' timing, so there is no per-program
/// interval schedule — and `--corun --sample` without `--isolated` is
/// rejected upstream by spec validation.
///
/// Returns one [`BenchResult`] per program in plan order, each carrying
/// the sampled record and its co-run placement.
///
/// # Panics
///
/// Panics if `kind` is not an Fg-STP preset or the slice lengths
/// disagree.
pub fn run_on_sampled_corun_isolated(
    kind: MachineKind,
    workloads: &[Workload],
    traces: &[Trace],
    cores: &[usize],
    scfg: &SampleConfig,
) -> Vec<BenchResult> {
    assert_eq!(
        traces.len(),
        cores.len(),
        "one trace and core count per co-running program"
    );
    let plans: Vec<SamplePlan> = traces
        .iter()
        .zip(cores)
        .map(|(t, &n)| {
            let (ccfg, hcfg) = corun_warm_shape(kind, n);
            SamplePlan::plan(t.insts(), &ccfg, &hcfg, scfg)
        })
        .collect();
    run_on_sampled_corun_isolated_plans(kind, workloads, plans, cores, None)
}

/// The functional-warming machine shape of one program in a sampled
/// isolated co-run: the base Fg-STP preset's per-core configuration plus
/// a private hierarchy sized for the program's core slice. This is the
/// shape live-point snapshots of co-run programs are fingerprinted on.
///
/// # Panics
///
/// Panics if `kind` is not an Fg-STP preset.
pub fn corun_warm_shape(kind: MachineKind, cores: usize) -> (CoreConfig, HierarchyConfig) {
    let base = kind
        .try_fgstp_config()
        .unwrap_or_else(|| panic!("--corun needs an Fg-STP machine, not {kind}"));
    (base.with_cores(cores).core, kind.hierarchy_for(cores))
}

/// Executes prepared per-program [`SamplePlan`]s as an isolated sampled
/// co-run (see [`run_on_sampled_corun_isolated`]); the optional `exec`
/// hook dispatches each plan's pure window jobs, exactly as in
/// [`run_on_sampled_plan`].
pub fn run_on_sampled_corun_isolated_plans(
    kind: MachineKind,
    workloads: &[Workload],
    plans: Vec<SamplePlan>,
    cores: &[usize],
    exec: Option<WindowPool>,
) -> Vec<BenchResult> {
    assert!(
        workloads.len() == plans.len() && plans.len() == cores.len(),
        "one workload, plan and core count per co-running program"
    );
    let base = kind
        .try_fgstp_config()
        .unwrap_or_else(|| panic!("--corun needs an Fg-STP machine, not {kind}"));
    let serial = |jobs: &[WindowJob], run: WindowExec| jobs.iter().map(run).collect();
    let mut results = Vec::with_capacity(workloads.len());
    let mut first_core = 0usize;
    let mut runs: Vec<(SampledRun, usize)> = Vec::with_capacity(workloads.len());
    for (plan, &n) in plans.iter().zip(cores) {
        let cfg = base.clone().with_cores(n);
        let hcfg = kind.hierarchy_for(n);
        let sampled = match exec {
            Some(exec) => run_plan_fgstp_with(plan, &cfg, &hcfg, |jobs, run| exec(jobs, run)),
            None => run_plan_fgstp_with(plan, &cfg, &hcfg, serial),
        };
        runs.push((sampled, n));
    }
    let total_cycles = runs
        .iter()
        .map(|(s, _)| s.est_cycles().round() as u64)
        .max()
        .unwrap_or(0);
    for (i, (w, (sampled, n))) in workloads.iter().zip(runs).enumerate() {
        let est = sampled.est_cycles().round() as u64;
        let mut run = sampled_machine_run(kind, sampled);
        run.corun = Some(CoRunInfo {
            program: i,
            first_core,
            cores: n,
            start_cycle: 0,
            finish_cycle: est,
            total_cycles,
            isolated: true,
        });
        first_core += n;
        results.push(BenchResult {
            name: w.name,
            committed: run.result.committed,
            runs: vec![run],
            error: None,
        });
    }
    results
}

/// Like [`run_on_sampled`] (uninstrumented), but consumes the trace as a
/// stream — e.g. an [`fgstp_tracefile::OwnedTraceReader`] straight off the
/// on-disk cache — so the decoded `Vec<DynInst>` is never materialized; at
/// most one detailed window of instructions is in memory at a time.
/// Results are bit-identical to the slice path: the sampler's slice and
/// stream entry points share one interval walker.
pub fn run_on_sampled_stream(
    kind: MachineKind,
    trace: impl IntoIterator<Item = DynInst>,
    scfg: &SampleConfig,
) -> MachineRun {
    let sampled = if let Some(cfg) = kind.try_fgstp_config() {
        let hcfg = kind.hierarchy_for(cfg.num_cores);
        sample_fgstp_stream(trace, &cfg, &hcfg, scfg)
    } else {
        sample_single_stream(trace, &kind.core_config(), &kind.hierarchy_config(), scfg)
    };
    sampled_machine_run(kind, sampled)
}

/// Runs one trace through one machine preset with cycle accounting: the
/// returned [`MachineRun`] carries the merged CPI stack, and when
/// `episodes` is set the per-core stall timeline comes back alongside it
/// (for [`fgstp_telemetry::write_chrome_trace`] export).
///
/// Timing is bit-identical to [`run_on`]; only the observability differs.
pub fn run_on_instrumented(
    kind: MachineKind,
    trace: &[DynInst],
    episodes: bool,
) -> (MachineRun, Vec<Episode>) {
    run_on_instrumented_with_cores(kind, trace, episodes, None)
}

/// Like [`run_on_instrumented`], with the Fg-STP core-count override of
/// [`run_on_with_cores`].
///
/// # Panics
///
/// Panics if `cores` is set for a non-Fg-STP preset.
pub fn run_on_instrumented_with_cores(
    kind: MachineKind,
    trace: &[DynInst],
    episodes: bool,
    cores: Option<usize>,
) -> (MachineRun, Vec<Episode>) {
    let run;
    let mut sink;
    if let Some(mut cfg) = kind.try_fgstp_config() {
        if let Some(n) = cores {
            cfg = cfg.with_cores(n);
        }
        let hcfg = kind.hierarchy_for(cfg.num_cores);
        sink = if episodes {
            CpiSink::with_episodes(cfg.num_cores)
        } else {
            CpiSink::new(cfg.num_cores)
        };
        let (result, stats) = run_fgstp_with_sink(trace, &cfg, &hcfg, &mut sink);
        run = MachineRun {
            kind,
            result,
            fgstp: Some(stats),
            cpi: None,
            sampled: None,
            corun: None,
        };
    } else {
        assert!(
            cores.is_none(),
            "--cores only applies to Fg-STP machines, not {kind}"
        );
        sink = if episodes {
            CpiSink::with_episodes(1)
        } else {
            CpiSink::new(1)
        };
        let result = run_single_with_sink(
            trace,
            &kind.core_config(),
            &kind.hierarchy_config(),
            &mut sink,
        );
        run = MachineRun {
            kind,
            result,
            fgstp: None,
            cpi: None,
            sampled: None,
            corun: None,
        };
    }
    let timeline = sink.finish_episodes(run.result.cycles);
    (
        MachineRun {
            cpi: Some(sink.merged()),
            ..run
        },
        timeline,
    )
}

/// Traces one workload (panicking on a kernel fault, which would be a
/// suite bug) and returns its committed path.
///
/// This always re-traces; [`Session::trace`] consults the on-disk cache
/// first. Use [`try_trace_workload`] to handle failures gracefully.
pub fn trace_workload(w: &Workload, scale: Scale) -> fgstp_isa::Trace {
    try_trace_workload(w, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// Traces one workload, reporting a tracing failure (budget exhaustion, a
/// kernel fault) as an error instead of panicking — a single bad workload
/// must not take down a whole suite run.
pub fn try_trace_workload(w: &Workload, scale: Scale) -> Result<fgstp_isa::Trace, String> {
    w.try_trace(scale.trace_budget())
        .map_err(|e| format!("workload {} failed to trace: {e}", w.name))
}

/// Runs the whole suite at `scale` on each machine in `kinds`.
///
/// Compatibility shim: delegates to a default [`Session`] (all cores,
/// trace cache on). Prefer building a `Session` directly for explicit
/// control of threads and caching.
pub fn run_suite(scale: Scale, kinds: &[MachineKind]) -> Vec<BenchResult> {
    Session::new()
        .scale(scale)
        .machines(kinds.iter().copied())
        .run_suite()
}

/// Geometric mean of a slice of positive values (0 for an empty slice).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_workloads::by_name;

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_workload_runs_on_all_machines() {
        let w = by_name("perl_hash", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        for k in MachineKind::ALL {
            let r = run_on(k, t.insts());
            assert_eq!(r.result.committed, t.len() as u64, "{k}");
            assert!(r.ipc() > 0.0, "{k}");
            assert_eq!(r.fgstp.is_some(), k.is_fgstp(), "{k}");
        }
    }

    #[test]
    fn speedup_lookup_matches_cycle_ratio() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let runs: Vec<_> = MachineKind::SMALL_CMP
            .iter()
            .map(|&k| run_on(k, t.insts()))
            .collect();
        let b = BenchResult {
            name: w.name,
            committed: t.len() as u64,
            runs,
            error: None,
        };
        let s = b.speedup(MachineKind::FgstpSmall, MachineKind::SingleSmall);
        let expected = b.runs[0].result.cycles as f64 / b.runs[2].result.cycles as f64;
        assert!((s - expected).abs() < 1e-12);
    }

    #[test]
    fn try_speedup_is_none_on_partial_machine_sets() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let b = BenchResult {
            name: w.name,
            committed: t.len() as u64,
            runs: vec![run_on(MachineKind::SingleSmall, t.insts())],
            error: None,
        };
        assert!(b
            .try_speedup(MachineKind::FgstpSmall, MachineKind::SingleSmall)
            .is_none());
        assert!(b
            .try_speedup(MachineKind::SingleSmall, MachineKind::FgstpSmall)
            .is_none());
        assert_eq!(
            b.try_speedup(MachineKind::SingleSmall, MachineKind::SingleSmall),
            Some(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "fgstp-small not in result set")]
    fn speedup_panics_with_the_missing_machine_name() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let b = BenchResult {
            name: w.name,
            committed: t.len() as u64,
            runs: vec![run_on(MachineKind::SingleSmall, t.insts())],
            error: None,
        };
        b.speedup(MachineKind::FgstpSmall, MachineKind::SingleSmall);
    }

    #[test]
    fn instrumented_run_matches_plain_timing_and_reconciles() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        for k in [
            MachineKind::SingleSmall,
            MachineKind::FgstpSmall,
            MachineKind::FgstpSmall4,
        ] {
            let plain = run_on(k, t.insts());
            let (inst, episodes) = run_on_instrumented(k, t.insts(), true);
            assert_eq!(inst.result.cycles, plain.result.cycles, "{k}");
            assert_eq!(inst.result.committed, plain.result.committed, "{k}");
            let stack = inst.cpi.as_ref().expect("instrumented run has a stack");
            let cores = k.cores() as u64;
            stack.check_against(cores * inst.result.cycles).unwrap();
            // The episode timeline tiles the same core-cycles.
            let episode_cycles: u64 = episodes.iter().map(Episode::cycles).sum();
            assert_eq!(episode_cycles, cores * inst.result.cycles, "{k}");
        }
    }

    #[test]
    fn uninstrumented_run_has_no_stack() {
        let w = by_name("perl_hash", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        assert!(run_on(MachineKind::SingleSmall, t.insts()).cpi.is_none());
    }

    #[test]
    fn cores_override_changes_the_machine_shape() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let r = run_on_with_cores(MachineKind::FgstpSmall, t.insts(), Some(3));
        assert_eq!(r.result.cores.len(), 3);
        assert_eq!(r.result.committed, t.len() as u64);
        // The default path matches the preset's own core count.
        let d = run_on(MachineKind::FgstpSmall4, t.insts());
        assert_eq!(d.result.cores.len(), 4);
    }

    #[test]
    fn sampled_run_projects_totals_and_keeps_the_record() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let scfg = SampleConfig {
            interval: 2_000,
            warmup: 300,
            detail: 150,
        };
        for k in [MachineKind::SingleSmall, MachineKind::FgstpSmall] {
            let full = run_on(k, t.insts());
            let r = run_on_sampled(k, t.insts(), &scfg, false);
            assert_eq!(r.result.committed, t.len() as u64, "{k}");
            let s = r.sampled.as_ref().expect("sampled record");
            assert_eq!(r.result.cycles, s.est_cycles().round() as u64, "{k}");
            assert!(s.detail_reduction() > 2.0, "{k}");
            // The projection tracks the full-detail run loosely even on a
            // short Test-scale trace (tight bounds live in the long-run
            // acceptance tests).
            let err =
                (s.est_cycles() - full.result.cycles as f64).abs() / full.result.cycles as f64;
            assert!(err < 0.5, "{k}: estimate off by {:.1}%", err * 100.0);
            assert!(r.cpi.is_none(), "{k}: uninstrumented");
        }
    }

    #[test]
    fn instrumented_sampled_run_carries_a_window_stack() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        let scfg = SampleConfig {
            interval: 2_000,
            warmup: 300,
            detail: 150,
        };
        let r = run_on_sampled(MachineKind::FgstpSmall, t.insts(), &scfg, true);
        let s = r.sampled.as_ref().unwrap();
        let stack = r.cpi.as_ref().expect("instrumented sampled run");
        stack.check_against(s.detail_core_cycles).unwrap();
        assert_eq!(stack.committed, s.detailed_insts);
    }

    #[test]
    #[should_panic(expected = "--cores only applies to Fg-STP machines")]
    fn cores_override_rejects_non_fgstp_machines() {
        let w = by_name("hmmer_dp", Scale::Test).unwrap();
        let t = trace_workload(&w, Scale::Test);
        run_on_with_cores(MachineKind::SingleSmall, t.insts(), Some(2));
    }
}
