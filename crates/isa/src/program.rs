//! Program container: code plus an initialized data segment.

use std::fmt;

use crate::inst::Inst;

/// One contiguous run of initialized bytes in the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataInit {
    /// Starting byte address.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A complete SimRISC program: instruction list, entry point and data
/// segment initialization.
///
/// Instruction addresses are indices into [`Program::insts`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The instructions, addressed by index.
    pub insts: Vec<Inst>,
    /// Index of the first instruction to execute.
    pub entry: u64,
    /// Initialized data regions, loaded into memory before execution.
    pub data: Vec<DataInit>,
}

impl Program {
    /// Creates a program from instructions with entry at index 0 and no
    /// initialized data.
    pub fn new(insts: Vec<Inst>) -> Program {
        Program {
            insts,
            entry: 0,
            data: Vec::new(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends an initialized data region; returns `self` for chaining.
    pub fn with_data(mut self, addr: u64, bytes: Vec<u8>) -> Program {
        self.data.push(DataInit { addr, bytes });
        self
    }

    /// Appends a region of little-endian 64-bit words starting at `addr`.
    pub fn with_words(self, addr: u64, words: &[u64]) -> Program {
        let bytes = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.with_data(addr, bytes)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:6}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;

    #[test]
    fn with_words_lays_out_little_endian() {
        let p = Program::new(vec![Inst::halt()]).with_words(0x100, &[0x0102_0304_0506_0708]);
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].addr, 0x100);
        assert_eq!(p.data[0].bytes, vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn display_lists_instructions_with_indices() {
        let p = Program::new(vec![Inst::ri(Op::Li, Reg::int(1), 5), Inst::halt()]);
        let s = p.to_string();
        assert!(s.contains("0: li x1, 5"), "{s}");
        assert!(s.contains("1: halt"), "{s}");
    }
}
