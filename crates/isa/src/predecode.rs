//! Pre-decoded threaded-code functional execution.
//!
//! [`crate::Machine::step`] re-decodes every instruction on every dynamic
//! visit: it matches on the full [`Op`] space, resolves memory widths and
//! sign-extensions through `Option`-returning helpers, and materializes a
//! [`crate::machine::ExecInfo`] per step whether or not anyone is tracing.
//! That is fine for an oracle but it bounds trace generation, SMARTS
//! functional warming and the differential-fuzz harness — the one path
//! every frontend shares.
//!
//! This module lowers a [`Program`] **once** into a flat pre-decoded op
//! table ([`PreProgram`]): each static [`Inst`] becomes a `PreInst`
//! carrying a resolved dispatch `Kind` (the jump-table index), raw
//! register indices, the immediate, and — for memory ops — the access
//! width and sign-extension flag. [`ThreadedMachine`] then runs a
//! threaded-code `step`/`run` loop over that table: one dense match per
//! dynamic instruction (compiled to a jump table), with the hot
//! ALU/FP/branch/load/store cases inlined and the cold tail (integer
//! divide/remainder) funnelled through
//! [`crate::semantics::eval_compute`] so the two interpreters cannot
//! drift on the rare opcodes. Loads and stores run through a small
//! direct-mapped page-translation cache (`TLB_SETS` sets), skipping the
//! page-table hash lookup on same-page streaks, with a within-page fast
//! path for accesses that do not straddle a page boundary.
//!
//! On top of the scalar table, lowering also builds a static *pair* table
//! (`PairEntry`): for every pc whose instruction and fall-through
//! successor are both fusable (compute/load/store, plus a trailing
//! branch), a single 16-byte entry carries both halves' kinds, operands
//! and immediates, with first-half→second-half operand forwarding
//! resolved at decode time (the `FWD` bit). The untraced `run` loop
//! retires two instructions per iteration through exactly two jump-table
//! dispatches; `step` and `run_trace` stay on the scalar table so every
//! recorded [`DynInst`] stream is oracle-shaped.
//!
//! `Machine` stays the reference oracle: `ThreadedMachine` is
//! architecturally equivalent by construction and the differential-fuzz
//! harness pins exact register-file, byte-exact memory and identical
//! [`DynInst`]-stream agreement over hundreds of random programs.

use crate::inst::Inst;
use crate::machine::{ExecError, ExecInfo, Memory, StepOutcome, PAGE_SHIFT, PAGE_SIZE};
use crate::op::Op;
use crate::program::{DataInit, Program};
use crate::reg::NUM_REGS;
use crate::semantics::eval_compute;
use crate::trace::{DynInst, TraceError};

/// Dispatch selector of one pre-decoded instruction: the "threaded code"
/// label the run loop jumps through. Memory and extension behaviour that
/// [`crate::Machine::step`] resolves per dynamic visit is baked in here at
/// lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    // Hot integer ALU, register-register.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    // Hot integer ALU, register-immediate.
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    Li,
    // Hot FP ALU: the FP kernels spend 20%+ of their dynamic stream here,
    // so these are inlined like the integer ops. The expressions in the
    // dispatch arms are copied verbatim from
    // [`crate::semantics::eval_compute`] and pinned bit-exact by the
    // lockstep and differential-fuzz suites.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    FMin,
    FMax,
    FCvtIF,
    FCvtFI,
    FLt,
    FEq,
    // Cold pure compute (integer divide/remainder): evaluated through
    // [`crate::semantics::eval_compute`] on the carried opcode, so the
    // rare cases share one semantics definition with the oracle.
    Div,
    Rem,
    // Loads, one variant per width × extension so every dispatch arm
    // folds its width and sign-extension to constants (`ld`/`fld`
    // collapse to one variant — identical memory behaviour).
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Lwu,
    Ld8,
    // Stores, one variant per width (`sd`/`fsd` collapse likewise).
    Sb,
    Sh,
    Sw,
    Sd8,
    // Conditional branches.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Jal,
    Jalr,
    Nop,
    Halt,
}

/// One pre-decoded instruction: dispatch kind, raw operand indices and the
/// immediate — 16 bytes, so the plain `run` loop streams a quarter of the
/// bytes per instruction that refetching [`Inst`] plus re-decoding would.
/// The original [`Inst`] lives in a parallel cold array
/// ([`PreProgram::insts`]), touched only when a sink records.
#[derive(Debug, Clone, Copy)]
struct PreInst {
    kind: Kind,
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: i64,
}

/// Lowers one static instruction; total over the ISA.
fn lower(inst: Inst) -> PreInst {
    use Op::*;
    let kind = match inst.op {
        Add => Kind::Add,
        Sub => Kind::Sub,
        And => Kind::And,
        Or => Kind::Or,
        Xor => Kind::Xor,
        Sll => Kind::Sll,
        Srl => Kind::Srl,
        Sra => Kind::Sra,
        Slt => Kind::Slt,
        Sltu => Kind::Sltu,
        Mul => Kind::Mul,
        Addi => Kind::Addi,
        Andi => Kind::Andi,
        Ori => Kind::Ori,
        Xori => Kind::Xori,
        Slli => Kind::Slli,
        Srli => Kind::Srli,
        Srai => Kind::Srai,
        Slti => Kind::Slti,
        Li => Kind::Li,
        FAdd => Kind::FAdd,
        FSub => Kind::FSub,
        FMul => Kind::FMul,
        FDiv => Kind::FDiv,
        FSqrt => Kind::FSqrt,
        FMin => Kind::FMin,
        FMax => Kind::FMax,
        FCvtIF => Kind::FCvtIF,
        FCvtFI => Kind::FCvtFI,
        FLt => Kind::FLt,
        FEq => Kind::FEq,
        Div => Kind::Div,
        Rem => Kind::Rem,
        Lb => Kind::Lb,
        Lbu => Kind::Lbu,
        Lh => Kind::Lh,
        Lhu => Kind::Lhu,
        Lw => Kind::Lw,
        Lwu => Kind::Lwu,
        Ld | Fld => Kind::Ld8,
        Sb => Kind::Sb,
        Sh => Kind::Sh,
        Sw => Kind::Sw,
        Sd | Fsd => Kind::Sd8,
        Beq => Kind::Beq,
        Bne => Kind::Bne,
        Blt => Kind::Blt,
        Bge => Kind::Bge,
        Bltu => Kind::Bltu,
        Bgeu => Kind::Bgeu,
        Jal => Kind::Jal,
        Jalr => Kind::Jalr,
        Nop => Kind::Nop,
        Halt => Kind::Halt,
    };
    PreInst {
        kind,
        rd: remap_rd(inst.rd.index() as u8),
        rs1: inst.rs1.index() as u8,
        rs2: inst.rs2.index() as u8,
        imm: inst.imm,
    }
}

/// Pure compute semantics over pre-decoded kinds: the single source of
/// every inlined ALU/FP expression in this module. Scalar dispatch arms
/// call it with a constant kind (the match folds to the one expression);
/// fused pair halves call it with the kind loaded from the pair entry
/// (one dense jump table, no `Option` plumbing). The integer
/// divide/remainder tail funnels through [`eval_compute`] so the rare
/// opcodes share one semantics definition with the oracle.
#[inline(always)]
fn alu_val(k: Kind, a: u64, b: u64, imm: i64) -> u64 {
    match k {
        Kind::Add => a.wrapping_add(b),
        Kind::Sub => a.wrapping_sub(b),
        Kind::And => a & b,
        Kind::Or => a | b,
        Kind::Xor => a ^ b,
        Kind::Sll => a.wrapping_shl(b as u32 & 63),
        Kind::Srl => a.wrapping_shr(b as u32 & 63),
        Kind::Sra => (a as i64).wrapping_shr(b as u32 & 63) as u64,
        Kind::Slt => u64::from((a as i64) < (b as i64)),
        Kind::Sltu => u64::from(a < b),
        Kind::Mul => a.wrapping_mul(b),
        Kind::Addi => a.wrapping_add(imm as u64),
        Kind::Andi => a & imm as u64,
        Kind::Ori => a | imm as u64,
        Kind::Xori => a ^ imm as u64,
        Kind::Slli => a.wrapping_shl(imm as u32 & 63),
        Kind::Srli => a.wrapping_shr(imm as u32 & 63),
        Kind::Srai => (a as i64).wrapping_shr(imm as u32 & 63) as u64,
        Kind::Slti => u64::from((a as i64) < imm),
        Kind::Li => imm as u64,
        Kind::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        Kind::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        Kind::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        Kind::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        Kind::FSqrt => f64::from_bits(a).sqrt().to_bits(),
        Kind::FMin => f64::from_bits(a).min(f64::from_bits(b)).to_bits(),
        Kind::FMax => f64::from_bits(a).max(f64::from_bits(b)).to_bits(),
        Kind::FCvtIF => ((a as i64) as f64).to_bits(),
        Kind::FCvtFI => (f64::from_bits(a) as i64) as u64,
        Kind::FLt => u64::from(f64::from_bits(a) < f64::from_bits(b)),
        Kind::FEq => u64::from(f64::from_bits(a) == f64::from_bits(b)),
        Kind::Div => eval_compute(Op::Div, a, b, imm).expect("div is pure compute"),
        Kind::Rem => eval_compute(Op::Rem, a, b, imm).expect("rem is pure compute"),
        // Loads, stores, branches and control kinds never reach the
        // compute funnel (decode invariant).
        _ => unreachable!("non-compute kind in alu_val"),
    }
}

/// Conditional-branch outcome over pre-decoded kinds; same single-source
/// contract as [`alu_val`].
#[inline(always)]
fn cond_val(k: Kind, a: u64, b: u64) -> bool {
    match k {
        Kind::Beq => a == b,
        Kind::Bne => a != b,
        Kind::Blt => (a as i64) < (b as i64),
        Kind::Bge => (a as i64) >= (b as i64),
        Kind::Bltu => a < b,
        Kind::Bgeu => a >= b,
        _ => unreachable!("non-branch kind in cond_val"),
    }
}

/// One fused fall-through pair, built by the decode-once pass for every
/// pc whose instruction and successor are both simple (no control
/// transfer into the middle matters: entering at `pc + 1` by a jump still
/// dispatches the second instruction's own scalar entry). Fully
/// self-contained — 16 bytes carrying both halves' kinds and operands —
/// so the fused `run` loop fetches exactly one dense table entry per two
/// instructions and dispatches each half through a single jump table of
/// arms that fold to [`alu_val`]/[`cond_val`]/fixed-width memory
/// expressions — the same single-source semantics the scalar dispatch
/// arms fold over.
///
/// The top bits of `rs1b`/`rs2b` ([`FWD`]) are the decode-time dependence
/// resolution: they mark that the second half's first/second operand
/// register *is* the first half's destination, so the executed value is
/// forwarded in a machine register instead of round-tripping through the
/// architectural register file (a store-to-load forwarding stall per
/// dependent instruction — the dominant latency of interpreting serial
/// guest code).
///
/// Pairs whose immediates do not fit in `i32` stay unfused (assembled
/// programs never produce them; the decode pass just refuses rather than
/// truncating).
#[derive(Debug, Clone, Copy)]
struct PairEntry {
    /// First-half kind; [`Kind::Nop`] (never fusable) marks "no pair".
    k1: Kind,
    /// Second-half kind.
    k2: Kind,
    /// First-half operands; `rd1` is pre-remapped (`x0` → [`RD_SINK`]).
    rd1: u8,
    rs11: u8,
    rs21: u8,
    /// Second-half destination, pre-remapped likewise.
    rd2: u8,
    /// Second-half source indices, with [`FWD`] set when the operand is
    /// the first half's result.
    rs1b: u8,
    rs2b: u8,
    imm1: i32,
    /// Second-half immediate (branch target for branch second halves).
    imm2: i32,
}

/// Flag bit in [`PairEntry::rs1b`]/[`PairEntry::rs2b`]: take the first
/// half's result instead of reading the register file.
const FWD: u8 = 0x80;

impl PairEntry {
    const NONE: PairEntry = PairEntry {
        k1: Kind::Nop,
        k2: Kind::Nop,
        rd1: RD_SINK,
        rs11: 0,
        rs21: 0,
        rd2: RD_SINK,
        rs1b: 0,
        rs2b: 0,
        imm1: 0,
        imm2: 0,
    };
}

/// Behaviour class of one instruction for pair fusion.
#[derive(Clone, Copy, PartialEq)]
enum HalfClass {
    Compute,
    Load,
    Store,
    Branch,
}

/// Classifies a pre-decoded kind for fusion; `None` for control
/// transfers that cannot sit in a fused pair (`jal`/`jalr`/`halt`) and
/// for `nop`.
fn half_class(k: Kind) -> Option<HalfClass> {
    Some(match k {
        Kind::Lb | Kind::Lbu | Kind::Lh | Kind::Lhu | Kind::Lw | Kind::Lwu | Kind::Ld8 => {
            HalfClass::Load
        }
        Kind::Sb | Kind::Sh | Kind::Sw | Kind::Sd8 => HalfClass::Store,
        Kind::Beq | Kind::Bne | Kind::Blt | Kind::Bge | Kind::Bltu | Kind::Bgeu => {
            HalfClass::Branch
        }
        Kind::Jal | Kind::Jalr | Kind::Nop | Kind::Halt => return None,
        _ => HalfClass::Compute,
    })
}

/// Builds the fused-pair table: one entry per pc, fusing `insts[pc]` with
/// its fall-through successor whenever the first is Compute/Load/Store
/// and the second is Compute/Load/Store/Branch.
fn build_pairs(insts: &[Inst]) -> Vec<PairEntry> {
    let mut pairs = vec![PairEntry::NONE; insts.len()];
    for (pc, pair) in insts.windows(2).enumerate() {
        let (a, b) = (pair[0], pair[1]);
        let (pa, pb) = (lower(a), lower(b));
        let (Some(first), Some(_second)) = (half_class(pa.kind), half_class(pb.kind)) else {
            continue;
        };
        // A taken branch does not fall through to pc + 1.
        if first == HalfClass::Branch {
            continue;
        }
        let (Ok(imm1), Ok(imm2)) = (i32::try_from(pa.imm), i32::try_from(pb.imm)) else {
            continue;
        };
        // The first half produces a value (into its rd) unless it is a
        // store; a non-x0 rd that the second half sources is forwarded.
        // Store halves never write a register architecturally, so their
        // destination is forced to the sink regardless of the encoded rd.
        let rd1 = a.rd.index() as u8;
        let produces = first != HalfClass::Store && rd1 != 0;
        let fwd = |rs: u8| {
            if produces && rs == rd1 {
                FWD
            } else {
                0
            }
        };
        pairs[pc] = PairEntry {
            k1: pa.kind,
            k2: pb.kind,
            rd1: if first == HalfClass::Store {
                RD_SINK
            } else {
                pa.rd
            },
            rs11: pa.rs1,
            rs21: pa.rs2,
            rd2: pb.rd,
            rs1b: pb.rs1 | fwd(pb.rs1),
            rs2b: pb.rs2 | fwd(pb.rs2),
            imm1,
            imm2,
        };
    }
    pairs
}

/// Remaps an architectural destination index for branchless writes:
/// `x0` goes to the [`RD_SINK`] scratch slot, everything else to itself.
fn remap_rd(rd: u8) -> u8 {
    if rd == 0 {
        RD_SINK
    } else {
        rd
    }
}

/// A program lowered once into the flat pre-decoded op table, plus the
/// entry point and data segment needed to boot a [`ThreadedMachine`].
///
/// Lowering is cheap (one pass over the static instructions) and the
/// result is reusable: trace many runs of the same program from one
/// `PreProgram`.
#[derive(Debug, Clone)]
pub struct PreProgram {
    ops: Vec<PreInst>,
    /// Fused fall-through pairs, indexed by pc in parallel with `ops`.
    /// Consumed only by the non-recording `run` loop.
    pairs: Vec<PairEntry>,
    /// Parallel cold copy of the original instructions, read only when a
    /// sink records (trace generation, `step`) — the plain `run` loop
    /// never touches it.
    insts: Vec<Inst>,
    entry: u64,
    data: Vec<DataInit>,
}

impl PreProgram {
    /// Lowers `program` into its pre-decoded op table.
    pub fn new(program: &Program) -> PreProgram {
        PreProgram {
            ops: program.insts.iter().copied().map(lower).collect(),
            pairs: build_pairs(&program.insts),
            insts: program.insts.clone(),
            entry: program.entry,
            data: program.data.clone(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Where one dynamic record goes. The null sink compiles the whole
/// record-building path out of the plain `run` loop; the vec sink is the
/// trace generator.
trait Sink {
    const RECORD: bool;
    fn emit(&mut self, d: DynInst);
}

struct NullSink;

impl Sink for NullSink {
    const RECORD: bool = false;
    #[inline(always)]
    fn emit(&mut self, _: DynInst) {}
}

struct VecSink<'a> {
    out: &'a mut Vec<DynInst>,
    seq: u64,
}

impl Sink for VecSink<'_> {
    const RECORD: bool = true;
    #[inline(always)]
    fn emit(&mut self, mut d: DynInst) {
        d.seq = self.seq;
        self.seq += 1;
        self.out.push(d);
    }
}

struct OneSink(Option<DynInst>);

impl Sink for OneSink {
    const RECORD: bool = true;
    #[inline(always)]
    fn emit(&mut self, d: DynInst) {
        self.0 = Some(d);
    }
}

/// The threaded-code functional machine: architecturally identical to
/// [`crate::Machine`], dispatching over a [`PreProgram`].
///
/// ```
/// use fgstp_isa::{assemble, PreProgram, ThreadedMachine};
///
/// let p = assemble("li x1, 20\nli x2, 22\nadd x3, x1, x2\nhalt")?;
/// let pre = PreProgram::new(&p);
/// let mut m = ThreadedMachine::new(&pre);
/// m.run(100)?;
/// assert_eq!(m.regs()[3], 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
/// Index of the write-sink slot used for `x0` destinations, so register
/// writes need no `rd != 0` branch. Never read: `x0` reads still index
/// slot 0, which stays zero.
const RD_SINK: u8 = NUM_REGS as u8;

/// Backing slots for the interpreter's register file: 64 architectural
/// registers plus the sink, padded to a power of two so masked indexing
/// compiles without bounds checks.
const REG_SLOTS: usize = 128;

#[derive(Debug, Clone)]
pub struct ThreadedMachine<'p> {
    pre: &'p PreProgram,
    regs: [u64; REG_SLOTS],
    pc: u64,
    mem: Memory,
    halted: bool,
    executed: u64,
    /// Direct-mapped page-translation cache: `tlb[page & 15]` holds the
    /// last `(page index, slot)` translated to that set. Slots are stable
    /// for the life of a [`Memory`], so entries never need invalidation
    /// and a hit skips the page-table hash lookup — the dominant cost of
    /// interpreted loads and stores. Sixteen sets keep kernels that
    /// stream several arrays at once (stencils, sparse matrices) from
    /// thrashing a single entry.
    tlb: [(u64, u32); TLB_SETS],
}

/// Sets in the interpreter's direct-mapped page-translation cache.
const TLB_SETS: usize = 16;

impl<'p> ThreadedMachine<'p> {
    /// Creates a machine over the pre-decoded program with the data
    /// segment loaded and the pc at the entry point.
    pub fn new(pre: &'p PreProgram) -> ThreadedMachine<'p> {
        let mut mem = Memory::new();
        for init in &pre.data {
            mem.load_image(init.addr, &init.bytes);
        }
        ThreadedMachine {
            pre,
            regs: [0; REG_SLOTS],
            pc: pre.entry,
            mem,
            halted: false,
            executed: 0,
            tlb: [(u64::MAX, 0); TLB_SETS],
        }
    }

    /// Within-page load through the page-translation cache.
    #[inline(always)]
    fn fast_read(&mut self, addr: u64, w: usize, off: usize) -> u64 {
        let page = addr >> PAGE_SHIFT;
        let set = (page as usize) & (TLB_SETS - 1);
        let slot = if self.tlb[set].0 == page {
            self.tlb[set].1
        } else {
            match self.mem.slot_of(page) {
                Some(slot) => {
                    self.tlb[set] = (page, slot);
                    slot
                }
                // Never-written page: reads as zero, nothing to cache.
                None => return 0,
            }
        };
        let mut le = [0u8; 8];
        le[..w].copy_from_slice(&self.mem.page_bytes(slot)[off..off + w]);
        u64::from_le_bytes(le)
    }

    /// Within-page store through the page-translation cache.
    #[inline(always)]
    fn fast_write(&mut self, addr: u64, w: usize, off: usize, value: u64) {
        let page = addr >> PAGE_SHIFT;
        let set = (page as usize) & (TLB_SETS - 1);
        let slot = if self.tlb[set].0 == page {
            self.tlb[set].1
        } else {
            let slot = self.mem.slot_for_write(page);
            self.tlb[set] = (page, slot);
            slot
        };
        self.mem.page_bytes_mut(slot)[off..off + w].copy_from_slice(&value.to_le_bytes()[..w]);
    }

    /// One architectural load at a resolved effective address: within-page
    /// fast path with a straddle fallback, then width extension.
    #[inline(always)]
    fn load_at(&mut self, a: u64, width: u8, sext: bool) -> u64 {
        let off = (a as usize) & (PAGE_SIZE - 1);
        let w = usize::from(width);
        let raw = if off + w <= PAGE_SIZE {
            self.fast_read(a, w, off)
        } else {
            self.mem.read(a, width)
        };
        if sext {
            match width {
                1 => raw as u8 as i8 as i64 as u64,
                2 => raw as u16 as i16 as i64 as u64,
                _ => raw as u32 as i32 as i64 as u64,
            }
        } else {
            raw
        }
    }

    /// One architectural store at a resolved effective address.
    #[inline(always)]
    fn store_at(&mut self, a: u64, width: u8, value: u64) {
        let off = (a as usize) & (PAGE_SIZE - 1);
        let w = usize::from(width);
        if off + w <= PAGE_SIZE {
            self.fast_write(a, w, off, value);
        } else {
            self.mem.write(a, width, value);
        }
    }

    /// One architectural load: effective address from `base` + `imm`,
    /// then [`Self::load_at`]. Returns `(addr, value)`.
    #[inline(always)]
    fn load_val(&mut self, base: u8, imm: i64, width: u8, sext: bool) -> (u64, u64) {
        let a = self.reg(base).wrapping_add(imm as u64);
        (a, self.load_at(a, width, sext))
    }

    /// One architectural store; returns the effective address.
    #[inline(always)]
    fn store_val(&mut self, base: u8, imm: i64, width: u8, value: u64) -> u64 {
        let a = self.reg(base).wrapping_add(imm as u64);
        self.store_at(a, width, value);
        a
    }

    /// The architectural register file (the sink slot is not visible).
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        self.regs[..NUM_REGS]
            .try_into()
            .expect("backing store holds at least NUM_REGS slots")
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether a `halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Read-only view of memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Sets a register; writes to `x0` are ignored, as in hardware.
    pub fn set_reg(&mut self, index: usize, value: u64) {
        if index != 0 {
            self.regs[index] = value;
        }
    }

    /// Reads a register. The `& 63` mask is a no-op for indices produced
    /// by lowering ([`crate::Reg`] guarantees `< 64`); it lets the
    /// compiler drop the bounds check from the hot loop.
    #[inline(always)]
    fn reg(&self, r: u8) -> u64 {
        self.regs[usize::from(r & 63)]
    }

    /// Writes a destination slot unconditionally. `rd` must already be
    /// remapped ([`remap_rd`]): `x0` destinations hit the sink slot, so
    /// no branch is needed and architectural `x0` stays zero.
    #[inline(always)]
    fn set_rd(&mut self, rd: u8, v: u64) {
        self.regs[usize::from(rd) & (REG_SLOTS - 1)] = v;
    }

    /// Executes exactly one instruction at `pc` (the caller has checked
    /// `!self.halted`), emitting a [`DynInst`] to `sink` for everything
    /// except `halt`, and returning the next pc. Architectural register,
    /// memory and halt state update here; the pc and the executed count
    /// stay with the caller, so the hot `run` loops carry them in
    /// registers instead of storing through `self` every instruction.
    /// Mirrors [`crate::Machine::step`] state-for-state.
    #[inline(always)]
    fn dispatch_at<S: Sink>(&mut self, pc: u64, sink: &mut S) -> Result<u64, ExecError> {
        let Some(&p) = self.pre.ops.get(pc as usize) else {
            return Err(ExecError::PcOutOfRange {
                pc,
                len: self.pre.ops.len(),
            });
        };

        macro_rules! compute {
            ($v:expr) => {{
                let v = $v;
                self.set_rd(p.rd, v);
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc: pc + 1,
                        addr: None,
                        taken: None,
                        rd_value: Some(v),
                        store_value: None,
                    });
                }
                pc + 1
            }};
        }
        macro_rules! branch {
            ($t:expr) => {{
                let t = $t;
                let next_pc = if t { p.imm as u64 } else { pc + 1 };
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc,
                        addr: None,
                        taken: Some(t),
                        rd_value: None,
                        store_value: None,
                    });
                }
                next_pc
            }};
        }

        // Compute and branch arms call [`alu_val`]/[`cond_val`] with a
        // constant kind: the inner match folds to the one expression, so
        // this stays a single jump table while the semantics live in one
        // place (shared with the fused pair halves).
        macro_rules! alu {
            ($k:expr) => {
                compute!(alu_val($k, self.reg(p.rs1), self.reg(p.rs2), p.imm))
            };
        }
        macro_rules! br {
            ($k:expr) => {
                branch!(cond_val($k, self.reg(p.rs1), self.reg(p.rs2)))
            };
        }
        macro_rules! ld {
            ($w:expr, $sx:expr) => {{
                let (a, v) = self.load_val(p.rs1, p.imm, $w, $sx);
                self.set_rd(p.rd, v);
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc: pc + 1,
                        addr: Some(a),
                        taken: None,
                        rd_value: Some(v),
                        store_value: None,
                    });
                }
                pc + 1
            }};
        }
        macro_rules! st {
            ($w:expr) => {{
                let v = self.reg(p.rs2);
                let a = self.store_val(p.rs1, p.imm, $w, v);
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc: pc + 1,
                        addr: Some(a),
                        taken: None,
                        rd_value: None,
                        store_value: Some(v),
                    });
                }
                pc + 1
            }};
        }

        Ok(match p.kind {
            Kind::Add => alu!(Kind::Add),
            Kind::Sub => alu!(Kind::Sub),
            Kind::And => alu!(Kind::And),
            Kind::Or => alu!(Kind::Or),
            Kind::Xor => alu!(Kind::Xor),
            Kind::Sll => alu!(Kind::Sll),
            Kind::Srl => alu!(Kind::Srl),
            Kind::Sra => alu!(Kind::Sra),
            Kind::Slt => alu!(Kind::Slt),
            Kind::Sltu => alu!(Kind::Sltu),
            Kind::Mul => alu!(Kind::Mul),
            Kind::Addi => alu!(Kind::Addi),
            Kind::Andi => alu!(Kind::Andi),
            Kind::Ori => alu!(Kind::Ori),
            Kind::Xori => alu!(Kind::Xori),
            Kind::Slli => alu!(Kind::Slli),
            Kind::Srli => alu!(Kind::Srli),
            Kind::Srai => alu!(Kind::Srai),
            Kind::Slti => alu!(Kind::Slti),
            Kind::Li => alu!(Kind::Li),
            Kind::FAdd => alu!(Kind::FAdd),
            Kind::FSub => alu!(Kind::FSub),
            Kind::FMul => alu!(Kind::FMul),
            Kind::FDiv => alu!(Kind::FDiv),
            Kind::FSqrt => alu!(Kind::FSqrt),
            Kind::FMin => alu!(Kind::FMin),
            Kind::FMax => alu!(Kind::FMax),
            Kind::FCvtIF => alu!(Kind::FCvtIF),
            Kind::FCvtFI => alu!(Kind::FCvtFI),
            Kind::FLt => alu!(Kind::FLt),
            Kind::FEq => alu!(Kind::FEq),
            Kind::Div => alu!(Kind::Div),
            Kind::Rem => alu!(Kind::Rem),
            Kind::Lb => ld!(1, true),
            Kind::Lbu => ld!(1, false),
            Kind::Lh => ld!(2, true),
            Kind::Lhu => ld!(2, false),
            Kind::Lw => ld!(4, true),
            Kind::Lwu => ld!(4, false),
            Kind::Ld8 => ld!(8, false),
            Kind::Sb => st!(1),
            Kind::Sh => st!(2),
            Kind::Sw => st!(4),
            Kind::Sd8 => st!(8),
            Kind::Beq => br!(Kind::Beq),
            Kind::Bne => br!(Kind::Bne),
            Kind::Blt => br!(Kind::Blt),
            Kind::Bge => br!(Kind::Bge),
            Kind::Bltu => br!(Kind::Bltu),
            Kind::Bgeu => br!(Kind::Bgeu),
            Kind::Jal => {
                let link = pc + 1;
                self.set_rd(p.rd, link);
                let next_pc = p.imm as u64;
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc,
                        addr: None,
                        taken: None,
                        rd_value: Some(link),
                        store_value: None,
                    });
                }
                next_pc
            }
            Kind::Jalr => {
                let link = pc + 1;
                let next_pc = self.reg(p.rs1).wrapping_add(p.imm as u64);
                self.set_rd(p.rd, link);
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc,
                        addr: None,
                        taken: None,
                        rd_value: Some(link),
                        store_value: None,
                    });
                }
                next_pc
            }
            Kind::Nop => {
                if S::RECORD {
                    sink.emit(DynInst {
                        seq: 0,
                        pc,
                        inst: self.pre.insts[pc as usize],
                        next_pc: pc + 1,
                        addr: None,
                        taken: None,
                        rd_value: None,
                        store_value: None,
                    });
                }
                pc + 1
            }
            Kind::Halt => {
                // Like the oracle: the pc stays on the halt, no record.
                self.halted = true;
                pc
            }
        })
    }

    /// Executes the fused fall-through pair at `pc` if the decode pass
    /// built one, returning the next pc; `None` means the caller must take
    /// the scalar path (unfused pc, or pc out of range). Fused halves are
    /// Compute/Load/Store plus Branch-as-second-half only: they never
    /// fault, never halt and never record, so errors, `halt` and every
    /// recording sink stay on [`Self::dispatch_at`]. Architecturally this
    /// is exactly two scalar dispatches back to back.
    #[inline(always)]
    fn dispatch_pair(&mut self, pc: u64) -> Option<u64> {
        let &e = self.pre.pairs.get(pc as usize)?;

        // First half: one jump-table dispatch on `k1`, every arm folding
        // its width/extension/operation to constants. The `Kind::Nop`
        // entry marks an unfused pc, so "no pair here" costs the same
        // dispatch as a real pair's first half — no separate validity
        // test. `v1` is the produced value; for stores it is the stored
        // value, written to the sink (the decode pass forces their rd
        // there) so every arm ends in the same unconditional write.
        macro_rules! c1 {
            ($k:expr) => {
                alu_val($k, self.reg(e.rs11), self.reg(e.rs21), e.imm1 as i64)
            };
        }
        macro_rules! l1 {
            ($w:expr, $sx:expr) => {{
                let a = self.reg(e.rs11).wrapping_add(e.imm1 as i64 as u64);
                self.load_at(a, $w, $sx)
            }};
        }
        macro_rules! s1 {
            ($w:expr) => {{
                let v = self.reg(e.rs21);
                let a = self.reg(e.rs11).wrapping_add(e.imm1 as i64 as u64);
                self.store_at(a, $w, v);
                v
            }};
        }
        let v1 = match e.k1 {
            Kind::Add => c1!(Kind::Add),
            Kind::Sub => c1!(Kind::Sub),
            Kind::And => c1!(Kind::And),
            Kind::Or => c1!(Kind::Or),
            Kind::Xor => c1!(Kind::Xor),
            Kind::Sll => c1!(Kind::Sll),
            Kind::Srl => c1!(Kind::Srl),
            Kind::Sra => c1!(Kind::Sra),
            Kind::Slt => c1!(Kind::Slt),
            Kind::Sltu => c1!(Kind::Sltu),
            Kind::Mul => c1!(Kind::Mul),
            Kind::Addi => c1!(Kind::Addi),
            Kind::Andi => c1!(Kind::Andi),
            Kind::Ori => c1!(Kind::Ori),
            Kind::Xori => c1!(Kind::Xori),
            Kind::Slli => c1!(Kind::Slli),
            Kind::Srli => c1!(Kind::Srli),
            Kind::Srai => c1!(Kind::Srai),
            Kind::Slti => c1!(Kind::Slti),
            Kind::Li => c1!(Kind::Li),
            Kind::FAdd => c1!(Kind::FAdd),
            Kind::FSub => c1!(Kind::FSub),
            Kind::FMul => c1!(Kind::FMul),
            Kind::FDiv => c1!(Kind::FDiv),
            Kind::FSqrt => c1!(Kind::FSqrt),
            Kind::FMin => c1!(Kind::FMin),
            Kind::FMax => c1!(Kind::FMax),
            Kind::FCvtIF => c1!(Kind::FCvtIF),
            Kind::FCvtFI => c1!(Kind::FCvtFI),
            Kind::FLt => c1!(Kind::FLt),
            Kind::FEq => c1!(Kind::FEq),
            Kind::Div => c1!(Kind::Div),
            Kind::Rem => c1!(Kind::Rem),
            Kind::Lb => l1!(1, true),
            Kind::Lbu => l1!(1, false),
            Kind::Lh => l1!(2, true),
            Kind::Lhu => l1!(2, false),
            Kind::Lw => l1!(4, true),
            Kind::Lwu => l1!(4, false),
            Kind::Ld8 => l1!(8, false),
            Kind::Sb => s1!(1),
            Kind::Sh => s1!(2),
            Kind::Sw => s1!(4),
            Kind::Sd8 => s1!(8),
            // Branches never lead a pair; Nop marks an unfused pc.
            _ => return None,
        };
        self.set_rd(e.rd1, v1);

        // Second half: operands come from the forwarded first-half value
        // when the decode pass resolved the dependence ([`FWD`]), else
        // from the register file (`reg` masks the flag bit away).
        let a = if e.rs1b & FWD != 0 {
            v1
        } else {
            self.reg(e.rs1b)
        };
        let b = if e.rs2b & FWD != 0 {
            v1
        } else {
            self.reg(e.rs2b)
        };
        macro_rules! c2 {
            ($k:expr) => {{
                let v = alu_val($k, a, b, e.imm2 as i64);
                self.set_rd(e.rd2, v);
                pc + 2
            }};
        }
        macro_rules! b2 {
            ($k:expr) => {{
                if cond_val($k, a, b) {
                    e.imm2 as i64 as u64
                } else {
                    pc + 2
                }
            }};
        }
        macro_rules! l2 {
            ($w:expr, $sx:expr) => {{
                let ad = a.wrapping_add(e.imm2 as i64 as u64);
                let v = self.load_at(ad, $w, $sx);
                self.set_rd(e.rd2, v);
                pc + 2
            }};
        }
        macro_rules! s2 {
            ($w:expr) => {{
                let ad = a.wrapping_add(e.imm2 as i64 as u64);
                self.store_at(ad, $w, b);
                pc + 2
            }};
        }
        Some(match e.k2 {
            Kind::Add => c2!(Kind::Add),
            Kind::Sub => c2!(Kind::Sub),
            Kind::And => c2!(Kind::And),
            Kind::Or => c2!(Kind::Or),
            Kind::Xor => c2!(Kind::Xor),
            Kind::Sll => c2!(Kind::Sll),
            Kind::Srl => c2!(Kind::Srl),
            Kind::Sra => c2!(Kind::Sra),
            Kind::Slt => c2!(Kind::Slt),
            Kind::Sltu => c2!(Kind::Sltu),
            Kind::Mul => c2!(Kind::Mul),
            Kind::Addi => c2!(Kind::Addi),
            Kind::Andi => c2!(Kind::Andi),
            Kind::Ori => c2!(Kind::Ori),
            Kind::Xori => c2!(Kind::Xori),
            Kind::Slli => c2!(Kind::Slli),
            Kind::Srli => c2!(Kind::Srli),
            Kind::Srai => c2!(Kind::Srai),
            Kind::Slti => c2!(Kind::Slti),
            Kind::Li => c2!(Kind::Li),
            Kind::FAdd => c2!(Kind::FAdd),
            Kind::FSub => c2!(Kind::FSub),
            Kind::FMul => c2!(Kind::FMul),
            Kind::FDiv => c2!(Kind::FDiv),
            Kind::FSqrt => c2!(Kind::FSqrt),
            Kind::FMin => c2!(Kind::FMin),
            Kind::FMax => c2!(Kind::FMax),
            Kind::FCvtIF => c2!(Kind::FCvtIF),
            Kind::FCvtFI => c2!(Kind::FCvtFI),
            Kind::FLt => c2!(Kind::FLt),
            Kind::FEq => c2!(Kind::FEq),
            Kind::Div => c2!(Kind::Div),
            Kind::Rem => c2!(Kind::Rem),
            Kind::Lb => l2!(1, true),
            Kind::Lbu => l2!(1, false),
            Kind::Lh => l2!(2, true),
            Kind::Lhu => l2!(2, false),
            Kind::Lw => l2!(4, true),
            Kind::Lwu => l2!(4, false),
            Kind::Ld8 => l2!(8, false),
            Kind::Sb => s2!(1),
            Kind::Sh => s2!(2),
            Kind::Sw => s2!(4),
            Kind::Sd8 => s2!(8),
            Kind::Beq => b2!(Kind::Beq),
            Kind::Bne => b2!(Kind::Bne),
            Kind::Blt => b2!(Kind::Blt),
            Kind::Bge => b2!(Kind::Bge),
            Kind::Bltu => b2!(Kind::Bltu),
            Kind::Bgeu => b2!(Kind::Bgeu),
            // The decode pass only fuses simple second halves.
            Kind::Jal | Kind::Jalr | Kind::Nop | Kind::Halt => {
                unreachable!("control kinds are never fused second halves")
            }
        })
    }

    /// Scalar single-instruction dispatch without recording, kept out of
    /// line so the fused `run` loop stays small enough to register-
    /// allocate well — unfused pcs (control transfers, `halt`, the
    /// limit tail) are the cold minority there.
    #[inline(never)]
    fn dispatch_scalar(&mut self, pc: u64) -> Result<u64, ExecError> {
        self.dispatch_at(pc, &mut NullSink)
    }

    /// Executes one instruction, mirroring [`crate::Machine::step`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::PcOutOfRange`] if the pc points outside the
    /// program (e.g. a wild `jalr`).
    pub fn step(&mut self) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let mut sink = OneSink(None);
        let next = self.dispatch_at(pc, &mut sink)?;
        self.pc = next;
        self.executed += 1;
        Ok(StepOutcome::Executed(match sink.0 {
            Some(d) => ExecInfo {
                pc: d.pc,
                inst: d.inst,
                next_pc: d.next_pc,
                addr: d.addr,
                rd_value: d.rd_value,
                store_value: d.store_value,
                taken: d.taken,
            },
            // The halt step: executed but never emitted as a record.
            None => ExecInfo {
                pc,
                inst: self.pre.insts[pc as usize],
                next_pc: pc,
                addr: None,
                rd_value: None,
                store_value: None,
                taken: None,
            },
        }))
    }

    /// Runs until `halt` or until `limit` instructions have executed,
    /// without building any per-instruction records — the fastest way to
    /// functionally execute a program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] if the limit is reached first, or
    /// [`ExecError::PcOutOfRange`] on a wild jump.
    pub fn run(&mut self, limit: u64) -> Result<u64, ExecError> {
        let mut pc = self.pc;
        let mut n = 0u64;
        let res = loop {
            if self.halted {
                break Ok(n);
            }
            if n >= limit {
                break Err(ExecError::StepLimit { limit });
            }
            // Fused fast path: pairs cannot halt or fault, so the inner
            // loop checks nothing but limit headroom (two steps, keeping
            // `StepLimit` exact to the instruction — the scalar dispatch
            // below handles the tail and every unfused pc).
            while n + 2 <= limit {
                match self.dispatch_pair(pc) {
                    Some(next) => {
                        pc = next;
                        n += 2;
                    }
                    None => break,
                }
            }
            if n >= limit {
                break Err(ExecError::StepLimit { limit });
            }
            match self.dispatch_scalar(pc) {
                Ok(next) => {
                    pc = next;
                    n += 1;
                }
                Err(e) => break Err(e),
            }
        };
        self.pc = pc;
        self.executed += n;
        res
    }

    /// Runs until `halt`, appending one [`DynInst`] per committed
    /// instruction to `out` (dense `seq` continuing from `out.len()`; the
    /// trailing `halt` executes but is not recorded). This is the engine
    /// under [`crate::trace_program`] and reproduces its record stream and
    /// truncation behaviour exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] if more than `limit` instructions
    /// would be recorded, or [`TraceError::Exec`] on a wild jump.
    pub fn run_trace(&mut self, limit: u64, out: &mut Vec<DynInst>) -> Result<(), TraceError> {
        let mut sink = VecSink {
            seq: out.len() as u64,
            out,
        };
        let mut pc = self.pc;
        let mut n = 0u64;
        let res = loop {
            if sink.seq >= limit {
                break Err(TraceError::Truncated { limit });
            }
            if self.halted {
                break Ok(());
            }
            match self.dispatch_at(pc, &mut sink) {
                Ok(next) => {
                    pc = next;
                    n += 1;
                }
                Err(e) => break Err(TraceError::Exec(e)),
            }
            if self.halted {
                break Ok(());
            }
        };
        self.pc = pc;
        self.executed += n;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::Machine;

    /// Steps both machines to completion and asserts lockstep agreement on
    /// every `ExecInfo`, the final register file and the executed count.
    fn assert_lockstep(src: &str) {
        let p = assemble(src).expect("assembles");
        let pre = PreProgram::new(&p);
        let mut reference = Machine::new(&p);
        let mut threaded = ThreadedMachine::new(&pre);
        for step in 0..200_000u64 {
            let a = reference.step();
            let b = threaded.step();
            assert_eq!(a, b, "step {step} diverged");
            if matches!(a, Ok(StepOutcome::Halted) | Err(_)) {
                break;
            }
        }
        assert_eq!(reference.regs(), threaded.regs());
        assert_eq!(reference.pc(), threaded.pc());
        assert_eq!(reference.executed(), threaded.executed());
        assert_eq!(reference.is_halted(), threaded.is_halted());
    }

    #[test]
    fn lockstep_alu_and_control() {
        assert_lockstep(
            r#"
                li   x1, 7
                li   x2, 0
            loop:
                add  x2, x2, x1
                slli x3, x2, 2
                srai x4, x3, 1
                sltu x5, x4, x2
                addi x1, x1, -1
                bne  x1, x0, loop
                jal  x6, done
                li   x7, 111
            done:
                halt
            "#,
        );
    }

    #[test]
    fn lockstep_memory_all_widths() {
        assert_lockstep(
            r#"
                li  x1, 0x1ffd   # deliberately page-straddling base
                li  x2, -1
                sd  x2, 0(x1)
                ld  x3, 0(x1)
                sw  x2, 8(x1)
                lw  x4, 8(x1)
                lwu x5, 8(x1)
                sh  x2, 16(x1)
                lh  x6, 16(x1)
                lhu x7, 16(x1)
                sb  x2, 24(x1)
                lb  x8, 24(x1)
                lbu x9, 24(x1)
                halt
            "#,
        );
    }

    #[test]
    fn lockstep_cold_compute() {
        assert_lockstep(
            r#"
                li        x1, -9
                li        x2, 0
                div       x3, x1, x2
                rem       x4, x1, x2
                li        x2, 4
                div       x5, x1, x2
                fcvt.d.l  f1, x1
                fsqrt     f2, f1
                fadd      f3, f1, f2
                fdiv      f4, f3, f1
                fcvt.l.d  x6, f4
                flt       x7, f1, f2
                halt
            "#,
        );
    }

    #[test]
    fn wild_jump_matches_oracle_error() {
        let p = assemble("jal x0, 999").unwrap();
        let pre = PreProgram::new(&p);
        let mut m = ThreadedMachine::new(&pre);
        m.step().unwrap();
        assert_eq!(m.step(), Err(ExecError::PcOutOfRange { pc: 999, len: 1 }));
    }

    #[test]
    fn run_reports_step_limit_like_oracle() {
        let p = assemble("loop: jal x0, loop").unwrap();
        let pre = PreProgram::new(&p);
        let mut m = ThreadedMachine::new(&pre);
        assert_eq!(m.run(100), Err(ExecError::StepLimit { limit: 100 }));
    }

    #[test]
    fn data_segment_is_loaded() {
        let p = assemble(
            r#"
            .data 0x100
            .word 0xdeadbeef
            .text
                li x1, 0x100
                lwu x2, 0(x1)
                halt
            "#,
        );
        // The assembler may not support data directives; fall back to a
        // store-driven check if so.
        if let Ok(p) = p {
            let pre = PreProgram::new(&p);
            let mut m = ThreadedMachine::new(&pre);
            let mut r = Machine::new(&p);
            m.run(100).unwrap();
            r.run(100).unwrap();
            assert_eq!(m.regs(), r.regs());
        }
    }

    #[test]
    fn run_trace_matches_reference_trace_generation() {
        let src = r#"
            li  x1, 2
            li  x2, 0x100
        loop:
            sd  x1, 0(x2)
            ld  x3, 0(x2)
            addi x1, x1, -1
            bne x1, x0, loop
            halt
        "#;
        let p = assemble(src).unwrap();
        // Reference stream straight off the oracle.
        let mut machine = Machine::new(&p);
        let mut want = Vec::new();
        let mut seq = 0u64;
        loop {
            match machine.step().unwrap() {
                StepOutcome::Halted => break,
                StepOutcome::Executed(info) => {
                    if info.inst.op == Op::Halt {
                        break;
                    }
                    want.push(DynInst {
                        seq,
                        pc: info.pc,
                        inst: info.inst,
                        next_pc: info.next_pc,
                        addr: info.addr,
                        taken: info.taken,
                        rd_value: info.rd_value,
                        store_value: info.store_value,
                    });
                    seq += 1;
                }
            }
        }
        let pre = PreProgram::new(&p);
        let mut m = ThreadedMachine::new(&pre);
        let mut got = Vec::new();
        m.run_trace(1_000, &mut got).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn run_trace_truncation_matches_trace_program() {
        let p = assemble("loop: jal x0, loop").unwrap();
        let pre = PreProgram::new(&p);
        let mut m = ThreadedMachine::new(&pre);
        let mut out = Vec::new();
        assert_eq!(
            m.run_trace(50, &mut out),
            Err(TraceError::Truncated { limit: 50 })
        );
    }

    #[test]
    fn lowering_is_total_over_the_isa() {
        use crate::reg::Reg;
        for op in Op::all() {
            let inst = Inst {
                op,
                rd: Reg::from_index(3).unwrap(),
                rs1: Reg::from_index(4).unwrap(),
                rs2: Reg::from_index(5).unwrap(),
                imm: 7,
            };
            let p = lower(inst);
            assert_eq!(p.rd, 3);
            assert_eq!(p.rs1, 4);
            assert_eq!(p.rs2, 5);
            assert_eq!(p.imm, 7);
        }
    }

    #[test]
    fn hot_op_entries_stay_within_sixteen_bytes() {
        // The plain `run` loop streams one PreInst per dynamic
        // instruction; the cold Inst copy lives in a parallel array.
        assert!(std::mem::size_of::<PreInst>() <= 16);
    }

    #[test]
    fn pair_entries_stay_within_sixteen_bytes() {
        // The fused loop streams one PairEntry per two instructions; at
        // 16 bytes a pair costs what one scalar PreInst does.
        assert_eq!(std::mem::size_of::<PairEntry>(), 16);
    }

    /// Runs `run(limit)` on both machines for every limit in `limits` and
    /// asserts identical outcome, register file, pc and executed count.
    /// Odd limits land mid-pair, pinning the fused loop's StepLimit
    /// exactness (it must fall back to scalar for the final instruction).
    fn assert_run_parity(src: &str, limits: &[u64]) {
        let p = assemble(src).expect("assembles");
        let pre = PreProgram::new(&p);
        for &limit in limits {
            let mut reference = Machine::new(&p);
            let mut threaded = ThreadedMachine::new(&pre);
            let a = reference.run(limit);
            let b = threaded.run(limit);
            assert_eq!(a, b, "run({limit}) outcome diverged");
            assert_eq!(reference.regs(), threaded.regs(), "run({limit}) regs");
            assert_eq!(reference.pc(), threaded.pc(), "run({limit}) pc");
            assert_eq!(
                reference.executed(),
                threaded.executed(),
                "run({limit}) executed"
            );
        }
    }

    #[test]
    fn fused_run_matches_oracle_at_every_limit() {
        // Straight-line fusable body (compute/load/store pairs) inside a
        // counted loop; sweep limits across and just past both pair
        // boundaries and the halt.
        let src = r#"
                li   x1, 4
                li   x2, 0x200
            loop:
                addi x3, x1, 5
                add  x4, x3, x3
                sd   x4, 0(x2)
                ld   x5, 0(x2)
                xor  x6, x5, x1
                addi x1, x1, -1
                bne  x1, x0, loop
                halt
        "#;
        let limits: Vec<u64> = (0..40).chain([100, 1_000]).collect();
        assert_run_parity(src, &limits);
    }

    #[test]
    fn fused_forwarding_feeds_dependent_second_halves() {
        // Each pair's second half consumes the first half's destination:
        // the FWD bit must hand the just-computed value across, not the
        // stale register-file copy. The oracle run pins the values.
        assert_run_parity(
            r#"
                li   x1, 3
                li   x2, 0x300
            loop:
                addi x3, x1, 7
                slli x4, x3, 2
                add  x4, x4, x4
                sd   x4, 0(x2)
                ld   x5, 0(x2)
                addi x5, x5, 1
                addi x1, x1, -1
                bne  x1, x0, loop
                halt
            "#,
            &[u64::MAX],
        );
    }

    #[test]
    fn fused_x0_destination_stays_zero() {
        // A fused first half targeting x0 must sink its result; the
        // second half reading x0 must still see zero (no forwarding from
        // a sunk write).
        assert_run_parity(
            r#"
                li   x1, 41
                addi x0, x1, 1
                add  x2, x0, x1
                addi x0, x2, 9
                or   x3, x0, x0
                halt
            "#,
            &[u64::MAX, 3, 4, 5],
        );
    }

    #[test]
    fn fused_store_first_half_ignores_rd() {
        // Handwritten (non-assembler) stores can carry rd != x0; the
        // oracle ignores a store's rd, so the fused store arm must sink
        // it rather than write the stored value into rd.
        use crate::reg::Reg;
        let r = |i: u8| Reg::from_index(i).unwrap();
        let mk = |op, rd: u8, rs1: u8, rs2: u8, imm: i64| Inst {
            op,
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
            imm,
        };
        let p = Program {
            insts: vec![
                mk(Op::Li, 1, 0, 0, 0x77),
                mk(Op::Li, 2, 0, 0, 0x400),
                // sd with rd = x3: oracle leaves x3 untouched.
                mk(Op::Sd, 3, 2, 1, 0),
                mk(Op::Add, 4, 3, 1, 0),
                mk(Op::Halt, 0, 0, 0, 0),
            ],
            entry: 0,
            data: vec![],
        };
        let pre = PreProgram::new(&p);
        // The (sd, add) window must actually have fused for this test to
        // exercise the sink path.
        assert!(pre.pairs[2].k1 != Kind::Nop, "sd+add pair did not fuse");
        let mut reference = Machine::new(&p);
        let mut threaded = ThreadedMachine::new(&pre);
        reference.run(100).unwrap();
        threaded.run(100).unwrap();
        assert_eq!(reference.regs(), threaded.regs());
        assert_eq!(threaded.regs()[3], 0, "store rd leaked into x3");
    }
}
