//! Decoded instruction representation.

use std::fmt;

use crate::op::{InstClass, Op};
use crate::reg::Reg;

/// A decoded SimRISC instruction.
///
/// Fields that an opcode does not use are ignored by the interpreter but
/// kept in the struct so the representation stays a plain, copyable record.
/// Use the constructors ([`Inst::rrr`], [`Inst::rri`], …) rather than struct
/// literals; they assert the operand shape matches the opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// Destination register (meaningful iff `op.writes_rd()`).
    pub rd: Reg,
    /// First source register (meaningful iff `op.reads_rs1()`).
    pub rs1: Reg,
    /// Second source register (meaningful iff `op.reads_rs2()`).
    pub rs2: Reg,
    /// Immediate: memory displacement, ALU immediate, or absolute branch /
    /// jump target (an instruction index).
    pub imm: i64,
}

impl Inst {
    /// Register-register-register form (`add rd, rs1, rs2`).
    pub fn rrr(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        debug_assert!(op.writes_rd() && op.reads_rs1() && op.reads_rs2(), "{op}");
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// Register-register-immediate form (`addi rd, rs1, imm`; loads).
    pub fn rri(op: Op, rd: Reg, rs1: Reg, imm: i64) -> Inst {
        debug_assert!(op.writes_rd() && op.reads_rs1() && !op.reads_rs2(), "{op}");
        Inst {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Load-immediate form (`li rd, imm`).
    pub fn ri(op: Op, rd: Reg, imm: i64) -> Inst {
        debug_assert!(op.writes_rd() && !op.reads_rs1(), "{op}");
        Inst {
            op,
            rd,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Store form (`sd rs2, imm(rs1)`).
    pub fn store(op: Op, rs2: Reg, rs1: Reg, imm: i64) -> Inst {
        debug_assert!(op.class() == InstClass::Store, "{op}");
        Inst {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm,
        }
    }

    /// Branch form (`beq rs1, rs2, target`); `target` is an instruction index.
    pub fn branch(op: Op, rs1: Reg, rs2: Reg, target: i64) -> Inst {
        debug_assert!(op.class() == InstClass::Branch, "{op}");
        Inst {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm: target,
        }
    }

    /// `jal rd, target`.
    pub fn jal(rd: Reg, target: i64) -> Inst {
        Inst {
            op: Op::Jal,
            rd,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: target,
        }
    }

    /// `jalr rd, rs1, imm`.
    pub fn jalr(rd: Reg, rs1: Reg, imm: i64) -> Inst {
        Inst {
            op: Op::Jalr,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// `nop`.
    pub fn nop() -> Inst {
        Inst {
            op: Op::Nop,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        }
    }

    /// `halt`.
    pub fn halt() -> Inst {
        Inst {
            op: Op::Halt,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        }
    }

    /// The behaviour class of the instruction.
    pub fn class(&self) -> InstClass {
        self.op.class()
    }

    /// Destination register, if the instruction writes one (never `x0`).
    pub fn dest(&self) -> Option<Reg> {
        (self.op.writes_rd() && !self.rd.is_zero()).then_some(self.rd)
    }

    /// Source registers actually read by the instruction (zero register
    /// excluded: it never creates a dependence).
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        let s1 = (self.op.reads_rs1() && !self.rs1.is_zero()).then_some(self.rs1);
        let s2 = (self.op.reads_rs2() && !self.rs2.is_zero()).then_some(self.rs2);
        s1.into_iter().chain(s2)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use InstClass::*;
        let m = self.op.mnemonic();
        match self.op.class() {
            Load => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            Store => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            Branch => write!(f, "{m} {}, {}, {}", self.rs1, self.rs2, self.imm),
            Jump if self.op == Op::Jal => write!(f, "jal {}, {}", self.rd, self.imm),
            Jump => write!(f, "jalr {}, {}, {}", self.rd, self.rs1, self.imm),
            Nop => f.write_str(m),
            _ if self.op == Op::Li => write!(f, "li {}, {}", self.rd, self.imm),
            _ if self.op.reads_rs2() => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2)
            }
            _ if self.op.reads_rs1() => {
                if matches!(self.op, Op::FSqrt | Op::FCvtFI | Op::FCvtIF) {
                    write!(f, "{m} {}, {}", self.rd, self.rs1)
                } else {
                    write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm)
                }
            }
            _ => write!(f, "{m} {}, {}", self.rd, self.imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_excludes_zero_register() {
        let i = Inst::rri(Op::Addi, Reg::ZERO, Reg::int(1), 4);
        assert_eq!(i.dest(), None);
        let i = Inst::rri(Op::Addi, Reg::int(3), Reg::int(1), 4);
        assert_eq!(i.dest(), Some(Reg::int(3)));
    }

    #[test]
    fn sources_exclude_zero_register() {
        let i = Inst::rrr(Op::Add, Reg::int(1), Reg::ZERO, Reg::int(2));
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::int(2)]);
    }

    #[test]
    fn store_has_no_dest_but_two_sources() {
        let s = Inst::store(Op::Sd, Reg::int(5), Reg::int(6), 8);
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources().count(), 2);
    }

    #[test]
    fn display_formats_common_shapes() {
        assert_eq!(
            Inst::rrr(Op::Add, Reg::int(1), Reg::int(2), Reg::int(3)).to_string(),
            "add x1, x2, x3"
        );
        assert_eq!(
            Inst::rri(Op::Ld, Reg::int(1), Reg::int(2), 16).to_string(),
            "ld x1, 16(x2)"
        );
        assert_eq!(
            Inst::store(Op::Sw, Reg::int(1), Reg::int(2), -4).to_string(),
            "sw x1, -4(x2)"
        );
        assert_eq!(
            Inst::branch(Op::Bne, Reg::int(1), Reg::ZERO, 7).to_string(),
            "bne x1, x0, 7"
        );
        assert_eq!(Inst::ri(Op::Li, Reg::int(9), 42).to_string(), "li x9, 42");
    }
}
