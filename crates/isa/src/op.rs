//! Opcodes and their static properties.

use std::fmt;

/// A SimRISC opcode.
///
/// The set is deliberately small but covers every behaviour class the
/// timing models distinguish: single-cycle integer ALU, long-latency
/// integer multiply/divide, pipelined FP add/multiply, long-latency FP
/// divide/sqrt, loads and stores of several widths, conditional branches
/// and unconditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant meanings follow RISC-V mnemonics
pub enum Op {
    // Integer register-register.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Div,
    Rem,
    // Integer register-immediate.
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    /// `rd = imm` (load immediate; covers `lui`-style constant generation).
    Li,
    // Floating point (operands are f64 bit patterns in the unified regs).
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    FMin,
    FMax,
    /// Convert integer (rs1, two's complement) to f64 bits in rd.
    FCvtIF,
    /// Convert f64 bits (rs1) to integer in rd (truncating).
    FCvtFI,
    /// Integer 1 if f64(rs1) < f64(rs2) else 0.
    FLt,
    /// Integer 1 if f64(rs1) == f64(rs2) else 0.
    FEq,
    // Loads: address = rs1 + imm. Widths 1/2/4/8, sign- or zero-extended.
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Lwu,
    Ld,
    /// FP load (8 bytes into an fp register).
    Fld,
    // Stores: mem[rs1 + imm] = rs2 (low `width` bytes).
    Sb,
    Sh,
    Sw,
    Sd,
    /// FP store (8 bytes from an fp register).
    Fsd,
    // Control flow. Branch/jump immediates are absolute instruction indices.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    /// `rd = pc + 1; pc = imm`.
    Jal,
    /// `rd = pc + 1; pc = rs1 + imm` (indirect jump).
    Jalr,
    Nop,
    /// Stops execution; the interpreter reports a clean halt.
    Halt,
}

/// Behaviour class of an instruction, as distinguished by the timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (pipelined, multi-cycle).
    IntMul,
    /// Integer divide / remainder (unpipelined, long latency).
    IntDiv,
    /// FP add/sub/compare/convert/min/max (pipelined).
    FpAdd,
    /// FP multiply (pipelined).
    FpMul,
    /// FP divide / square root (unpipelined, long latency).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct or indirect jump.
    Jump,
    /// No-operation (also `halt`).
    Nop,
}

impl InstClass {
    /// All classes, for building per-class tables.
    pub const ALL: [InstClass; 11] = [
        InstClass::IntAlu,
        InstClass::IntMul,
        InstClass::IntDiv,
        InstClass::FpAdd,
        InstClass::FpMul,
        InstClass::FpDiv,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::Nop,
    ];

    /// Whether instructions of this class access data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// Whether instructions of this class change control flow.
    pub fn is_control(self) -> bool {
        matches!(self, InstClass::Branch | InstClass::Jump)
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::IntAlu => "int-alu",
            InstClass::IntMul => "int-mul",
            InstClass::IntDiv => "int-div",
            InstClass::FpAdd => "fp-add",
            InstClass::FpMul => "fp-mul",
            InstClass::FpDiv => "fp-div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Jump => "jump",
            InstClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

impl Op {
    /// The behaviour class of this opcode.
    pub fn class(self) -> InstClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Li => InstClass::IntAlu,
            Mul => InstClass::IntMul,
            Div | Rem => InstClass::IntDiv,
            FAdd | FSub | FMin | FMax | FCvtIF | FCvtFI | FLt | FEq => InstClass::FpAdd,
            FMul => InstClass::FpMul,
            FDiv | FSqrt => InstClass::FpDiv,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => InstClass::Load,
            Sb | Sh | Sw | Sd | Fsd => InstClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => InstClass::Branch,
            Jal | Jalr => InstClass::Jump,
            Nop | Halt => InstClass::Nop,
        }
    }

    /// Width in bytes of the memory access, if this is a load or store.
    pub fn mem_width(self) -> Option<u8> {
        use Op::*;
        match self {
            Lb | Lbu | Sb => Some(1),
            Lh | Lhu | Sh => Some(2),
            Lw | Lwu | Sw => Some(4),
            Ld | Fld | Sd | Fsd => Some(8),
            _ => None,
        }
    }

    /// Whether the opcode writes a destination register.
    pub fn writes_rd(self) -> bool {
        use Op::*;
        !matches!(
            self,
            Sb | Sh | Sw | Sd | Fsd | Beq | Bne | Blt | Bge | Bltu | Bgeu | Nop | Halt
        )
    }

    /// Whether the opcode reads `rs1`.
    pub fn reads_rs1(self) -> bool {
        use Op::*;
        !matches!(self, Li | Jal | Nop | Halt)
    }

    /// Whether the opcode reads `rs2`.
    pub fn reads_rs2(self) -> bool {
        use Op::*;
        matches!(
            self,
            Add | Sub
                | And
                | Or
                | Xor
                | Sll
                | Srl
                | Sra
                | Slt
                | Sltu
                | Mul
                | Div
                | Rem
                | FAdd
                | FSub
                | FMul
                | FDiv
                | FMin
                | FMax
                | FLt
                | FEq
                | Sb
                | Sh
                | Sw
                | Sd
                | Fsd
                | Beq
                | Bne
                | Blt
                | Bge
                | Bltu
                | Bgeu
        )
    }

    /// The assembler mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Li => "li",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FSqrt => "fsqrt",
            FMin => "fmin",
            FMax => "fmax",
            FCvtIF => "fcvt.d.l",
            FCvtFI => "fcvt.l.d",
            FLt => "flt",
            FEq => "feq",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwu => "lwu",
            Ld => "ld",
            Fld => "fld",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Fsd => "fsd",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Jal => "jal",
            Jalr => "jalr",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// All opcodes, for exhaustive tests and the assembler's mnemonic table.
    pub fn all() -> impl Iterator<Item = Op> {
        use Op::*;
        [
            Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul, Div, Rem, Addi, Andi, Ori, Xori,
            Slli, Srli, Srai, Slti, Li, FAdd, FSub, FMul, FDiv, FSqrt, FMin, FMax, FCvtIF, FCvtFI,
            FLt, FEq, Lb, Lbu, Lh, Lhu, Lw, Lwu, Ld, Fld, Sb, Sh, Sw, Sd, Fsd, Beq, Bne, Blt, Bge,
            Bltu, Bgeu, Jal, Jalr, Nop, Halt,
        ]
        .into_iter()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Op::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }

    #[test]
    fn mem_width_only_for_mem_ops() {
        for op in Op::all() {
            assert_eq!(op.mem_width().is_some(), op.class().is_mem(), "{op}");
        }
    }

    #[test]
    fn stores_and_branches_do_not_write_rd() {
        assert!(!Op::Sd.writes_rd());
        assert!(!Op::Beq.writes_rd());
        assert!(Op::Jal.writes_rd());
        assert!(Op::Ld.writes_rd());
    }

    #[test]
    fn class_mem_and_control_are_disjoint() {
        for class in InstClass::ALL {
            assert!(!(class.is_mem() && class.is_control()));
        }
    }

    #[test]
    fn rs2_readers_are_register_register_shapes() {
        assert!(Op::Add.reads_rs2());
        assert!(Op::Beq.reads_rs2());
        assert!(Op::Sd.reads_rs2());
        assert!(!Op::Addi.reads_rs2());
        assert!(!Op::Ld.reads_rs2());
        assert!(!Op::Jalr.reads_rs2());
    }
}
