//! Pure architectural semantics helpers.
//!
//! These functions define SimRISC computation independent of any machine
//! state, so both the reference interpreter ([`crate::Machine`]) and the
//! Fg-STP partitioned functional executor evaluate instructions through
//! the *same* code — a disagreement between the two can then only come
//! from mis-wired dependences, never from divergent semantics.

use crate::op::Op;

/// Evaluates a pure compute instruction (integer/FP ALU, including `li`).
///
/// Returns `None` for opcodes whose result depends on memory, the pc or
/// control flow (loads, stores, branches, jumps, `nop`, `halt`).
#[inline(always)]
pub fn eval_compute(op: Op, rs1: u64, rs2: u64, imm: i64) -> Option<u64> {
    let f1 = f64::from_bits(rs1);
    let f2 = f64::from_bits(rs2);
    use Op::*;
    Some(match op {
        Add => rs1.wrapping_add(rs2),
        Sub => rs1.wrapping_sub(rs2),
        And => rs1 & rs2,
        Or => rs1 | rs2,
        Xor => rs1 ^ rs2,
        Sll => rs1.wrapping_shl(rs2 as u32 & 63),
        Srl => rs1.wrapping_shr(rs2 as u32 & 63),
        Sra => ((rs1 as i64).wrapping_shr(rs2 as u32 & 63)) as u64,
        Slt => u64::from((rs1 as i64) < (rs2 as i64)),
        Sltu => u64::from(rs1 < rs2),
        Mul => rs1.wrapping_mul(rs2),
        Div => {
            if rs2 == 0 {
                u64::MAX
            } else {
                (rs1 as i64).wrapping_div(rs2 as i64) as u64
            }
        }
        Rem => {
            if rs2 == 0 {
                rs1
            } else {
                (rs1 as i64).wrapping_rem(rs2 as i64) as u64
            }
        }
        Addi => rs1.wrapping_add(imm as u64),
        Andi => rs1 & imm as u64,
        Ori => rs1 | imm as u64,
        Xori => rs1 ^ imm as u64,
        Slli => rs1.wrapping_shl(imm as u32 & 63),
        Srli => rs1.wrapping_shr(imm as u32 & 63),
        Srai => ((rs1 as i64).wrapping_shr(imm as u32 & 63)) as u64,
        Slti => u64::from((rs1 as i64) < imm),
        Li => imm as u64,
        FAdd => (f1 + f2).to_bits(),
        FSub => (f1 - f2).to_bits(),
        FMul => (f1 * f2).to_bits(),
        FDiv => (f1 / f2).to_bits(),
        FSqrt => f1.sqrt().to_bits(),
        FMin => f1.min(f2).to_bits(),
        FMax => f1.max(f2).to_bits(),
        FCvtIF => ((rs1 as i64) as f64).to_bits(),
        FCvtFI => (f1 as i64) as u64,
        FLt => u64::from(f1 < f2),
        FEq => u64::from(f1 == f2),
        _ => return None,
    })
}

/// Evaluates a conditional branch; `None` for non-branch opcodes.
#[inline(always)]
pub fn branch_taken(op: Op, rs1: u64, rs2: u64) -> Option<bool> {
    use Op::*;
    Some(match op {
        Beq => rs1 == rs2,
        Bne => rs1 != rs2,
        Blt => (rs1 as i64) < (rs2 as i64),
        Bge => (rs1 as i64) >= (rs2 as i64),
        Bltu => rs1 < rs2,
        Bgeu => rs1 >= rs2,
        _ => return None,
    })
}

/// Applies a load's sign/zero extension to the raw little-endian bytes.
#[inline(always)]
pub fn load_extend(op: Op, raw: u64) -> u64 {
    use Op::*;
    match op {
        Lb => (raw as u8) as i8 as i64 as u64,
        Lh => (raw as u16) as i16 as i64 as u64,
        Lw => (raw as u32) as i32 as i64 as u64,
        _ => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_covers_every_alu_op() {
        use crate::op::InstClass;
        for op in Op::all() {
            let is_compute = matches!(
                op.class(),
                InstClass::IntAlu
                    | InstClass::IntMul
                    | InstClass::IntDiv
                    | InstClass::FpAdd
                    | InstClass::FpMul
                    | InstClass::FpDiv
            );
            assert_eq!(eval_compute(op, 6, 3, 2).is_some(), is_compute, "{op}");
        }
    }

    #[test]
    fn branch_taken_covers_exactly_branches() {
        use crate::op::InstClass;
        for op in Op::all() {
            assert_eq!(
                branch_taken(op, 1, 2).is_some(),
                op.class() == InstClass::Branch,
                "{op}"
            );
        }
    }

    #[test]
    fn extensions_match_widths() {
        assert_eq!(load_extend(Op::Lb, 0xff), u64::MAX);
        assert_eq!(load_extend(Op::Lbu, 0xff), 0xff);
        assert_eq!(load_extend(Op::Lw, 0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(load_extend(Op::Lwu, 0x8000_0000), 0x8000_0000);
        assert_eq!(load_extend(Op::Ld, u64::MAX), u64::MAX);
    }

    #[test]
    fn division_semantics_match_riscv() {
        assert_eq!(eval_compute(Op::Div, 7, 0, 0), Some(u64::MAX));
        assert_eq!(eval_compute(Op::Rem, 7, 0, 0), Some(7));
        assert_eq!(
            eval_compute(Op::Div, (-7i64) as u64, 2, 0),
            Some((-3i64) as u64)
        );
    }
}
