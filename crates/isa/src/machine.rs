//! Functional interpreter: the architectural reference semantics.
//!
//! Every timing model in the workspace is trace-driven from this
//! interpreter, and the Fg-STP partitioned functional executor is checked
//! against it, so this module is the single source of truth for what a
//! SimRISC program *means*.

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::op::Op;
use crate::program::Program;
use crate::reg::NUM_REGS;

pub(crate) const PAGE_SHIFT: u64 = 12;
pub(crate) const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, paged, byte-addressable little-endian memory.
///
/// Reads of never-written locations return zero, matching a zero-initialized
/// address space.
///
/// Storage is split into a page-index map and a dense slot arena: a page's
/// slot number is stable for the life of the memory (pages are never
/// removed), which lets the threaded interpreter cache its last page
/// translation and skip the hash lookup on the common same-page access.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    map: HashMap<u64, u32>,
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Slot of an already-allocated page, if any. Read paths never
    /// allocate: a missing page reads as zero.
    #[inline]
    pub(crate) fn slot_of(&self, page: u64) -> Option<u32> {
        self.map.get(&page).copied()
    }

    /// Slot of `page`, allocating a zero page on first write.
    #[inline]
    pub(crate) fn slot_for_write(&mut self, page: u64) -> u32 {
        if let Some(&slot) = self.map.get(&page) {
            return slot;
        }
        let slot = self.pages.len() as u32;
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        self.map.insert(page, slot);
        slot
    }

    /// The bytes of an allocated page.
    #[inline]
    pub(crate) fn page_bytes(&self, slot: u32) -> &[u8; PAGE_SIZE] {
        &self.pages[slot as usize]
    }

    /// The bytes of an allocated page, mutably.
    #[inline]
    pub(crate) fn page_bytes_mut(&mut self, slot: u32) -> &mut [u8; PAGE_SIZE] {
        &mut self.pages[slot as usize]
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.page_bytes(slot)[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let slot = self.slot_for_write(addr >> PAGE_SHIFT);
        self.page_bytes_mut(slot)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `width` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    #[inline]
    pub fn read(&self, addr: u64, width: u8) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        let w = usize::from(width);
        // Within-page fast path: any access that does not straddle a page
        // boundary (all aligned accesses in particular) decodes with one
        // page lookup instead of `width` byte lookups.
        if off + w <= PAGE_SIZE {
            return match self.slot_of(addr >> PAGE_SHIFT) {
                Some(slot) => {
                    let mut le = [0u8; 8];
                    le[..w].copy_from_slice(&self.page_bytes(slot)[off..off + w]);
                    u64::from_le_bytes(le)
                }
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..u64::from(width) {
            v |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `value` little-endian.
    #[inline]
    pub fn write(&mut self, addr: u64, width: u8, value: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        let w = usize::from(width);
        if off + w <= PAGE_SIZE {
            let slot = self.slot_for_write(addr >> PAGE_SHIFT);
            self.page_bytes_mut(slot)[off..off + w].copy_from_slice(&value.to_le_bytes()[..w]);
            return;
        }
        for i in 0..u64::from(width) {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Bulk-loads `bytes` starting at `addr`, copying page-sized chunks
    /// instead of issuing one write per byte — machine construction loads
    /// whole data segments through this.
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            let slot = self.slot_for_write(addr >> PAGE_SHIFT);
            self.page_bytes_mut(slot)[off..off + n].copy_from_slice(&rest[..n]);
            addr = addr.wrapping_add(n as u64);
            rest = &rest[n..];
        }
    }

    /// Number of distinct pages touched by writes.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }
}

/// Error raised by the functional interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the instruction array.
    PcOutOfRange {
        /// The offending program counter.
        pc: u64,
        /// Number of instructions in the program.
        len: usize,
    },
    /// `run` hit its step limit before the program halted.
    StepLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc, len } => {
                write!(
                    f,
                    "program counter {pc} outside program of {len} instructions"
                )
            }
            ExecError::StepLimit { limit } => {
                write!(f, "program did not halt within {limit} steps")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-instruction execution record, consumed by trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecInfo {
    /// Program counter of the executed instruction.
    pub pc: u64,
    /// The executed instruction.
    pub inst: Inst,
    /// Program counter of the next instruction.
    pub next_pc: u64,
    /// Effective address, for loads and stores.
    pub addr: Option<u64>,
    /// Value written to the destination register, if any.
    pub rd_value: Option<u64>,
    /// Value stored to memory, for stores.
    pub store_value: Option<u64>,
    /// Branch outcome, for conditional branches.
    pub taken: Option<bool>,
}

/// Outcome of a single interpreter step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// One instruction executed.
    Executed(ExecInfo),
    /// A `halt` instruction was reached (or the machine was already halted).
    Halted,
}

/// The functional SimRISC machine: registers, pc and memory.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    pc: u64,
    mem: Memory,
    halted: bool,
    executed: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine with the program's data segment loaded and the pc
    /// at the entry point.
    pub fn new(program: &'p Program) -> Machine<'p> {
        let mut mem = Memory::new();
        for init in &program.data {
            mem.load_image(init.addr, &init.bytes);
        }
        Machine {
            program,
            regs: [0; NUM_REGS],
            pc: program.entry,
            mem,
            halted: false,
            executed: 0,
        }
    }

    /// The architectural register file (index with [`crate::Reg::index`]).
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether a `halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Read-only view of memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Sets a register (used by tests and workload setup). Writes to `x0`
    /// are ignored, as in hardware.
    pub fn set_reg(&mut self, index: usize, value: u64) {
        if index != 0 {
            self.regs[index] = value;
        }
    }

    fn write_rd(&mut self, inst: &Inst, value: u64) -> Option<u64> {
        if inst.op.writes_rd() {
            if !inst.rd.is_zero() {
                self.regs[inst.rd.index()] = value;
            }
            Some(value)
        } else {
            None
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::PcOutOfRange`] if the pc points outside the
    /// program (e.g. a wild `jalr`).
    pub fn step(&mut self) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let len = self.program.insts.len();
        let inst = *self
            .program
            .insts
            .get(self.pc as usize)
            .ok_or(ExecError::PcOutOfRange { pc: self.pc, len })?;
        let pc = self.pc;
        let rs1 = self.regs[inst.rs1.index()];
        let rs2 = self.regs[inst.rs2.index()];
        let imm = inst.imm;

        let mut next_pc = pc + 1;
        let mut addr = None;
        let mut store_value = None;
        let mut taken = None;
        let mut rd_value = None;

        use Op::*;
        match inst.op {
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
                let a = rs1.wrapping_add(imm as u64);
                addr = Some(a);
                let width = inst.op.mem_width().expect("load has width");
                let raw = self.mem.read(a, width);
                rd_value = self.write_rd(&inst, crate::semantics::load_extend(inst.op, raw));
            }
            Sb | Sh | Sw | Sd | Fsd => {
                let a = rs1.wrapping_add(imm as u64);
                addr = Some(a);
                let width = inst.op.mem_width().expect("store has width");
                self.mem.write(a, width, rs2);
                store_value = Some(rs2);
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let t =
                    crate::semantics::branch_taken(inst.op, rs1, rs2).expect("conditional branch");
                taken = Some(t);
                if t {
                    next_pc = imm as u64;
                }
            }
            Jal => {
                rd_value = self.write_rd(&inst, pc + 1);
                next_pc = imm as u64;
            }
            Jalr => {
                rd_value = self.write_rd(&inst, pc + 1);
                next_pc = rs1.wrapping_add(imm as u64);
            }
            Nop => {}
            _ if inst.op != Op::Halt => {
                let v = crate::semantics::eval_compute(inst.op, rs1, rs2, imm)
                    .expect("remaining opcodes are pure compute");
                rd_value = self.write_rd(&inst, v);
            }
            _ => {
                self.halted = true;
                self.executed += 1;
                return Ok(StepOutcome::Executed(ExecInfo {
                    pc,
                    inst,
                    next_pc: pc,
                    addr: None,
                    rd_value: None,
                    store_value: None,
                    taken: None,
                }));
            }
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok(StepOutcome::Executed(ExecInfo {
            pc,
            inst,
            next_pc,
            addr,
            rd_value,
            store_value,
            taken,
        }))
    }

    /// Runs until `halt` or until `limit` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] if the limit is reached first, or
    /// [`ExecError::PcOutOfRange`] on a wild jump.
    pub fn run(&mut self, limit: u64) -> Result<u64, ExecError> {
        let start = self.executed;
        while !self.halted {
            if self.executed - start >= limit {
                return Err(ExecError::StepLimit { limit });
            }
            self.step()?;
        }
        Ok(self.executed - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::reg::Reg;

    fn run_asm(src: &str) -> Machine<'_> {
        // Leak is fine in tests: keeps the borrow simple.
        let program = Box::leak(Box::new(assemble(src).expect("assembles")));
        let mut m = Machine::new(program);
        m.run(100_000).expect("halts");
        m
    }

    #[test]
    fn memory_defaults_to_zero_and_round_trips() {
        let mut mem = Memory::new();
        assert_eq!(mem.read(0xdead_beef, 8), 0);
        mem.write(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(mem.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(mem.read(0x1004, 4), 0x1122_3344);
        assert_eq!(mem.read_u8(0x1007), 0x11);
    }

    #[test]
    fn memory_handles_page_crossing_access() {
        let mut mem = Memory::new();
        let addr = (1 << 12) - 3; // crosses the first page boundary
        mem.write(addr, 8, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(mem.read(addr, 8), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(mem.pages_touched(), 2);
    }

    #[test]
    fn arithmetic_and_loop() {
        let m = run_asm(
            r#"
                li   x1, 7
                li   x2, 6
                mul  x3, x1, x2
                halt
            "#,
        );
        assert_eq!(m.regs()[3], 42);
    }

    #[test]
    fn signed_ops_wrap_and_compare() {
        let m = run_asm(
            r#"
                li   x1, -5
                li   x2, 3
                div  x3, x1, x2
                rem  x4, x1, x2
                slt  x5, x1, x2
                sltu x6, x1, x2
                sra  x7, x1, x2
                halt
            "#,
        );
        assert_eq!(m.regs()[3] as i64, -1);
        assert_eq!(m.regs()[4] as i64, -2);
        assert_eq!(m.regs()[5], 1);
        assert_eq!(m.regs()[6], 0); // -5 as unsigned is huge
        assert_eq!(m.regs()[7] as i64, -1);
    }

    #[test]
    fn division_by_zero_follows_riscv_semantics() {
        let m = run_asm(
            r#"
                li  x1, 13
                li  x2, 0
                div x3, x1, x2
                rem x4, x1, x2
                halt
            "#,
        );
        assert_eq!(m.regs()[3], u64::MAX);
        assert_eq!(m.regs()[4], 13);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let m = run_asm(
            r#"
                li  x1, 0x1000
                li  x2, -1
                sb  x2, 0(x1)
                lb  x3, 0(x1)
                lbu x4, 0(x1)
                halt
            "#,
        );
        assert_eq!(m.regs()[3] as i64, -1);
        assert_eq!(m.regs()[4], 0xff);
    }

    #[test]
    fn store_load_round_trip_all_widths() {
        let m = run_asm(
            r#"
                li  x1, 0x2000
                li  x2, 0x7ee4_d00d
                sw  x2, 0(x1)
                lw  x3, 0(x1)
                sd  x2, 8(x1)
                ld  x4, 8(x1)
                sh  x2, 16(x1)
                lhu x5, 16(x1)
                halt
            "#,
        );
        assert_eq!(m.regs()[3], 0x7ee4_d00d);
        assert_eq!(m.regs()[4], 0x7ee4_d00d);
        assert_eq!(m.regs()[5], 0xd00d);
    }

    #[test]
    fn fp_arithmetic() {
        let m = run_asm(
            r#"
                li        x1, 9
                fcvt.d.l  f1, x1
                fsqrt     f2, f1
                fcvt.l.d  x2, f2
                li        x3, 2
                fcvt.d.l  f3, x3
                fdiv      f4, f1, f3
                fcvt.l.d  x4, f4
                halt
            "#,
        );
        assert_eq!(m.regs()[2], 3);
        assert_eq!(m.regs()[4], 4); // 9.0 / 2.0 = 4.5, truncates
    }

    #[test]
    fn jal_and_jalr_link_and_jump() {
        let m = run_asm(
            r#"
                jal  ra, target
                li   x5, 111    # skipped by the jal
            target:
                li   x6, 222
                jalr x7, ra, 3  # ra=1, so jump to index 4 (the halt)
                halt
            "#,
        );
        assert_eq!(m.regs()[1], 1); // jal linked the return address
        assert_eq!(m.regs()[5], 0); // fall-through instruction skipped
        assert_eq!(m.regs()[6], 222);
        assert_eq!(m.regs()[7], 4); // jalr linked too
    }

    #[test]
    fn writes_to_x0_are_discarded() {
        let m = run_asm(
            r#"
                li  x0, 77
                add x0, x0, x0
                li  x1, 5
                add x1, x1, x0
                halt
            "#,
        );
        assert_eq!(m.regs()[0], 0);
        assert_eq!(m.regs()[1], 5);
    }

    #[test]
    fn run_reports_step_limit() {
        let program = assemble("loop: jal x0, loop").unwrap();
        let mut m = Machine::new(&program);
        assert_eq!(m.run(100), Err(ExecError::StepLimit { limit: 100 }));
    }

    #[test]
    fn wild_jump_reports_pc_out_of_range() {
        let program = assemble("jal x0, 999").unwrap();
        let mut m = Machine::new(&program);
        m.step().unwrap();
        assert!(matches!(
            m.step(),
            Err(ExecError::PcOutOfRange { pc: 999, .. })
        ));
    }

    #[test]
    fn halted_machine_stays_halted() {
        let program = assemble("halt").unwrap();
        let mut m = Machine::new(&program);
        assert!(matches!(m.step().unwrap(), StepOutcome::Executed(_)));
        assert!(matches!(m.step().unwrap(), StepOutcome::Halted));
        assert!(m.is_halted());
    }

    #[test]
    fn set_reg_ignores_x0() {
        let program = assemble("halt").unwrap();
        let mut m = Machine::new(&program);
        m.set_reg(Reg::ZERO.index(), 9);
        m.set_reg(3, 9);
        assert_eq!(m.regs()[0], 0);
        assert_eq!(m.regs()[3], 9);
    }
}
