//! # fgstp-isa
//!
//! The instruction-set substrate for the Fg-STP reproduction.
//!
//! The original paper evaluates on x86 binaries through a proprietary
//! trace-driven simulator. This crate supplies the equivalent substrate as a
//! clean 64-bit RISC-style ISA ("SimRISC") together with:
//!
//! * a decoded instruction representation ([`Inst`], [`Op`]),
//! * a program container with an initialized data segment ([`Program`]),
//! * a small text assembler ([`asm::assemble`]) used by the workload suite,
//! * a functional interpreter ([`Machine`]) that defines the architectural
//!   semantics, and
//! * dynamic-trace generation ([`trace::trace_program`]) producing the
//!   committed-path instruction stream ([`DynInst`]) that drives every
//!   timing model in the workspace.
//!
//! Program counters are *instruction indices*, not byte addresses: the
//! timing models only need instruction identity and control-flow structure,
//! and index-based PCs keep every table exact.
//!
//! ## Example
//!
//! ```
//! use fgstp_isa::{asm, Machine};
//!
//! let program = asm::assemble(
//!     r#"
//!         addi x1, x0, 10      # n = 10
//!         addi x2, x0, 0       # sum = 0
//!     loop:
//!         add  x2, x2, x1
//!         addi x1, x1, -1
//!         bne  x1, x0, loop
//!         halt
//!     "#,
//! )?;
//! let mut m = Machine::new(&program);
//! m.run(1_000)?;
//! assert_eq!(m.regs()[1], 0);
//! assert_eq!(m.regs()[2], 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod inst;
pub mod machine;
pub mod op;
pub mod predecode;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod trace;

pub use asm::{assemble, AsmError};
pub use inst::Inst;
pub use machine::{ExecError, Machine, StepOutcome};
pub use op::{InstClass, Op};
pub use predecode::{PreProgram, ThreadedMachine};
pub use program::{DataInit, Program};
pub use reg::Reg;
pub use trace::{trace_program, DynInst, Trace, TraceError};
