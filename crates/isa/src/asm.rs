//! A small two-pass text assembler for SimRISC.
//!
//! The workload suite is written in this assembly dialect. Supported syntax:
//!
//! * one instruction per line, `#` comments, `label:` definitions (alone or
//!   before an instruction);
//! * operand shapes follow RISC-V conventions (`ld rd, imm(rs1)`,
//!   `sd rs2, imm(rs1)`, `beq rs1, rs2, label`, …);
//! * immediates are decimal or `0x` hexadecimal, possibly negative; label
//!   names may be used wherever an immediate is expected (they resolve to
//!   instruction indices);
//! * `.equ NAME, value` defines a numeric constant usable as an immediate;
//! * `.data addr` positions the data cursor; `.word v, …` emits 64-bit
//!   words, `.byte v, …` emits bytes and `.zero n` skips `n` bytes.

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::op::{InstClass, Op};
use crate::program::Program;
use crate::reg::Reg;

/// Error produced by [`assemble`], with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn mnemonic_table() -> HashMap<&'static str, Op> {
    Op::all().map(|op| (op.mnemonic(), op)).collect()
}

struct Symbols {
    labels: HashMap<String, u64>,
    consts: HashMap<String, i64>,
}

impl Symbols {
    fn resolve(&self, tok: &str, line: usize) -> Result<i64, AsmError> {
        if let Some(v) = parse_int(tok) {
            return Ok(v);
        }
        if let Some(&v) = self.labels.get(tok) {
            return Ok(v as i64);
        }
        if let Some(&v) = self.consts.get(tok) {
            return Ok(v);
        }
        Err(err(
            line,
            format!("unknown symbol or malformed immediate `{tok}`"),
        ))
    }
}

fn parse_int(tok: &str) -> Option<i64> {
    let cleaned;
    let tok = if tok.contains('_') {
        cleaned = tok.replace('_', "");
        cleaned.as_str()
    } else {
        tok
    };
    let (neg, t) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    tok.parse::<Reg>().map_err(|e| err(line, e.to_string()))
}

/// Splits `imm(reg)` into its parts.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(&str, &str), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(reg)` operand, got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line, format!("unbalanced parentheses in `{tok}`")))?;
    let imm = &tok[..open];
    let reg = &tok[open + 1..close];
    Ok((if imm.is_empty() { "0" } else { imm }, reg))
}

/// Strip comments, returning the code part of a line.
fn code_part(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
    .trim()
}

/// Assembles SimRISC source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based line number for syntax
/// errors, unknown mnemonics, malformed operands and undefined symbols.
///
/// ```
/// use fgstp_isa::assemble;
///
/// let p = assemble("li x1, 3\nhalt")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), fgstp_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let ops = mnemonic_table();
    let mut symbols = Symbols {
        labels: HashMap::new(),
        consts: HashMap::new(),
    };

    // Pass 1: label addresses and constants.
    let mut inst_index = 0u64;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = code_part(raw);
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("malformed label `{}`", &text[..colon])));
            }
            if symbols
                .labels
                .insert(label.to_owned(), inst_index)
                .is_some()
            {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".equ") {
            let (name, value) = rest
                .split_once(',')
                .ok_or_else(|| err(line, "expected `.equ NAME, value`"))?;
            let value = parse_int(value.trim())
                .ok_or_else(|| err(line, format!("malformed constant `{}`", value.trim())))?;
            symbols.consts.insert(name.trim().to_owned(), value);
            continue;
        }
        if text.starts_with('.') {
            continue; // data directives emit no instructions
        }
        inst_index += 1;
    }

    // Pass 2: emit instructions and data.
    let mut insts = Vec::with_capacity(inst_index as usize);
    let mut program = Program::default();
    let mut data_cursor = 0u64;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = code_part(raw);
        while let Some(colon) = text.find(':') {
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if text.starts_with(".equ") {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".data") {
            data_cursor = symbols.resolve(rest.trim(), line)? as u64;
            continue;
        }
        if let Some(rest) = text.strip_prefix(".word") {
            let mut bytes = Vec::new();
            for tok in rest.split(',') {
                let v = symbols.resolve(tok.trim(), line)?;
                bytes.extend_from_slice(&(v as u64).to_le_bytes());
            }
            let len = bytes.len() as u64;
            program.data.push(crate::program::DataInit {
                addr: data_cursor,
                bytes,
            });
            data_cursor += len;
            continue;
        }
        if let Some(rest) = text.strip_prefix(".byte") {
            let mut bytes = Vec::new();
            for tok in rest.split(',') {
                bytes.push(symbols.resolve(tok.trim(), line)? as u8);
            }
            let len = bytes.len() as u64;
            program.data.push(crate::program::DataInit {
                addr: data_cursor,
                bytes,
            });
            data_cursor += len;
            continue;
        }
        if let Some(rest) = text.strip_prefix(".zero") {
            data_cursor += symbols.resolve(rest.trim(), line)? as u64;
            continue;
        }
        if text.starts_with('.') {
            return Err(err(line, format!("unknown directive `{text}`")));
        }

        let (mnemonic, operands) = match text.split_once(char::is_whitespace) {
            Some((m, rest)) => (m, rest.trim()),
            None => (text, ""),
        };
        let op = *ops
            .get(mnemonic)
            .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
        let toks: Vec<&str> = operands
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        let want = |n: usize| -> Result<(), AsmError> {
            if toks.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", toks.len()),
                ))
            }
        };

        let inst = match op.class() {
            InstClass::Load => {
                want(2)?;
                let rd = parse_reg(toks[0], line)?;
                let (imm, rs1) = parse_mem_operand(toks[1], line)?;
                Inst::rri(op, rd, parse_reg(rs1, line)?, symbols.resolve(imm, line)?)
            }
            InstClass::Store => {
                want(2)?;
                let rs2 = parse_reg(toks[0], line)?;
                let (imm, rs1) = parse_mem_operand(toks[1], line)?;
                Inst::store(op, rs2, parse_reg(rs1, line)?, symbols.resolve(imm, line)?)
            }
            InstClass::Branch => {
                want(3)?;
                Inst::branch(
                    op,
                    parse_reg(toks[0], line)?,
                    parse_reg(toks[1], line)?,
                    symbols.resolve(toks[2], line)?,
                )
            }
            InstClass::Jump if op == Op::Jal => {
                want(2)?;
                Inst::jal(parse_reg(toks[0], line)?, symbols.resolve(toks[1], line)?)
            }
            InstClass::Jump => {
                want(3)?;
                Inst::jalr(
                    parse_reg(toks[0], line)?,
                    parse_reg(toks[1], line)?,
                    symbols.resolve(toks[2], line)?,
                )
            }
            InstClass::Nop => {
                want(0)?;
                if op == Op::Halt {
                    Inst::halt()
                } else {
                    Inst::nop()
                }
            }
            _ if op == Op::Li => {
                want(2)?;
                Inst::ri(
                    op,
                    parse_reg(toks[0], line)?,
                    symbols.resolve(toks[1], line)?,
                )
            }
            _ if op.reads_rs2() => {
                want(3)?;
                Inst::rrr(
                    op,
                    parse_reg(toks[0], line)?,
                    parse_reg(toks[1], line)?,
                    parse_reg(toks[2], line)?,
                )
            }
            _ if matches!(op, Op::FSqrt | Op::FCvtFI | Op::FCvtIF) => {
                want(2)?;
                Inst::rri(op, parse_reg(toks[0], line)?, parse_reg(toks[1], line)?, 0)
            }
            _ => {
                want(3)?;
                Inst::rri(
                    op,
                    parse_reg(toks[0], line)?,
                    parse_reg(toks[1], line)?,
                    symbols.resolve(toks[2], line)?,
                )
            }
        };
        insts.push(inst);
    }

    program.insts = insts;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_every_operand_shape() {
        let p = assemble(
            r#"
            start:
                li    x1, 0x10
                addi  x2, x1, -3
                add   x3, x1, x2
                ld    x4, 8(x1)
                sd    x4, 0(x2)
                beq   x1, x2, start
                jal   ra, start
                jalr  x0, ra, 0
                fsqrt f1, f2
                fadd  f3, f1, f2
                nop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 12);
        assert_eq!(p.insts[0], Inst::ri(Op::Li, Reg::int(1), 16));
        assert_eq!(p.insts[1].imm, -3);
        assert_eq!(p.insts[5].imm, 0); // label `start` = index 0
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            r#"
                jal x0, end
            mid:
                nop
                jal x0, mid
            end:
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.insts[0].imm, 3);
        assert_eq!(p.insts[2].imm, 1);
    }

    #[test]
    fn equ_constants_and_data_directives() {
        let p = assemble(
            r#"
                .equ BASE, 0x1000
                .data BASE
                .word 1, 2, 3
                .byte 0xff
                .zero 7
                .word 9
                li x1, BASE
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.insts[0].imm, 0x1000);
        assert_eq!(p.data.len(), 3);
        assert_eq!(p.data[0].addr, 0x1000);
        assert_eq!(p.data[0].bytes.len(), 24);
        assert_eq!(p.data[1].addr, 0x1018);
        assert_eq!(p.data[1].bytes, vec![0xff]);
        assert_eq!(p.data[2].addr, 0x1018 + 1 + 7);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let p = assemble("top: addi x1, x1, 1\njal x0, top").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.insts[1].imm, 0);
    }

    #[test]
    fn mem_operand_with_implicit_zero_offset() {
        let p = assemble("ld x1, (x2)\nhalt").unwrap();
        assert_eq!(p.insts[0].imm, 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("addi x1, x2\n").unwrap_err();
        assert!(e.message.contains("3 operands"));

        let e = assemble("beq x1, x2, nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));

        let e = assemble("ld x1, 8[x2]\n").unwrap_err();
        assert!(e.message.contains("imm(reg)"));

        let e = assemble("dup:\ndup:\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        assert_eq!(parse_int("0x10"), Some(16));
        assert_eq!(parse_int("-0x10"), Some(-16));
        assert_eq!(parse_int("-7"), Some(-7));
        assert_eq!(parse_int("zzz"), None);
    }
}
