//! Architectural register identifiers.
//!
//! SimRISC has a unified architectural register space of 64 registers:
//! indices `0..=31` are the integer registers `x0..x31` (with `x0` hardwired
//! to zero) and indices `32..=63` are the floating-point registers
//! `f0..f31`. A unified index space keeps renaming, dependence analysis and
//! partitioning uniform across register classes, which is all the timing
//! models care about.

use std::fmt;
use std::str::FromStr;

/// Number of architectural registers (integer + floating point).
pub const NUM_REGS: usize = 64;

/// Index of the first floating-point register in the unified space.
pub const FP_BASE: u8 = 32;

/// An architectural register identifier in the unified 64-entry space.
///
/// ```
/// use fgstp_isa::Reg;
///
/// let sp: Reg = "sp".parse()?;
/// assert_eq!(sp, Reg::int(2));
/// assert_eq!(Reg::fp(3).to_string(), "f3");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The integer zero register `x0`, which always reads as zero.
    pub const ZERO: Reg = Reg(0);

    /// Creates an integer register `x{idx}`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn int(idx: u8) -> Reg {
        assert!(idx < FP_BASE, "integer register index {idx} out of range");
        Reg(idx)
    }

    /// Creates a floating-point register `f{idx}`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn fp(idx: u8) -> Reg {
        assert!(idx < 32, "fp register index {idx} out of range");
        Reg(FP_BASE + idx)
    }

    /// Creates a register from a raw unified-space index.
    ///
    /// Returns `None` if `idx >= 64`.
    pub fn from_index(idx: u8) -> Option<Reg> {
        (usize::from(idx) < NUM_REGS).then_some(Reg(idx))
    }

    /// The raw unified-space index (`0..64`).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired-zero register `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        self.0 >= FP_BASE
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - FP_BASE)
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

/// Error produced when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { name: s.to_owned() };
        match s {
            "zero" => return Ok(Reg::ZERO),
            "ra" => return Ok(Reg(1)),
            "sp" => return Ok(Reg(2)),
            _ => {}
        }
        let (class, idx) = s.split_at(1.min(s.len()));
        let idx: u8 = idx.parse().map_err(|_| err())?;
        if idx >= 32 {
            return Err(err());
        }
        match class {
            "x" => Ok(Reg(idx)),
            "f" => Ok(Reg(FP_BASE + idx)),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_indices_do_not_overlap() {
        assert_eq!(Reg::int(31).index(), 31);
        assert_eq!(Reg::fp(0).index(), 32);
        assert_eq!(Reg::fp(31).index(), 63);
    }

    #[test]
    fn zero_register_is_x0() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::int(1).is_zero());
        assert!(!Reg::fp(0).is_zero());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for i in 0..NUM_REGS as u8 {
            let r = Reg::from_index(i).unwrap();
            let parsed: Reg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("ra".parse::<Reg>().unwrap(), Reg::int(1));
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::int(2));
    }

    #[test]
    fn bad_names_are_rejected() {
        for bad in ["x32", "f32", "y1", "", "x", "f-1", "x100"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn from_index_bounds() {
        assert!(Reg::from_index(63).is_some());
        assert!(Reg::from_index(64).is_none());
    }
}
