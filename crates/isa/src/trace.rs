//! Dynamic (committed-path) trace generation.
//!
//! All timing models in the workspace are trace-driven: the functional
//! interpreter first executes the program, producing one [`DynInst`] per
//! committed instruction with resolved effective addresses, branch outcomes
//! and values. The timing models then replay this stream, charging cycles
//! for structural, dependence, branch and memory events. This is the same
//! methodology as the trace-driven simulator used in the paper.

use std::fmt;

use crate::inst::Inst;
use crate::machine::ExecError;
use crate::op::InstClass;
use crate::predecode::{PreProgram, ThreadedMachine};
use crate::program::Program;

/// One committed dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Position in the dynamic stream (0-based, dense).
    pub seq: u64,
    /// Static program counter (instruction index).
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Program counter of the next committed instruction.
    pub next_pc: u64,
    /// Effective address for loads and stores.
    pub addr: Option<u64>,
    /// Branch outcome for conditional branches.
    pub taken: Option<bool>,
    /// Value written to the destination register, if any.
    pub rd_value: Option<u64>,
    /// Value stored to memory, for stores.
    pub store_value: Option<u64>,
}

impl DynInst {
    /// Behaviour class of the instruction.
    pub fn class(&self) -> InstClass {
        self.inst.class()
    }

    /// Whether this dynamic instruction transferred control (taken branch,
    /// or any jump).
    pub fn redirects(&self) -> bool {
        self.taken == Some(true) || self.class() == InstClass::Jump
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>7}] pc={:<6} {}", self.seq, self.pc, self.inst)?;
        if let Some(a) = self.addr {
            write!(f, "  @0x{a:x}")?;
        }
        if let Some(t) = self.taken {
            write!(f, "  {}", if t { "taken" } else { "not-taken" })?;
        }
        Ok(())
    }
}

/// Error from trace generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The functional execution faulted.
    Exec(ExecError),
    /// The program did not halt within the instruction budget.
    Truncated {
        /// The instruction budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Exec(e) => write!(f, "functional execution failed: {e}"),
            TraceError::Truncated { limit } => {
                write!(
                    f,
                    "program did not halt within the {limit}-instruction trace budget"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Exec(e) => Some(e),
            TraceError::Truncated { .. } => None,
        }
    }
}

impl From<ExecError> for TraceError {
    fn from(e: ExecError) -> Self {
        TraceError::Exec(e)
    }
}

/// A committed-path dynamic trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    insts: Vec<DynInst>,
}

impl Trace {
    /// Wraps an already-materialized instruction stream (e.g. one decoded
    /// from a trace file) as a trace. The caller vouches that `insts` is a
    /// committed path in commit order with dense `seq` numbers.
    pub fn from_insts(insts: Vec<DynInst>) -> Trace {
        Trace { insts }
    }

    /// The dynamic instructions, in commit order.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Consumes the trace, yielding the instruction vector without a copy.
    pub fn into_insts(self) -> Vec<DynInst> {
        self.insts
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Count of dynamic instructions in the given class.
    pub fn count_class(&self, class: InstClass) -> usize {
        self.insts.iter().filter(|d| d.class() == class).count()
    }

    /// Fraction of dynamic instructions in the given class (0 for an empty
    /// trace).
    pub fn class_fraction(&self, class: InstClass) -> f64 {
        if self.insts.is_empty() {
            0.0
        } else {
            self.count_class(class) as f64 / self.insts.len() as f64
        }
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = DynInst;

    fn index(&self, i: usize) -> &DynInst {
        &self.insts[i]
    }
}

/// Functionally executes `program` and returns its committed-path trace.
///
/// The trailing `halt` is executed (so the machine state is final) but not
/// recorded: timing models only see real work.
///
/// # Errors
///
/// Returns [`TraceError::Truncated`] if the program does not halt within
/// `limit` dynamic instructions, or [`TraceError::Exec`] if execution
/// faults.
///
/// ```
/// use fgstp_isa::{assemble, trace_program};
///
/// let p = assemble("li x1, 2\nadd x1, x1, x1\nhalt")?;
/// let t = trace_program(&p, 100)?;
/// assert_eq!(t.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trace_program(program: &Program, limit: u64) -> Result<Trace, TraceError> {
    let pre = PreProgram::new(program);
    let mut machine = ThreadedMachine::new(&pre);
    let mut insts = Vec::new();
    machine.run_trace(limit, &mut insts)?;
    Ok(Trace { insts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn trace_records_branch_outcomes_and_addresses() {
        let p = assemble(
            r#"
                li  x1, 2
                li  x2, 0x100
            loop:
                sd  x1, 0(x2)
                ld  x3, 0(x2)
                addi x1, x1, -1
                bne x1, x0, loop
                halt
            "#,
        )
        .unwrap();
        let t = trace_program(&p, 1000).unwrap();
        // 2 setup + 2 iterations of 4 instructions
        assert_eq!(t.len(), 10);
        let branches: Vec<_> = t.insts().iter().filter(|d| d.taken.is_some()).collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].taken, Some(true));
        assert_eq!(branches[1].taken, Some(false));
        let stores = t.count_class(InstClass::Store);
        assert_eq!(stores, 2);
        assert!(t
            .insts()
            .iter()
            .filter(|d| d.class().is_mem())
            .all(|d| d.addr == Some(0x100)));
    }

    #[test]
    fn halt_is_not_recorded() {
        let p = assemble("halt").unwrap();
        let t = trace_program(&p, 10).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn seq_is_dense_and_ordered() {
        let p = assemble("li x1, 1\nli x2, 2\nli x3, 3\nhalt").unwrap();
        let t = trace_program(&p, 10).unwrap();
        for (i, d) in t.insts().iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn truncation_is_reported() {
        let p = assemble("loop: jal x0, loop").unwrap();
        assert_eq!(
            trace_program(&p, 50),
            Err(TraceError::Truncated { limit: 50 })
        );
    }

    #[test]
    fn class_fraction_sums_to_one() {
        let p = assemble(
            r#"
                li x1, 5
                li x2, 0x40
                sd x1, 0(x2)
                ld x3, 0(x2)
                add x4, x3, x1
                bne x4, x0, 6
                halt
            "#,
        )
        .unwrap();
        let t = trace_program(&p, 100).unwrap();
        let total: f64 = InstClass::ALL.iter().map(|&c| t.class_fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
