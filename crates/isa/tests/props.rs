//! Property tests for the ISA crate: display/assemble round-trips and
//! interpreter invariants.

use proptest::prelude::*;

use fgstp_isa::{assemble, trace_program, Inst, Machine, Op, Program, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::int)
}

fn arb_freg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::fp)
}

/// Any instruction whose `Display` output is valid assembler syntax.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::rrr(Op::Add, d, a, b)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::rrr(Op::Mul, d, a, b)),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(d, a, b)| Inst::rrr(Op::Sltu, d, a, b)),
        (arb_freg(), arb_freg(), arb_freg()).prop_map(|(d, a, b)| Inst::rrr(Op::FAdd, d, a, b)),
        (arb_freg(), arb_freg()).prop_map(|(d, a)| Inst::rri(Op::FSqrt, d, a, 0)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(d, a, i)| Inst::rri(
            Op::Addi,
            d,
            a,
            i.into()
        )),
        (arb_reg(), any::<i32>()).prop_map(|(d, i)| Inst::ri(Op::Li, d, i.into())),
        (arb_reg(), arb_reg(), -4096i64..4096).prop_map(|(d, a, i)| Inst::rri(Op::Ld, d, a, i)),
        (arb_reg(), arb_reg(), -4096i64..4096).prop_map(|(s, a, i)| Inst::store(Op::Sw, s, a, i)),
        (arb_reg(), arb_reg(), 0i64..1000).prop_map(|(a, b, t)| Inst::branch(Op::Beq, a, b, t)),
        (arb_reg(), 0i64..1000).prop_map(|(d, t)| Inst::jal(d, t)),
        (arb_reg(), arb_reg(), -16i64..16).prop_map(|(d, a, i)| Inst::jalr(d, a, i)),
        Just(Inst::nop()),
    ]
}

proptest! {
    /// `Display` output re-assembles to the identical instruction.
    #[test]
    fn display_assemble_round_trip(inst in arb_inst()) {
        let text = inst.to_string();
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` does not re-assemble: {e}"));
        prop_assert_eq!(program.insts.len(), 1);
        prop_assert_eq!(program.insts[0], inst, "{}", text);
    }

    /// The interpreter never writes x0 and the step count matches the
    /// trace length plus the halt.
    #[test]
    fn x0_stays_zero_and_counts_match(body in proptest::collection::vec(arb_inst(), 1..40)) {
        // Make the program safe to run: no control flow from the random
        // body (branches could loop), so filter them out.
        let mut insts: Vec<Inst> = body
            .into_iter()
            .filter(|i| !i.class().is_control())
            .collect();
        insts.push(Inst::halt());
        let program = Program::new(insts.clone());
        let trace = trace_program(&program, 10_000).expect("straight line terminates");
        prop_assert_eq!(trace.len(), insts.len() - 1);
        let mut m = Machine::new(&program);
        m.run(10_000).expect("halts");
        prop_assert_eq!(m.regs()[0], 0);
        prop_assert_eq!(m.executed(), insts.len() as u64);
    }

    /// Memory reads reproduce the most recent write per byte.
    #[test]
    fn memory_read_your_writes(
        writes in proptest::collection::vec((0u64..0x4000, 0u8..4, any::<u64>()), 1..50),
        probe in 0u64..0x4000,
    ) {
        use fgstp_isa::machine::Memory;
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, wsel, value) in &writes {
            let width = [1u8, 2, 4, 8][*wsel as usize];
            mem.write(*addr, width, *value);
            for b in 0..u64::from(width) {
                model.insert(addr + b, (*value >> (8 * b)) as u8);
            }
        }
        let expected = *model.get(&probe).unwrap_or(&0);
        prop_assert_eq!(mem.read_u8(probe), expected);
    }
}
