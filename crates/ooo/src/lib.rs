//! # fgstp-ooo
//!
//! Cycle-level out-of-order core timing model — the simulator substrate the
//! Fg-STP paper assumes. The model is trace-driven: the functional
//! interpreter in `fgstp-isa` produces the committed path, and this crate
//! charges cycles for structural hazards (widths, windows, functional
//! units), register and memory dependences, branch prediction and the cache
//! hierarchy.
//!
//! The pipeline ([`Core`]) is machine-agnostic: prediction, fetch gating,
//! global commit order and all cross-core interactions go through
//! [`ExecEnv`], so the same pipeline implements
//!
//! * a conventional single core ([`run_single`] with a one-cluster
//!   [`CoreConfig`]),
//! * the **Core Fusion** baseline (a two-cluster fused configuration from
//!   [`CoreConfig::fused`], still driven by [`run_single`]), and
//! * each half of the **Fg-STP** pair (driven by the `fgstp` crate's
//!   dual-core environment).
//!
//! ```
//! use fgstp_isa::{assemble, trace_program};
//! use fgstp_mem::HierarchyConfig;
//! use fgstp_ooo::{run_single, CoreConfig};
//!
//! let p = assemble("li x1, 3\nadd x2, x1, x1\nhalt")?;
//! let t = trace_program(&p, 1000)?;
//! let r = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
//! assert_eq!(r.committed, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod accounting;
pub mod config;
pub mod core;
pub mod env;
pub mod fu;
pub mod machine;
pub mod pipeview;
pub mod stream;
pub mod warm;

pub use accounting::{classify_single, stat_delta, StatDelta};
pub use config::{ClusterConfig, CoreConfig, FuCounts, FuLatencies, MemDepPolicy};
pub use core::{CommitStall, Core, CoreStats};
pub use env::{ExecEnv, FetchGate, LoadGate, Prediction, PredictorState, SingleEnv};
pub use fu::FuPool;
pub use machine::{
    run_single, run_single_recorded, run_single_warm, run_single_warm_with_sink,
    run_single_with_sink, RunResult, WarmRun,
};
pub use pipeview::{InstEvents, PipeRecorder, Stage};
pub use stream::{build_exec_stream, ExecInst, MemDep, SrcDep};
pub use warm::WarmState;
