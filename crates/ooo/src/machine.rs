//! Single-core machine driver (also runs the fused Core Fusion core).

use fgstp_isa::DynInst;
use fgstp_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use fgstp_telemetry::{CycleOutcome, CycleSink, NullSink};

use crate::accounting::{classify_single, stat_delta};
use crate::config::CoreConfig;
use crate::core::{Core, CoreStats};
use crate::env::{PredictorState, SingleEnv};
use crate::stream::build_exec_stream;
use crate::warm::WarmState;

/// Result of running a trace through a machine model.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Architectural instructions committed.
    pub committed: u64,
    /// Per-core pipeline statistics.
    pub cores: Vec<CoreStats>,
    /// (branches, mispredicts) across the machine.
    pub branches: (u64, u64),
    /// Memory-hierarchy statistics.
    pub mem: HierarchyStats,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline executing the same trace.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        debug_assert_eq!(self.committed, baseline.committed, "same trace expected");
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }
}

/// Result of a warm-entry (sampled) run: the usual [`RunResult`] over the
/// whole window plus the cycle at which the measured region began.
#[derive(Debug, Clone)]
pub struct WarmRun {
    /// Timing result over the *entire* detailed window (warmup included).
    pub result: RunResult,
    /// Cycles spent before the `measure_from`-th commit landed (the
    /// detailed-warmup prefix whose cycles the sampler discards); 0 when
    /// `measure_from` is 0.
    pub warmup_cycles: u64,
}

impl WarmRun {
    /// Cycles of the measured region (total minus discarded warmup).
    pub fn measured_cycles(&self) -> u64 {
        self.result.cycles - self.warmup_cycles
    }
}

/// Upper bound on cycles per instruction before declaring a deadlock.
const DEADLOCK_CPI: u64 = 2_000;

/// Runs `trace` through a single core described by `cfg` (a conventional
/// core, or a fused Core Fusion core when `cfg` has two clusters).
///
/// # Panics
///
/// Panics if the pipeline deadlocks (a model bug, not an input condition).
pub fn run_single(trace: &[DynInst], cfg: &CoreConfig, hcfg: &HierarchyConfig) -> RunResult {
    run_single_recorded(trace, cfg, hcfg, None).0
}

/// Like [`run_single`], but optionally records per-instruction pipeline
/// events (see [`crate::PipeRecorder`]) and returns the recorder.
///
/// # Panics
///
/// Panics if the pipeline deadlocks (a model bug, not an input condition).
pub fn run_single_recorded(
    trace: &[DynInst],
    cfg: &CoreConfig,
    hcfg: &HierarchyConfig,
    recorder: Option<crate::pipeview::PipeRecorder>,
) -> (RunResult, Option<crate::pipeview::PipeRecorder>) {
    run_single_impl(trace, cfg, hcfg, recorder, &mut NullSink)
}

/// Like [`run_single`], but charges every cycle into `sink` (commits, or
/// one [`fgstp_telemetry::StallCategory`] per non-commit cycle).
///
/// The sink observes core 0 only; timing is bit-identical to
/// [`run_single`] because the accounting probes never mutate pipeline,
/// predictor or cache state.
///
/// # Panics
///
/// Panics if the pipeline deadlocks (a model bug, not an input condition).
pub fn run_single_with_sink<S: CycleSink>(
    trace: &[DynInst],
    cfg: &CoreConfig,
    hcfg: &HierarchyConfig,
    sink: &mut S,
) -> RunResult {
    run_single_impl(trace, cfg, hcfg, None, sink).0
}

fn run_single_impl<S: CycleSink>(
    trace: &[DynInst],
    cfg: &CoreConfig,
    hcfg: &HierarchyConfig,
    recorder: Option<crate::pipeview::PipeRecorder>,
    sink: &mut S,
) -> (RunResult, Option<crate::pipeview::PipeRecorder>) {
    let mut env = SingleEnv::new(cfg);
    let mut mem = Hierarchy::new(hcfg);
    let (result, _, rec) = run_single_loop(trace, cfg, &mut env, &mut mem, recorder, sink, 0);
    (result, rec)
}

/// Runs one detailed window entered mid-trace with warmed long-lived state
/// (the sampled-simulation path).
///
/// The window executes on `warm.mem` and `warm.pred`; short-lived pipeline
/// state starts cold and ramps up during the first `measure_from` commits,
/// whose cycles are reported separately as [`WarmRun::warmup_cycles`]. The
/// reported `branches` and `mem` statistics are cumulative over the whole
/// sampled run so far (they live in `warm`), not per-window.
///
/// # Panics
///
/// Panics if the pipeline deadlocks (a model bug, not an input condition).
pub fn run_single_warm(
    trace: &[DynInst],
    cfg: &CoreConfig,
    warm: &mut WarmState,
    measure_from: u64,
) -> WarmRun {
    run_single_warm_with_sink(trace, cfg, warm, measure_from, &mut NullSink)
}

/// Like [`run_single_warm`], but charges every cycle (warmup included)
/// into `sink`.
///
/// # Panics
///
/// Panics if the pipeline deadlocks (a model bug, not an input condition).
pub fn run_single_warm_with_sink<S: CycleSink>(
    trace: &[DynInst],
    cfg: &CoreConfig,
    warm: &mut WarmState,
    measure_from: u64,
    sink: &mut S,
) -> WarmRun {
    let pred = std::mem::replace(&mut warm.pred, PredictorState::new(cfg));
    let mut env = SingleEnv::with_predictor(pred);
    let (result, warmup_cycles, _) = run_single_loop(
        trace,
        cfg,
        &mut env,
        &mut warm.mem,
        None,
        sink,
        measure_from,
    );
    warm.pred = env.into_predictor();
    warm.apply_writebacks(trace);
    WarmRun {
        result,
        warmup_cycles,
    }
}

/// The shared cycle loop: drives one core over `trace` against an external
/// environment and hierarchy, returning the result, the cycle at which the
/// `measure_from`-th commit landed, and any pipeline recorder.
fn run_single_loop<S: CycleSink>(
    trace: &[DynInst],
    cfg: &CoreConfig,
    env: &mut SingleEnv,
    mem: &mut Hierarchy,
    recorder: Option<crate::pipeview::PipeRecorder>,
    sink: &mut S,
    measure_from: u64,
) -> (RunResult, u64, Option<crate::pipeview::PipeRecorder>) {
    let stream = build_exec_stream(trace);
    let total = stream.len() as u64;
    let branches_before = env.branch_stats();
    let mut core = Core::new(0, cfg, &stream);
    if let Some(r) = recorder {
        core.set_recorder(r);
    }
    let cap = total * DEADLOCK_CPI + 100_000;
    let mut now = 0u64;
    let mut warmup_cycles = if measure_from == 0 { 0 } else { u64::MAX };
    while !core.done() {
        let before = if S::ENABLED {
            *core.stats()
        } else {
            CoreStats::default()
        };
        core.cycle(now, env, mem);
        if S::ENABLED {
            let d = stat_delta(&before, core.stats());
            let outcome = if d.committed > 0 {
                CycleOutcome::Commit(d.committed as u32)
            } else {
                let stall = core.commit_stall(env, now);
                CycleOutcome::Stall(classify_single(stall, &d))
            };
            sink.record(0, now, outcome);
        }
        now += 1;
        if warmup_cycles == u64::MAX && env.committed() >= measure_from {
            warmup_cycles = now;
        }
        assert!(
            now < cap,
            "single-core pipeline deadlocked at cycle {now}: {}",
            core.pipeline_snapshot()
        );
    }
    if warmup_cycles == u64::MAX {
        warmup_cycles = now;
    }
    let branches_after = env.branch_stats();
    let result = RunResult {
        cycles: now,
        committed: env.committed(),
        cores: vec![*core.stats()],
        branches: (
            branches_after.0 - branches_before.0,
            branches_after.1 - branches_before.1,
        ),
        mem: mem.stats(),
    };
    (result, warmup_cycles, core.take_recorder())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgstp_isa::{assemble, trace_program};

    fn trace(src: &str) -> fgstp_isa::Trace {
        let p = assemble(src).unwrap();
        trace_program(&p, 200_000).unwrap()
    }

    /// A small loop kernel with a mix of ALU, memory and branches.
    fn kernel() -> fgstp_isa::Trace {
        trace(
            r#"
                li x1, 0x1000    # base
                li x2, 1600      # n * 8 bytes
                li x3, 0         # i
                li x4, 0         # sum
            loop:
                sll  x5, x3, x6
                add  x5, x1, x3
                sd   x3, 0(x5)
                ld   x6, 0(x5)
                add  x4, x4, x6
                addi x3, x3, 8
                slt  x7, x3, x2
                bne  x7, x0, loop
                halt
            "#,
        )
    }

    #[test]
    fn ipc_is_positive_and_bounded() {
        let t = kernel();
        let r = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        assert_eq!(r.committed, t.len() as u64);
        assert!(r.ipc() > 0.1, "ipc {}", r.ipc());
        assert!(
            r.ipc() <= 2.0,
            "small core cannot exceed its width, ipc {}",
            r.ipc()
        );
    }

    #[test]
    fn medium_core_beats_small_core() {
        let t = kernel();
        let small = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let medium = run_single(
            t.insts(),
            &CoreConfig::medium(),
            &HierarchyConfig::medium(1),
        );
        assert!(
            medium.cycles <= small.cycles,
            "medium ({}) should not be slower than small ({})",
            medium.cycles,
            small.cycles
        );
    }

    #[test]
    fn fused_core_beats_single_small_core_on_ilp() {
        // Independent operations in each iteration: lots of ILP.
        let t = trace(
            r#"
                li x2, 300
            loop:
                addi x3, x3, 1
                addi x4, x4, 2
                addi x5, x5, 3
                addi x6, x6, 4
                addi x7, x7, 5
                addi x8, x8, 6
                addi x2, x2, -1
                bne  x2, x0, loop
                halt
            "#,
        );
        let small = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let fused = run_single(
            t.insts(),
            &CoreConfig::fused(&CoreConfig::small()),
            &HierarchyConfig::small(1),
        );
        assert!(
            fused.cycles < small.cycles,
            "fusion should win on ILP: fused {} vs small {}",
            fused.cycles,
            small.cycles
        );
    }

    #[test]
    fn branch_stats_are_reported() {
        let t = kernel();
        let r = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let (branches, mispredicts) = r.branches;
        assert_eq!(branches, 200);
        assert!(mispredicts < branches / 2, "loop branch is predictable");
    }

    #[test]
    fn mem_stats_are_reported() {
        let t = kernel();
        let r = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        // Loads in this kernel forward from the same-iteration store, so
        // only the 200 committed stores reach the L1D.
        assert!(
            r.mem.l1d[0].accesses >= 200,
            "got {}",
            r.mem.l1d[0].accesses
        );
        assert!(
            r.cores[0].store_forwards >= 190,
            "got {}",
            r.cores[0].store_forwards
        );
    }

    #[test]
    fn speedup_over_is_a_ratio_of_cycles() {
        let t = kernel();
        let a = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let b = run_single(
            t.insts(),
            &CoreConfig::medium(),
            &HierarchyConfig::medium(1),
        );
        let s = b.speedup_over(&a);
        assert!((s - a.cycles as f64 / b.cycles as f64).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let r = run_single(&[], &CoreConfig::small(), &HierarchyConfig::small(1));
        assert_eq!(r.committed, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn recorded_run_captures_every_stage_in_order() {
        let t = kernel();
        let (r, rec) = run_single_recorded(
            t.insts(),
            &CoreConfig::small(),
            &HierarchyConfig::small(1),
            Some(crate::pipeview::PipeRecorder::new()),
        );
        let rec = rec.expect("recorder returned");
        assert_eq!(rec.len() as u64, r.committed, "every instruction recorded");
        for (gseq, _, ev) in rec.iter() {
            assert!(ev.is_ordered(), "stages out of order for {gseq}: {ev:?}");
            for stage in crate::pipeview::Stage::ALL {
                assert!(ev.at(stage).is_some(), "{gseq} missing {stage:?}");
            }
            // Commit never exceeds the run length.
            assert!(ev.commit.unwrap() <= r.cycles);
        }
        // The rendered view of the first instructions is non-trivial.
        let view = rec.render(0, 8);
        assert!(view.lines().count() >= 9, "{view}");
    }

    #[test]
    fn sink_accounts_every_cycle_without_changing_timing() {
        let t = kernel();
        let plain = run_single(t.insts(), &CoreConfig::small(), &HierarchyConfig::small(1));
        let mut sink = fgstp_telemetry::CpiSink::new(1);
        let r = run_single_with_sink(
            t.insts(),
            &CoreConfig::small(),
            &HierarchyConfig::small(1),
            &mut sink,
        );
        assert_eq!(r.cycles, plain.cycles, "telemetry must not change timing");
        assert_eq!(r.committed, plain.committed);
        let stack = sink.merged();
        stack.check_against(r.cycles).unwrap();
        assert_eq!(stack.committed, r.committed);
        assert!(stack.base_cycles > 0, "some cycles commit");
        assert!(
            stack.total_cycles() > stack.base_cycles,
            "a real kernel stalls somewhere"
        );
    }

    #[test]
    fn unrecorded_run_returns_no_recorder() {
        let t = kernel();
        let (_, rec) = run_single_recorded(
            t.insts(),
            &CoreConfig::small(),
            &HierarchyConfig::small(1),
            None,
        );
        assert!(rec.is_none());
    }
}
