//! Out-of-order core configuration and the paper's machine presets.

use fgstp_bpred::PredictorKind;

/// Functional-unit counts for one execution cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuCounts {
    /// Simple integer ALUs.
    pub int_alu: usize,
    /// Integer multipliers (pipelined).
    pub int_mul: usize,
    /// Integer dividers (unpipelined).
    pub int_div: usize,
    /// FP adders (pipelined; also compares/converts).
    pub fp_add: usize,
    /// FP multipliers (pipelined).
    pub fp_mul: usize,
    /// FP dividers / sqrt units (unpipelined).
    pub fp_div: usize,
    /// Cache ports (loads and stores).
    pub mem_ports: usize,
}

/// Execution latencies per class, in cycles (memory classes use the cache
/// hierarchy instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuLatencies {
    /// Integer ALU.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// FP add/sub/compare/convert.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide / sqrt.
    pub fp_div: u64,
    /// Branch/jump resolution.
    pub branch: u64,
    /// Address generation for loads/stores.
    pub agen: u64,
    /// Store-to-load forwarding.
    pub forward: u64,
}

impl Default for FuLatencies {
    fn default() -> FuLatencies {
        FuLatencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 16,
            branch: 1,
            agen: 1,
            forward: 1,
        }
    }
}

/// One execution cluster: its own issue ports and functional units.
///
/// A conventional core is one cluster. Core Fusion fuses two cores into a
/// single wide core whose two clusters are the original cores' backends,
/// paying [`CoreConfig::intercluster_latency`] to bypass values between
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Instructions this cluster can start per cycle.
    pub issue_width: usize,
    /// Functional units in this cluster.
    pub fu: FuCounts,
}

/// Local memory-dependence policy of the load/store queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDepPolicy {
    /// Loads wait until every older store in the queue has computed its
    /// address (no speculation).
    Conservative,
    /// Loads issue as soon as their operands are ready; a conflict with an
    /// older in-flight store replays the load after the store completes,
    /// plus this penalty.
    Speculative {
        /// Cycles of replay penalty per violation.
        violation_penalty: u64,
    },
    /// Like `Speculative`, but loads that have violated before (tracked by
    /// a store-set-style table) synchronize with their conflicting store
    /// instead of violating again.
    StoreSets {
        /// Cycles of replay penalty per (first) violation.
        violation_penalty: u64,
    },
}

/// Full configuration of one out-of-order core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Instructions fetched per cycle (one cache line per cycle).
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Total instructions issued per cycle, across clusters.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Fetch-to-dispatch depth in cycles (decode + rename stages).
    pub frontend_depth: u64,
    /// Extra fetch latency (Core Fusion collective fetch).
    pub extra_fetch_latency: u64,
    /// Extra rename latency (Core Fusion remote steering/rename).
    pub extra_rename_latency: u64,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries (shared across clusters).
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Fetch-buffer entries between fetch and dispatch.
    pub fetch_buffer: usize,
    /// Execution clusters.
    pub clusters: Vec<ClusterConfig>,
    /// Extra cycles to bypass a value between clusters.
    pub intercluster_latency: u64,
    /// Direction predictor.
    pub predictor: PredictorKind,
    /// BTB index bits.
    pub btb_bits: u32,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Cycles from branch resolution to corrected fetch.
    pub mispredict_penalty: u64,
    /// Fetch bubble on a predicted-taken branch whose target misses the BTB.
    pub btb_miss_penalty: u64,
    /// Execution latencies.
    pub lat: FuLatencies,
    /// Local memory-dependence policy.
    pub memdep: MemDepPolicy,
}

impl CoreConfig {
    /// The paper's *small* 2-issue core (per-core half of the small CMP).
    pub fn small() -> CoreConfig {
        CoreConfig {
            name: "small",
            fetch_width: 2,
            decode_width: 2,
            issue_width: 2,
            commit_width: 2,
            frontend_depth: 4,
            extra_fetch_latency: 0,
            extra_rename_latency: 0,
            rob_size: 48,
            iq_size: 16,
            lq_size: 16,
            sq_size: 12,
            fetch_buffer: 8,
            clusters: vec![ClusterConfig {
                issue_width: 2,
                fu: FuCounts {
                    int_alu: 2,
                    int_mul: 1,
                    int_div: 1,
                    fp_add: 1,
                    fp_mul: 1,
                    fp_div: 1,
                    mem_ports: 1,
                },
            }],
            intercluster_latency: 0,
            predictor: PredictorKind::Gshare(12),
            btb_bits: 9,
            ras_depth: 8,
            mispredict_penalty: 8,
            btb_miss_penalty: 2,
            lat: FuLatencies::default(),
            memdep: MemDepPolicy::StoreSets {
                violation_penalty: 8,
            },
        }
    }

    /// The paper's *medium* 4-issue core.
    pub fn medium() -> CoreConfig {
        CoreConfig {
            name: "medium",
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            frontend_depth: 5,
            extra_fetch_latency: 0,
            extra_rename_latency: 0,
            rob_size: 128,
            iq_size: 36,
            lq_size: 32,
            sq_size: 24,
            fetch_buffer: 16,
            clusters: vec![ClusterConfig {
                issue_width: 4,
                fu: FuCounts {
                    int_alu: 3,
                    int_mul: 1,
                    int_div: 1,
                    fp_add: 2,
                    fp_mul: 2,
                    fp_div: 1,
                    mem_ports: 2,
                },
            }],
            intercluster_latency: 0,
            predictor: PredictorKind::Tournament(13),
            btb_bits: 11,
            ras_depth: 16,
            mispredict_penalty: 10,
            btb_miss_penalty: 2,
            lat: FuLatencies::default(),
            memdep: MemDepPolicy::StoreSets {
                violation_penalty: 10,
            },
        }
    }

    /// Core Fusion of two copies of `base`: one wide core whose two
    /// clusters are the original backends, with collective-fetch and
    /// remote-rename overheads on every instruction and an inter-cluster
    /// bypass penalty (the overhead model of Ipek et al., ISCA'07).
    pub fn fused(base: &CoreConfig) -> CoreConfig {
        let cluster = base.clusters[0];
        CoreConfig {
            name: if base.name == "small" {
                "fused-small"
            } else {
                "fused-medium"
            },
            fetch_width: base.fetch_width * 2,
            decode_width: base.decode_width * 2,
            issue_width: base.issue_width * 2,
            commit_width: base.commit_width * 2,
            frontend_depth: base.frontend_depth,
            extra_fetch_latency: 2,
            extra_rename_latency: 2,
            rob_size: base.rob_size * 2,
            iq_size: base.iq_size * 2,
            lq_size: base.lq_size * 2,
            sq_size: base.sq_size * 2,
            fetch_buffer: base.fetch_buffer * 2,
            clusters: vec![cluster, cluster],
            intercluster_latency: 2,
            predictor: base.predictor,
            btb_bits: base.btb_bits,
            ras_depth: base.ras_depth,
            // Fused pipeline is longer end to end, so recovery costs more.
            mispredict_penalty: base.mispredict_penalty + 4,
            btb_miss_penalty: base.btb_miss_penalty,
            lat: base.lat,
            memdep: base.memdep,
        }
    }

    /// Total issue ports across clusters (sanity bound for `issue_width`).
    pub fn cluster_issue_total(&self) -> usize {
        self.clusters.iter().map(|c| c.issue_width).sum()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (no clusters, zero
    /// widths, or an issue width exceeding the cluster ports).
    pub fn validate(&self) {
        assert!(
            !self.clusters.is_empty(),
            "{}: need at least one cluster",
            self.name
        );
        assert!(
            self.fetch_width > 0 && self.decode_width > 0,
            "{}: zero width",
            self.name
        );
        assert!(
            self.issue_width > 0 && self.commit_width > 0,
            "{}: zero width",
            self.name
        );
        assert!(
            self.issue_width <= self.cluster_issue_total(),
            "{}: issue width {} exceeds cluster ports {}",
            self.name,
            self.issue_width,
            self.cluster_issue_total()
        );
        assert!(
            self.rob_size > 0 && self.iq_size > 0,
            "{}: empty windows",
            self.name
        );
        assert!(
            self.lq_size > 0 && self.sq_size > 0,
            "{}: empty queues",
            self.name
        );
        assert!(
            self.fetch_buffer >= self.fetch_width,
            "{}: fetch buffer too small",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CoreConfig::small().validate();
        CoreConfig::medium().validate();
        CoreConfig::fused(&CoreConfig::small()).validate();
        CoreConfig::fused(&CoreConfig::medium()).validate();
    }

    #[test]
    fn fusion_doubles_structures_and_adds_overheads() {
        let small = CoreConfig::small();
        let fused = CoreConfig::fused(&small);
        assert_eq!(fused.rob_size, 2 * small.rob_size);
        assert_eq!(fused.issue_width, 2 * small.issue_width);
        assert_eq!(fused.clusters.len(), 2);
        assert!(fused.extra_fetch_latency > 0);
        assert!(fused.intercluster_latency > 0);
        assert!(fused.mispredict_penalty > small.mispredict_penalty);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn validate_rejects_overwide_issue() {
        let mut c = CoreConfig::small();
        c.issue_width = 100;
        c.validate();
    }

    #[test]
    fn medium_is_strictly_bigger_than_small() {
        let s = CoreConfig::small();
        let m = CoreConfig::medium();
        assert!(m.rob_size > s.rob_size);
        assert!(m.iq_size > s.iq_size);
        assert!(m.issue_width > s.issue_width);
    }
}
