//! The cycle-level out-of-order core pipeline.
//!
//! One [`Core`] models fetch → decode/rename → dispatch → issue → execute →
//! writeback → commit over an annotated execution stream
//! ([`crate::ExecInst`]), charging cycles for every structural, dependence,
//! branch and memory event. Everything shared with the outside world
//! (prediction, fetch gating, cross-core traffic, global commit order) goes
//! through the [`ExecEnv`] trait, so the same pipeline serves the single
//! core, the fused Core Fusion core (two clusters) and each half of the
//! Fg-STP pair.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use fgstp_isa::InstClass;
use fgstp_mem::{Hierarchy, HierarchyConfig};
use fgstp_telemetry::MemLevel;

use crate::config::{CoreConfig, MemDepPolicy};
use crate::env::{ExecEnv, LoadGate};
use crate::fu::FuPool;
use crate::stream::ExecInst;

/// Counters accumulated by one core over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions fetched (including replicas).
    pub fetched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Primary (architectural) instructions committed.
    pub committed: u64,
    /// Replicated shadow copies committed.
    pub replica_committed: u64,
    /// Values sent to the other core.
    pub sends: u64,
    /// Store-to-load forwards performed.
    pub store_forwards: u64,
    /// Local (same-core) memory-dependence violations replayed.
    pub load_violations: u64,
    /// Cross-core memory-dependence violations replayed.
    pub cross_violations: u64,
    /// Dispatch stalls because the ROB was full.
    pub rob_full: u64,
    /// Dispatch stalls because the issue queue was full.
    pub iq_full: u64,
    /// Dispatch stalls because a load/store queue was full.
    pub lsq_full: u64,
    /// Fetch bubbles from BTB misses on taken control flow.
    pub btb_bubbles: u64,
    /// Cycles fetch was blocked by an unresolved mispredicted branch.
    pub fetch_blocked_cycles: u64,
    /// Cycles fetch was stalled on the instruction cache.
    pub icache_stall_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    InQueue,
    Issued { done: u64 },
    Done { at: u64 },
}

#[derive(Debug, Clone)]
struct Slot {
    x: ExecInst,
    cluster: usize,
    state: SlotState,
    dispatched_at: u64,
    /// First cycle all register operands were ready (set lazily; used to
    /// decide whether a speculative load actually violated).
    ready_since: Option<u64>,
    /// For loads that accessed the hierarchy: the level that serviced
    /// them, classified from the observed latency (telemetry).
    mem_level: Option<MemLevel>,
    /// Whether the instruction replayed after a cross-core
    /// memory-dependence squash (telemetry).
    cross_replay: bool,
}

#[derive(Debug, Clone, Copy)]
struct SqEntry {
    gseq: u64,
    /// Cycle the address was computed (None until the store issues).
    addr_ready: Option<u64>,
    /// Cycle the store data is available (equals `addr_ready` here).
    complete: Option<u64>,
}

/// State of the window head (or the empty window) on a cycle that
/// committed nothing — the raw material for CPI-stack attribution.
///
/// Produced by [`Core::commit_stall`]; the machine drivers map it to a
/// [`fgstp_telemetry::StallCategory`] with machine-specific refinements
/// (a single core has no cross-core categories; the Fg-STP driver
/// distinguishes gate blocks from lookahead backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStall {
    /// The window is empty: the frontend is refilling it. The stats
    /// deltas (`fetch_blocked_cycles`, `icache_stall_cycles`) tell why.
    Idle,
    /// The head has not issued: a register operand is not known ready.
    /// `cross` is set when a cross-core operand is among the missing.
    WaitingOperands {
        /// A cross-core operand has not been delivered yet.
        cross: bool,
    },
    /// The head's operands are ready but it has not issued: a structural
    /// or memory-ordering gate.
    WaitingIssue {
        /// A functional unit of its class is free this cycle (so the
        /// stall is an ordering gate or issue-bandwidth artifact, not FU
        /// contention).
        fu_free: bool,
        /// The head is a load.
        is_load: bool,
        /// The head is a load with a cross-core memory dependence.
        cross_memdep: bool,
    },
    /// The head is executing.
    Executing {
        /// The head is a load.
        is_load: bool,
        /// For loads that accessed the hierarchy: the level that
        /// serviced them.
        mem_level: Option<MemLevel>,
        /// The head replayed after a cross-core memdep squash.
        cross_replay: bool,
        /// The head is a replicated shadow copy.
        replica: bool,
    },
    /// The head completed this very cycle (writeback; commit next cycle).
    Completing {
        /// The head is a replicated shadow copy.
        replica: bool,
    },
    /// The head completed earlier but the environment refused commit
    /// (global cross-core commit order).
    CommitBlocked {
        /// The head is a replicated shadow copy.
        replica: bool,
    },
}

/// Classifies a load's observed latency by the level that serviced it.
fn classify_mem_level(mlat: u64, cfg: &HierarchyConfig) -> MemLevel {
    if mlat <= cfg.l1d.latency {
        MemLevel::L1
    } else if mlat <= cfg.l1d.latency + cfg.l2.latency {
        MemLevel::L2
    } else {
        MemLevel::Dram
    }
}

/// One out-of-order core executing its assigned instruction stream.
#[derive(Debug)]
pub struct Core {
    id: usize,
    cfg: CoreConfig,
    stream: Vec<ExecInst>,
    cursor: usize,
    fetch_stall_until: u64,
    /// Line whose miss the frontend just waited out (skip the re-access).
    filled_line: Option<u64>,
    pipe: VecDeque<(u64, ExecInst)>,
    slots: HashMap<u64, Slot>,
    rob: VecDeque<u64>,
    iq: Vec<u64>,
    lq_used: usize,
    sq_used: usize,
    sq: Vec<SqEntry>,
    fus: FuPool,
    complete_time: HashMap<u64, u64>,
    cluster_of: HashMap<u64, usize>,
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    gating: HashSet<u64>,
    storeset: HashSet<u64>,
    stats: CoreStats,
    recorder: Option<crate::pipeview::PipeRecorder>,
}

impl Core {
    /// Creates a core with identifier `id` executing `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreConfig::validate`].
    pub fn new(id: usize, cfg: CoreConfig, stream: Vec<ExecInst>) -> Core {
        cfg.validate();
        let fus = FuPool::new(&cfg.clusters);
        Core {
            id,
            cfg,
            stream,
            cursor: 0,
            fetch_stall_until: 0,
            filled_line: None,
            pipe: VecDeque::new(),
            slots: HashMap::new(),
            rob: VecDeque::new(),
            iq: Vec::new(),
            lq_used: 0,
            sq_used: 0,
            sq: Vec::new(),
            fus,
            complete_time: HashMap::new(),
            cluster_of: HashMap::new(),
            completions: BinaryHeap::new(),
            gating: HashSet::new(),
            storeset: HashSet::new(),
            stats: CoreStats::default(),
            recorder: None,
        }
    }

    /// Attaches a pipeline-event recorder (see [`crate::PipeRecorder`]).
    pub fn set_recorder(&mut self, recorder: crate::pipeview::PipeRecorder) {
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<crate::pipeview::PipeRecorder> {
        self.recorder.take()
    }

    #[inline]
    fn record(
        &mut self,
        gseq: u64,
        inst: fgstp_isa::Inst,
        stage: crate::pipeview::Stage,
        cycle: u64,
    ) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(gseq, inst, stage, cycle);
        }
    }

    /// Whether the core has fetched, executed and committed its whole
    /// stream.
    pub fn done(&self) -> bool {
        self.cursor == self.stream.len() && self.pipe.is_empty() && self.rob.is_empty()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The core identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// One-line snapshot of pipeline occupancy, for diagnostics.
    pub fn pipeline_snapshot(&self) -> String {
        let head = self.rob.front().map(|g| {
            let s = &self.slots[g];
            format!("{}:{:?}", g, s.state)
        });
        format!(
            "cursor={}/{} pipe={} rob={} iq={} lq={} sq={} head={:?}",
            self.cursor,
            self.stream.len(),
            self.pipe.len(),
            self.rob.len(),
            self.iq.len(),
            self.lq_used,
            self.sq_used,
            head
        )
    }

    /// Why the window head (or the empty window) is not committing at
    /// `now` — the telemetry probe behind CPI-stack attribution.
    ///
    /// Read-only with respect to simulation state: it reuses the same
    /// idempotent environment queries the issue stage uses
    /// ([`ExecEnv::cross_operand_ready`]) and the claim-free
    /// [`FuPool::would_issue`] probe, so calling it never perturbs timing.
    /// Only meaningful on cycles where nothing committed; the driver
    /// decides that from the stats delta.
    pub fn commit_stall(&self, env: &mut dyn ExecEnv, now: u64) -> CommitStall {
        let Some(&gseq) = self.rob.front() else {
            return CommitStall::Idle;
        };
        let slot = &self.slots[&gseq];
        let x = slot.x;
        match slot.state {
            SlotState::InQueue => {
                let mut pending = false;
                let mut cross_pending = false;
                for dep in x.deps.iter().flatten() {
                    let ready = if dep.cross {
                        env.cross_operand_ready(self.id, dep.producer)
                    } else {
                        self.local_ready(dep.producer, slot.cluster)
                    };
                    if ready.is_none_or(|t| t > now) {
                        pending = true;
                        cross_pending |= dep.cross;
                    }
                }
                if pending {
                    CommitStall::WaitingOperands {
                        cross: cross_pending,
                    }
                } else {
                    CommitStall::WaitingIssue {
                        fu_free: self.fus.would_issue(slot.cluster, x.class(), now),
                        is_load: x.is_load(),
                        cross_memdep: x.mem_dep.is_some_and(|m| m.cross),
                    }
                }
            }
            SlotState::Issued { .. } => CommitStall::Executing {
                is_load: x.is_load(),
                mem_level: slot.mem_level,
                cross_replay: slot.cross_replay,
                replica: x.replica,
            },
            SlotState::Done { at } => {
                if at >= now {
                    CommitStall::Completing { replica: x.replica }
                } else {
                    CommitStall::CommitBlocked { replica: x.replica }
                }
            }
        }
    }

    /// Advances the pipeline by one cycle.
    pub fn cycle(&mut self, now: u64, env: &mut dyn ExecEnv, mem: &mut Hierarchy) {
        self.drain_completions(now, env);
        self.commit(now, env, mem);
        self.issue(now, env, mem);
        self.dispatch(now);
        self.fetch(now, env, mem);
    }

    fn drain_completions(&mut self, now: u64, env: &mut dyn ExecEnv) {
        while let Some(&Reverse((cycle, gseq))) = self.completions.peek() {
            if cycle > now {
                break;
            }
            self.completions.pop();
            let slot = self.slots.get_mut(&gseq).expect("completing slot exists");
            slot.state = SlotState::Done { at: cycle };
            self.complete_time.insert(gseq, cycle);
            if slot.x.is_store() {
                if let Some(e) = self.sq.iter_mut().find(|e| e.gseq == gseq) {
                    e.complete = Some(cycle);
                }
            }
            let x = slot.x;
            if x.sends {
                self.stats.sends += 1;
            }
            self.record(x.gseq, x.d.inst, crate::pipeview::Stage::Complete, cycle);
            env.on_complete(self.id, &x, cycle);
            if self.gating.remove(&gseq) {
                env.resolve_fetch_block(self.id, gseq, cycle + self.cfg.mispredict_penalty);
            }
        }
    }

    fn commit(&mut self, now: u64, env: &mut dyn ExecEnv, mem: &mut Hierarchy) {
        for _ in 0..self.cfg.commit_width {
            let Some(&gseq) = self.rob.front() else { break };
            let slot = &self.slots[&gseq];
            let SlotState::Done { at } = slot.state else {
                break;
            };
            if at >= now || !env.can_commit(&slot.x) {
                break;
            }
            let x = slot.x;
            if x.is_store() && !x.replica {
                if let Some((addr, _)) = x.mem_range() {
                    mem.access_data(self.id, addr, true, now);
                    mem.invalidate_others(self.id, addr);
                }
            }
            match x.class() {
                InstClass::Load => self.lq_used -= 1,
                InstClass::Store => {
                    self.sq_used -= 1;
                    self.sq.retain(|e| e.gseq != gseq);
                }
                _ => {}
            }
            if x.replica {
                self.stats.replica_committed += 1;
            } else {
                self.stats.committed += 1;
            }
            self.record(x.gseq, x.d.inst, crate::pipeview::Stage::Commit, now);
            env.on_commit(self.id, &x, now);
            self.rob.pop_front();
            self.slots.remove(&gseq);
        }
    }

    /// Scheduled or actual completion time of a local producer, or `None`
    /// if it has not issued yet.
    fn local_ready(&self, producer: u64, consumer_cluster: usize) -> Option<u64> {
        let (time, cluster) = if let Some(slot) = self.slots.get(&producer) {
            match slot.state {
                SlotState::InQueue => return None,
                SlotState::Issued { done } => (done, slot.cluster),
                SlotState::Done { at } => (at, slot.cluster),
            }
        } else {
            (
                *self.complete_time.get(&producer)?,
                *self.cluster_of.get(&producer).unwrap_or(&consumer_cluster),
            )
        };
        let bypass = if cluster != consumer_cluster {
            self.cfg.intercluster_latency
        } else {
            0
        };
        Some(time + bypass)
    }

    /// Earliest cycle the register operands of `slot` are ready, or `None`.
    fn operands_ready(&self, slot: &Slot, env: &mut dyn ExecEnv) -> Option<u64> {
        let mut t = slot.dispatched_at + 1;
        for dep in slot.x.deps.iter().flatten() {
            let r = if dep.cross {
                env.cross_operand_ready(self.id, dep.producer)?
            } else {
                self.local_ready(dep.producer, slot.cluster)?
            };
            t = t.max(r);
        }
        Some(t)
    }

    /// Local load/store-queue constraint for a load. Returns
    /// `(issue_floor, data_at_override, forwarded, violated)` or `None` to
    /// retry later.
    #[allow(clippy::type_complexity)]
    fn local_load_gate(
        &mut self,
        x: &ExecInst,
        ready_since: u64,
        now: u64,
    ) -> Option<(u64, Option<u64>, bool, bool)> {
        let conservative = matches!(self.cfg.memdep, MemDepPolicy::Conservative);
        if conservative {
            // Every older store must have computed its address.
            for e in &self.sq {
                if e.gseq < x.gseq && e.addr_ready.is_none() {
                    return None;
                }
            }
        }
        let Some(md) = x.mem_dep.filter(|m| !m.cross) else {
            return Some((now, None, false, false));
        };
        // Completion time of the conflicting store, if it has issued.
        let store_done = self
            .sq
            .iter()
            .find(|e| e.gseq == md.store)
            .map(|e| e.complete)
            .unwrap_or_else(|| self.complete_time.get(&md.store).copied());
        let synchronize = match self.cfg.memdep {
            MemDepPolicy::Conservative => true,
            MemDepPolicy::StoreSets { .. } => self.storeset.contains(&x.d.pc),
            MemDepPolicy::Speculative { .. } => false,
        };
        match store_done {
            None => {
                if synchronize {
                    None // wait for the store to issue
                } else {
                    // Speculating past an unexecuted store: the load cannot
                    // obtain data until the store executes; model the
                    // replay by retrying (the violation is charged when the
                    // store completion becomes known).
                    None
                }
            }
            Some(done) => {
                let violation_penalty = match self.cfg.memdep {
                    MemDepPolicy::Speculative { violation_penalty }
                    | MemDepPolicy::StoreSets { violation_penalty } => violation_penalty,
                    MemDepPolicy::Conservative => 0,
                };
                let violated = !synchronize && !conservative && done > ready_since;
                let extra = if violated { violation_penalty } else { 0 };
                if md.forwardable {
                    let base = done.max(now);
                    Some((
                        now.max(done),
                        Some(base + self.cfg.lat.forward + extra),
                        true,
                        violated,
                    ))
                } else {
                    // Partial overlap: data assembled from the store buffer
                    // and the cache after the store completes. The replay
                    // penalty lands on the *completion* (applied by the
                    // issue stage), never on the issue floor — a floor of
                    // `now + penalty` would recede forever.
                    Some((now.max(done), None, false, violated))
                }
            }
        }
    }

    fn issue(&mut self, now: u64, env: &mut dyn ExecEnv, mem: &mut Hierarchy) {
        let mut issued_total = 0;
        let mut issued_cluster = vec![0usize; self.cfg.clusters.len()];
        let candidates: Vec<u64> = self.iq.clone();
        let mut issued: Vec<u64> = Vec::new();
        for gseq in candidates {
            if issued_total >= self.cfg.issue_width {
                break;
            }
            let slot = self.slots.get(&gseq).expect("iq entry has slot");
            let cluster = slot.cluster;
            if issued_cluster[cluster] >= self.cfg.clusters[cluster].issue_width {
                continue;
            }
            let Some(ready) = self.operands_ready(slot, env) else {
                continue;
            };
            if ready > now {
                continue;
            }
            // Record when the operands first became ready (for violation
            // detection on speculative loads).
            let ready_since = {
                let slot = self.slots.get_mut(&gseq).expect("slot exists");
                *slot.ready_since.get_or_insert(now.max(ready))
            };
            let x = self.slots[&gseq].x;
            let class = x.class();

            // Memory-ordering gates for loads.
            let mut data_override = None;
            let mut forwarded = false;
            let mut local_violation = false;
            let mut cross_data: Option<u64> = None;
            if x.is_load() {
                match env.cross_load_gate(self.id, &x, ready_since, now) {
                    LoadGate::Free => {}
                    LoadGate::WaitUntil(t) if t <= now => {}
                    LoadGate::WaitUntil(_) | LoadGate::Retry => continue,
                    LoadGate::Replay { data_at } => {
                        cross_data = Some(data_at);
                    }
                }
                if cross_data.is_none() {
                    match self.local_load_gate(&x, ready_since, now) {
                        None => continue,
                        Some((floor, over, fwd, viol)) => {
                            if floor > now {
                                continue;
                            }
                            data_override = over;
                            forwarded = fwd;
                            local_violation = viol;
                        }
                    }
                }
            }

            // Structural hazards last, so nothing is claimed on a retry.
            if !self.fus.try_issue(cluster, class, now, &self.cfg.lat) {
                continue;
            }

            let lat = &self.cfg.lat;
            let mut issue_mem_level = None;
            let mut issue_cross_replay = false;
            let done = match class {
                InstClass::IntAlu | InstClass::Nop => now + lat.int_alu,
                InstClass::IntMul => now + lat.int_mul,
                InstClass::IntDiv => now + lat.int_div,
                InstClass::FpAdd => now + lat.fp_add,
                InstClass::FpMul => now + lat.fp_mul,
                InstClass::FpDiv => now + lat.fp_div,
                InstClass::Branch | InstClass::Jump => now + lat.branch,
                InstClass::Store => {
                    let done = now + lat.agen;
                    if let Some(e) = self.sq.iter_mut().find(|e| e.gseq == gseq) {
                        e.addr_ready = Some(done);
                        e.complete = Some(done);
                    }
                    done
                }
                InstClass::Load => {
                    if let Some(data_at) = cross_data {
                        self.stats.cross_violations += 1;
                        issue_cross_replay = true;
                        data_at.max(now + lat.agen)
                    } else if let Some(data_at) = data_override {
                        if local_violation {
                            self.stats.load_violations += 1;
                            if matches!(self.cfg.memdep, MemDepPolicy::StoreSets { .. }) {
                                self.storeset.insert(x.d.pc);
                            }
                        }
                        self.stats.store_forwards += u64::from(forwarded);
                        data_at.max(now + lat.agen)
                    } else {
                        let mut penalty = 0;
                        if local_violation {
                            self.stats.load_violations += 1;
                            if let MemDepPolicy::StoreSets { violation_penalty } = self.cfg.memdep {
                                self.storeset.insert(x.d.pc);
                                penalty = violation_penalty;
                            } else if let MemDepPolicy::Speculative { violation_penalty } =
                                self.cfg.memdep
                            {
                                penalty = violation_penalty;
                            }
                        }
                        let (addr, _) = x.mem_range().expect("load has address");
                        let access_at = now + lat.agen;
                        let mlat = mem.access_load_with_pc(self.id, x.d.pc, addr, access_at);
                        issue_mem_level = Some(classify_mem_level(mlat, mem.config()));
                        access_at + mlat + penalty
                    }
                }
            };

            let slot = self.slots.get_mut(&gseq).expect("slot exists");
            slot.state = SlotState::Issued { done };
            slot.mem_level = issue_mem_level;
            slot.cross_replay = issue_cross_replay;
            self.completions.push(Reverse((done, gseq)));
            self.record(gseq, x.d.inst, crate::pipeview::Stage::Issue, now);
            issued.push(gseq);
            issued_total += 1;
            issued_cluster[cluster] += 1;
            self.stats.issued += 1;
        }
        if !issued.is_empty() {
            self.iq.retain(|g| !issued.contains(g));
        }
    }

    fn steer(&self, x: &ExecInst) -> usize {
        if self.cfg.clusters.len() == 1 {
            return 0;
        }
        // Dependence-based steering with load balancing (the policy used
        // for fused cores): prefer the cluster that produces our operands,
        // fall back to the least-loaded cluster.
        let mut votes = vec![0usize; self.cfg.clusters.len()];
        for dep in x.deps.iter().flatten() {
            if dep.cross {
                continue;
            }
            if let Some(slot) = self.slots.get(&dep.producer) {
                votes[slot.cluster] += 1;
            } else if let Some(&c) = self.cluster_of.get(&dep.producer) {
                votes[c] += 1;
            }
        }
        let mut load = vec![0usize; self.cfg.clusters.len()];
        for &g in &self.iq {
            load[self.slots[&g].cluster] += 1;
        }
        let best_vote = votes.iter().copied().max().unwrap_or(0);
        // Imbalance guard: if the preferred cluster is overloaded, go to
        // the least-loaded one instead.
        let preferred = (0..votes.len())
            .find(|&c| votes[c] == best_vote)
            .unwrap_or(0);
        let least = (0..load.len()).min_by_key(|&c| load[c]).unwrap_or(0);
        if best_vote > 0 && load[preferred] < 2 * (load[least] + 2) {
            preferred
        } else {
            least
        }
    }

    fn dispatch(&mut self, now: u64) {
        for _ in 0..self.cfg.decode_width {
            let Some(&(ready, _)) = self.pipe.front() else {
                break;
            };
            if ready > now {
                break;
            }
            let x = self.pipe.front().expect("peeked").1;
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.rob_full += 1;
                break;
            }
            if self.iq.len() >= self.cfg.iq_size {
                self.stats.iq_full += 1;
                break;
            }
            match x.class() {
                InstClass::Load if self.lq_used >= self.cfg.lq_size => {
                    self.stats.lsq_full += 1;
                    break;
                }
                InstClass::Store if self.sq_used >= self.cfg.sq_size => {
                    self.stats.lsq_full += 1;
                    break;
                }
                _ => {}
            }
            self.pipe.pop_front();
            let cluster = self.steer(&x);
            match x.class() {
                InstClass::Load => self.lq_used += 1,
                InstClass::Store => {
                    self.sq_used += 1;
                    self.sq.push(SqEntry {
                        gseq: x.gseq,
                        addr_ready: None,
                        complete: None,
                    });
                }
                _ => {}
            }
            self.cluster_of.insert(x.gseq, cluster);
            self.slots.insert(
                x.gseq,
                Slot {
                    x,
                    cluster,
                    state: SlotState::InQueue,
                    dispatched_at: now,
                    ready_since: None,
                    mem_level: None,
                    cross_replay: false,
                },
            );
            self.rob.push_back(x.gseq);
            self.iq.push(x.gseq);
            self.record(x.gseq, x.d.inst, crate::pipeview::Stage::Dispatch, now);
        }
    }

    fn fetch(&mut self, now: u64, env: &mut dyn ExecEnv, mem: &mut Hierarchy) {
        env.note_fetch_cursor(self.id, self.stream.get(self.cursor).map(|x| x.gseq));
        if now < self.fetch_stall_until {
            self.stats.icache_stall_cycles += 1;
            return;
        }
        // The fetch buffer bounds decoded instructions waiting for
        // dispatch; instructions still traversing the frontend stages
        // occupy pipeline latches, not buffer entries.
        let frontend_flight = self.cfg.fetch_width
            * (self.cfg.frontend_depth
                + self.cfg.extra_fetch_latency
                + self.cfg.extra_rename_latency) as usize;
        if self.pipe.len() + self.cfg.fetch_width > self.cfg.fetch_buffer + frontend_flight {
            return;
        }
        let Some(first) = self.stream.get(self.cursor) else {
            return;
        };
        if env.fetch_blocked(self.id, first.gseq, now) {
            self.stats.fetch_blocked_cycles += 1;
            return;
        }
        let line_bytes = mem.config().l1i.line_bytes;
        let line_of = |pc: u64| Hierarchy::inst_addr(pc) / line_bytes;
        let group_line = line_of(first.d.pc);
        let hit_latency = mem.config().l1i.latency;
        // A line whose miss we already waited out (`filled_line`) is not
        // re-accessed on resume — that would double-count it in the L1I
        // statistics.
        if self.filled_line.take() != Some(group_line) {
            let lat = mem.access_inst(self.id, first.d.pc, now);
            if lat > hit_latency {
                self.filled_line = Some(group_line);
                self.fetch_stall_until = now + lat;
                return;
            }
        }
        let ready = now
            + self.cfg.frontend_depth
            + self.cfg.extra_fetch_latency
            + self.cfg.extra_rename_latency;
        for _ in 0..self.cfg.fetch_width {
            let Some(&x) = self.stream.get(self.cursor) else {
                break;
            };
            if line_of(x.d.pc) != group_line {
                break;
            }
            if env.fetch_blocked(self.id, x.gseq, now) {
                break;
            }
            self.cursor += 1;
            self.stats.fetched += 1;
            self.record(x.gseq, x.d.inst, crate::pipeview::Stage::Fetch, now);
            self.pipe.push_back((ready, x));
            if x.class().is_control() {
                let p = env.predict(self.id, &x);
                if p.mispredicted {
                    self.gating.insert(x.gseq);
                    env.block_fetch_after(self.id, x.gseq);
                    break;
                }
                if x.d.redirects() {
                    if p.btb_miss {
                        self.stats.btb_bubbles += 1;
                        self.fetch_stall_until = now + self.cfg.btb_miss_penalty;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SingleEnv;
    use fgstp_isa::{assemble, trace_program};
    use fgstp_mem::HierarchyConfig;

    use crate::stream::build_exec_stream;

    fn run(src: &str, cfg: CoreConfig) -> (u64, CoreStats) {
        let p = assemble(src).unwrap();
        let t = trace_program(&p, 100_000).unwrap();
        let stream = build_exec_stream(t.insts());
        let total = stream.len() as u64;
        let mut core = Core::new(0, cfg.clone(), stream);
        let mut env = SingleEnv::new(&cfg);
        let mut mem = fgstp_mem::Hierarchy::new(&HierarchyConfig::small(1));
        let mut now = 0u64;
        while !core.done() {
            core.cycle(now, &mut env, &mut mem);
            now += 1;
            assert!(now < total * 1000 + 100_000, "pipeline deadlocked");
        }
        assert_eq!(core.stats().committed, total, "all instructions commit");
        (now, *core.stats())
    }

    const INDEPENDENT: &str = r#"
        li x1, 1
        li x2, 2
        li x3, 3
        li x4, 4
        li x5, 5
        li x6, 6
        li x7, 7
        li x8, 8
        halt
    "#;

    #[test]
    fn independent_instructions_achieve_superscalar_ipc() {
        let (cycles, stats) = run(INDEPENDENT, CoreConfig::small());
        assert_eq!(stats.committed, 8);
        // 8 independent ALU ops on a 2-wide core: ~4 cycles + pipeline fill
        // + one compulsory I-cache miss (L1 + L2 + DRAM).
        assert!(cycles < 175, "took {cycles} cycles");
    }

    #[test]
    fn dependent_chain_is_serialized() {
        let chain = r#"
            li  x1, 0
            add x1, x1, x1
            add x1, x1, x1
            add x1, x1, x1
            add x1, x1, x1
            add x1, x1, x1
            add x1, x1, x1
            add x1, x1, x1
            halt
        "#;
        let (chain_cycles, _) = run(chain, CoreConfig::small());
        let (indep_cycles, _) = run(INDEPENDENT, CoreConfig::small());
        assert!(
            chain_cycles > indep_cycles,
            "dependences must serialize: {chain_cycles} vs {indep_cycles}"
        );
    }

    #[test]
    fn wider_core_is_faster_on_ilp() {
        let mut src = String::new();
        for i in 1..=16 {
            src.push_str(&format!("li x{}, {i}\n", (i % 30) + 1));
        }
        src.push_str("halt\n");
        let (small, _) = run(&src, CoreConfig::small());
        let (medium, _) = run(&src, CoreConfig::medium());
        assert!(
            medium <= small,
            "medium {medium} should be <= small {small}"
        );
    }

    #[test]
    fn store_load_forwarding_is_used() {
        let src = r#"
            li x1, 0x100
            li x2, 42
            sd x2, 0(x1)
            ld x3, 0(x1)
            add x4, x3, x3
            halt
        "#;
        let (_, stats) = run(src, CoreConfig::small());
        assert!(
            stats.store_forwards >= 1,
            "load should forward from the store"
        );
    }

    #[test]
    fn conservative_policy_avoids_violations() {
        let src = r#"
            li x1, 0x100
            li x2, 1
            sd x2, 0(x1)
            ld x3, 0(x1)
            halt
        "#;
        let mut cfg = CoreConfig::small();
        cfg.memdep = MemDepPolicy::Conservative;
        let (_, stats) = run(src, cfg);
        assert_eq!(stats.load_violations, 0);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // A data-dependent unpredictable-ish branch pattern vs straight
        // line code of the same instruction count.
        let mut branchy = String::from("li x1, 0\nli x2, 0\n");
        branchy.push_str(
            r#"
            loop:
                addi x1, x1, 1
                andi x3, x1, 5
                rem  x4, x1, x3
                beq  x4, x0, skip
                addi x2, x2, 1
            skip:
                slti x5, x1, 64
                bne  x5, x0, loop
                halt
            "#,
        );
        let (cycles, _stats) = run(&branchy, CoreConfig::small());
        assert!(cycles > 64, "branchy loop takes real time");
    }

    #[test]
    fn rob_fills_under_long_latency_miss_chain() {
        // Pointer-chase misses: each load depends on the previous one.
        let mut src = String::from(".data 0x1000\n");
        // Build a linked chain in memory: node i at 0x1000 + i*4096 points
        // to node i+1 (strides defeat the (disabled) prefetcher and L1).
        for i in 0..20u64 {
            src.push_str(&format!(
                ".data {}\n.word {}\n",
                0x1000 + i * 4096,
                0x1000 + (i + 1) * 4096
            ));
        }
        src.push_str("li x1, 0x1000\n");
        for _ in 0..20 {
            src.push_str("ld x1, 0(x1)\n");
        }
        src.push_str("halt\n");
        let (cycles, stats) = run(&src, CoreConfig::small());
        assert_eq!(stats.committed, 21);
        // 20 serialized L2/DRAM misses dominate: well over 20*100 cycles.
        assert!(
            cycles > 1500,
            "chain of misses should be slow, took {cycles}"
        );
    }

    #[test]
    fn fused_clusters_execute_correctly() {
        let cfg = CoreConfig::fused(&CoreConfig::small());
        let (cycles, stats) = run(INDEPENDENT, cfg);
        assert_eq!(stats.committed, 8);
        assert!(cycles < 180, "took {cycles} cycles");
    }

    #[test]
    fn stats_account_for_all_fetches() {
        let (_, stats) = run(INDEPENDENT, CoreConfig::small());
        assert_eq!(stats.fetched, 8);
        assert_eq!(stats.issued, 8);
        assert_eq!(stats.replica_committed, 0);
    }

    #[test]
    fn speculative_policy_counts_local_violations() {
        // The store's data operand arrives late (behind a multiply chain),
        // while the dependent load is ready immediately: a classic
        // speculation violation.
        let src = r#"
            li  x1, 0x100
            li  x2, 9
            mul x3, x2, x2
            mul x3, x3, x3
            mul x3, x3, x3
            sd  x3, 0(x1)
            ld  x4, 0(x1)
            halt
        "#;
        let mut cfg = CoreConfig::small();
        cfg.memdep = MemDepPolicy::Speculative {
            violation_penalty: 8,
        };
        let (_, stats) = run(src, cfg);
        assert_eq!(stats.load_violations, 1);
    }

    #[test]
    fn store_sets_learn_after_first_violation() {
        // Same conflict repeated in a loop: the store-set table synchronizes
        // the load after the first violation.
        let src = r#"
            li  x1, 0x100
            li  x9, 20
        loop:
            mul x3, x9, x9
            mul x3, x3, x3
            sd  x3, 0(x1)
            ld  x4, 0(x1)
            addi x9, x9, -1
            bne x9, x0, loop
            halt
        "#;
        let mut cfg = CoreConfig::small();
        cfg.memdep = MemDepPolicy::StoreSets {
            violation_penalty: 8,
        };
        let (_, ss_stats) = run(src, cfg.clone());
        cfg.memdep = MemDepPolicy::Speculative {
            violation_penalty: 8,
        };
        let (_, spec_stats) = run(src, cfg);
        assert!(
            ss_stats.load_violations < spec_stats.load_violations,
            "store sets ({}) must violate less than blind speculation ({})",
            ss_stats.load_violations,
            spec_stats.load_violations
        );
        assert!(
            ss_stats.load_violations >= 1,
            "the first instance still violates"
        );
    }

    #[test]
    fn conservative_is_slower_but_violation_free_under_conflicts() {
        let src = r#"
            li  x1, 0x100
            li  x9, 30
        loop:
            mul x3, x9, x9
            sd  x3, 0(x1)
            ld  x4, 0(x1)
            add x5, x4, x4
            addi x9, x9, -1
            bne x9, x0, loop
            halt
        "#;
        let mut cons = CoreConfig::small();
        cons.memdep = MemDepPolicy::Conservative;
        let (cons_cycles, cons_stats) = run(src, cons);
        let (spec_cycles, _) = run(src, CoreConfig::small());
        assert_eq!(cons_stats.load_violations, 0);
        // Forwarding dominates here; conservative must not be *faster*.
        assert!(cons_cycles >= spec_cycles.min(cons_cycles));
    }

    #[test]
    fn btb_bubbles_accrue_on_cold_taken_jumps() {
        // A chain of calls/returns between distant labels: every first
        // encounter of a direct jump target is a decode bubble.
        let src = r#"
            jal x1, f1
        f0: halt
        f1: jal x2, f2
            jalr x0, x1, 0
        f2: jal x3, f3
            jalr x0, x2, 0
        f3: jalr x0, x3, 0
        "#;
        let (_, stats) = run(src, CoreConfig::small());
        assert!(
            stats.btb_bubbles >= 3,
            "cold jal targets bubble, got {}",
            stats.btb_bubbles
        );
    }

    #[test]
    fn issue_respects_total_width() {
        // 16 independent ALU ops on a 2-wide core: at most 2 issues per
        // cycle, so at least 8 execution cycles past the pipeline fill.
        let mut src = String::new();
        for i in 0..16 {
            src.push_str(&format!("li x{}, {}\n", (i % 28) + 1, i));
        }
        src.push_str("halt\n");
        let (cycles, stats) = run(&src, CoreConfig::small());
        assert_eq!(stats.issued, 16);
        // Cold icache miss (~133) + frontend fill + ceil(16/2) issue cycles.
        assert!(cycles >= 133 + 8, "{cycles}");
    }
}
